//! # aoi-mdp-caching
//!
//! Umbrella crate of the reproduction of *AoI-Aware Markov Decision
//! Policies for Caching* (Park, Jung, Choi, Kim — ICDCS 2022,
//! arXiv:2204.13850): a two-stage scheme for providing fresh road contents
//! to connected vehicles,
//!
//! 1. **AoI-aware cache management** — a per-RSU Markov decision process
//!    decides which cached content the macro base station refreshes each
//!    slot (paper Eqs. 1–3), and
//! 2. **delay-aware content service** — Lyapunov drift-plus-penalty control
//!    decides when each road-side unit serves its queued vehicle requests
//!    (paper Eqs. 4–5).
//!
//! This crate re-exports the workspace's five libraries:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `aoi-cache` | the paper's algorithms, policies and simulators |
//! | [`mdp`] | `mdp` | finite-MDP models, the compiled CSR solver kernel, and solvers |
//! | [`lyapunov`] | `lyapunov` | queues and drift-plus-penalty control |
//! | [`vanet`] | `vanet` | the synthetic connected-vehicle substrate |
//! | [`simkit`] | `simkit` | RNG streams, time series, stats, plots |
//!
//! ## Solving fast: compile-then-solve
//!
//! Every sweep-based MDP solver compiles its model into a
//! [`mdp::CompiledMdp`] (flat CSR transition arrays, precomputed expected
//! rewards, validity bitmap) and iterates on the flat arrays with zero heap
//! allocation per sweep; under the default `parallel` feature the per-state
//! Bellman backup fans out across worker threads with bit-for-bit identical
//! results. The simulators compile each RSU's MDP exactly once
//! ([`core::CompiledRsuMdp`]) and share the kernel across every policy
//! kind, horizon step and run.
//!
//! ## Scaling out: one executor, one experiment engine
//!
//! All parallelism funnels through [`simkit::executor`] — a persistent
//! barrier-synchronized round pool (one pool per sweep loop, shared by
//! every value-iteration sweep and backward-induction stage of a solve)
//! plus an ordered `parallel_map` for coarse jobs. The paper's ensemble figures come from
//! [`core::ExperimentPlan`]: declarative grids over scenarios × policy
//! menus × seed replicates whose cells run concurrently, share compiled
//! per-RSU kernels per `(scenario, seed)`, and aggregate into mean/95%-CI
//! [`simkit::CurveSummary`] bands. Grid reports are bit-identical for any
//! worker count — parallelism changes wall-clock time, never output.
//!
//! ## Offline dependency stand-ins
//!
//! The build environment has no crates.io access; `serde`, `rand`,
//! `proptest`, `criterion`, `parking_lot` and `crossbeam` are provided as
//! API-compatible local implementations under `crates/compat/`, declared in
//! one place (`[workspace.dependencies]`) so each can be swapped for its
//! real release by editing a single line.
//!
//! ## Quickstart
//!
//! ```
//! use aoi_mdp_caching::prelude::*;
//!
//! // Stage 1: a small Fig. 1a-style cache-management run.
//! let scenario = CacheScenario {
//!     n_rsus: 2,
//!     regions_per_rsu: 3,
//!     age_cap: 6,
//!     max_age_min: 3,
//!     max_age_max: 5,
//!     horizon: 200,
//!     ..CacheScenario::default()
//! };
//! let report = CacheSimulation::new(scenario)?
//!     .run(CachePolicyKind::ValueIteration { gamma: 0.9 })?;
//! assert!(report.final_cumulative_reward() > 0.0);
//!
//! // Stage 2: the Fig. 1b service-control comparison.
//! let reports = compare_service(&fig1b_scenario(), &fig1b_policies())?;
//! assert_eq!(reports.len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `aoi-bench` crate for the binaries regenerating every figure of the
//! paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aoi_cache as core;
pub use lyapunov;
pub use mdp;
pub use simkit;
pub use vanet;

/// Convenient glob-import surface: the types used by virtually every
/// experiment.
pub mod prelude {
    pub use aoi_cache::persist::{read_artifact, Artifact, ArtifactWriter, Manifest};
    pub use aoi_cache::presets::{
        fig1a_ensemble, fig1a_policy, fig1a_scenario, fig1b_ensemble, fig1b_policies,
        fig1b_scenario, joint_scenario, smoke_grid,
    };
    pub use aoi_cache::{
        compare_service, run_joint, run_joint_artifact, run_service, Age, AgeVector, AoiCacheError,
        CachePolicyKind, CacheRunReport, CacheScenario, CacheSimulation, CacheUpdatePolicy,
        Catalog, CellOutcome, CellReport, CompiledRsuMdp, EnsembleSummary, ExperimentGrid,
        ExperimentPlan, ExperimentReport, JointReport, JointScenario, PopularityModel, RewardModel,
        RsuCacheMdp, RsuSpec, ServiceLevel, ServicePolicy, ServicePolicyKind, ServiceRunReport,
        ServiceScenario,
    };
    pub use lyapunov::{DecisionOption, DriftPlusPenalty, Queue, ServiceController};
    pub use mdp::solver::{PolicyIteration, QLearning, ValueIteration};
    pub use mdp::{CompiledMdp, FiniteMdp, Policy, TabularMdp};
    pub use simkit::{RecordingMode, SeedSequence, TimeSeries, TimeSlot};
    pub use vanet::{Network, NetworkConfig, Road, RsuLayout, Zipf};
}

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        let _ = crate::core::CacheScenario::default();
        let _ = crate::prelude::fig1a_scenario();
    }
}
