//! Tests pinning the *qualitative claims* of the paper's evaluation
//! section — who wins, what rises, what stays bounded. These are the
//! acceptance tests of the reproduction (EXPERIMENTS.md records the
//! quantitative side).

use aoi_mdp_caching::prelude::*;
use lyapunov::analysis::{has_v_tradeoff_signature, StabilityVerdict, TradeoffPoint};

/// Fig. 1a claim 1: under the proposed MDP policy, "each content
/// [selected in the figure] is updated before the AoI value exceeds the
/// maximum A^max" — the maintained contents trace a bounded sawtooth.
#[test]
fn fig1a_selected_contents_stay_below_their_limit() {
    let scenario = CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 3,
        age_cap: 6,
        max_age_min: 3,
        max_age_max: 5,
        horizon: 600,
        seed: 7,
        ..CacheScenario::default()
    };
    let sim = CacheSimulation::new(scenario).expect("valid scenario");
    let report = sim
        .run(CachePolicyKind::ValueIteration { gamma: 0.95 })
        .expect("runs");
    let warmup = 60;
    for (k, spec) in sim.specs().iter().enumerate() {
        // The maintained set must be non-empty and sawtooth-bounded.
        let maintained: Vec<usize> = (0..3)
            .filter(|&h| {
                report
                    .aoi_trace(k, h)
                    .values()
                    .skip(warmup)
                    .all(|v| v <= f64::from(spec.max_ages[h].get()))
            })
            .collect();
        assert!(
            !maintained.is_empty(),
            "rsu{k}: the optimal policy must maintain at least one content"
        );
        // Sawtooth: a maintained content is refreshed repeatedly (its trace
        // returns to 1 many times).
        let h = maintained[0];
        let refreshes = report
            .aoi_trace(k, h)
            .values()
            .skip(warmup)
            .filter(|v| *v == 1.0)
            .count();
        assert!(
            refreshes > 10,
            "rsu{k}/content{h}: only {refreshes} refreshes"
        );
    }
}

/// Fig. 1a claim 2: "the cumulative reward of MBS by the proposed update
/// decision also continues to rise".
#[test]
fn fig1a_cumulative_reward_keeps_rising() {
    let scenario = CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 3,
        age_cap: 6,
        max_age_min: 3,
        max_age_max: 5,
        horizon: 1000,
        seed: 13,
        ..CacheScenario::default()
    };
    let report = CacheSimulation::new(scenario)
        .expect("valid scenario")
        .run(CachePolicyKind::ValueIteration { gamma: 0.95 })
        .expect("runs");
    let curve: Vec<f64> = report.cumulative_reward.values().collect();
    // Strictly increasing on every 100-slot checkpoint.
    for w in curve.chunks(100).collect::<Vec<_>>().windows(2) {
        assert!(
            w[1].last().unwrap() > w[0].last().unwrap(),
            "cumulative reward stalled"
        );
    }
}

/// Fig. 1b claim: the proposed Lyapunov rule keeps the queue stable at a
/// fraction of always-serve's cost, while the baselines sit at the two
/// extremes (this is the "trade-off between cost and latency compared to
/// the other two algorithms").
#[test]
fn fig1b_proposed_sits_between_the_extremes() {
    let reports = compare_service(&fig1b_scenario(), &fig1b_policies()).expect("runs");
    let lyapunov = &reports[0];
    let always = &reports[1];
    let greedy = &reports[2];

    // Stability: proposed and always-serve stable; cost-greedy diverges.
    assert_eq!(lyapunov.stability, StabilityVerdict::Stable);
    assert_eq!(always.stability, StabilityVerdict::Stable);
    assert_eq!(greedy.stability, StabilityVerdict::Unstable);

    // Cost ordering: greedy <= proposed < always.
    assert!(lyapunov.mean_cost < always.mean_cost);
    assert!(greedy.mean_cost <= lyapunov.mean_cost);

    // Latency ordering: always <= proposed << greedy.
    assert!(always.mean_queue <= lyapunov.mean_queue);
    assert!(lyapunov.mean_queue < greedy.mean_queue / 5.0);
}

/// The paper's Eq. 5 sanity analysis, verified at the decision level:
/// empty queue ⇒ pure cost minimization; saturated queue ⇒ pure service
/// maximization.
#[test]
fn eq5_extreme_cases() {
    let dpp = DriftPlusPenalty::new(50.0).expect("valid V");
    let menu = [
        DecisionOption::new(0.0, 0.0),
        DecisionOption::new(1.0, 1.0),
        DecisionOption::new(3.0, 4.0),
    ];
    assert_eq!(dpp.decide(0.0, &menu).expect("decides"), 0);
    assert_eq!(dpp.decide(1e12, &menu).expect("decides"), 2);
}

/// Lyapunov theory: sweeping V traces the O(1/V) cost / O(V) queue curve.
#[test]
fn v_sweep_has_canonical_signature() {
    let scenario = ServiceScenario {
        horizon: 8000,
        ..fig1b_scenario()
    };
    let points: Vec<TradeoffPoint> = [1.0, 8.0, 64.0]
        .iter()
        .map(|&v| {
            let r = run_service(&scenario, ServicePolicyKind::Lyapunov { v }).expect("runs");
            TradeoffPoint {
                v,
                mean_cost: r.mean_cost,
                mean_backlog: r.mean_queue,
            }
        })
        .collect();
    assert!(has_v_tradeoff_signature(&points, 0.02));
}

/// Joint-system claim (paper conclusion): the two-stage scheme provides
/// fresh contents — active cache management yields a far higher fraction
/// of fresh hits than no management, on the same road and requests.
#[test]
fn joint_active_caching_provides_fresh_contents() {
    let mut base = joint_scenario();
    base.network.n_regions = 8;
    base.network.n_rsus = 2;
    base.network.road_length_m = 1600.0;
    base.horizon = 500;

    let mut never = base.clone();
    never.cache_policy = CachePolicyKind::Never;
    let mut threshold = base.clone();
    threshold.cache_policy = CachePolicyKind::AgeThreshold { margin: 1 };

    let r_never = run_joint(&never).expect("runs");
    let r_threshold = run_joint(&threshold).expect("runs");
    assert!(r_threshold.freshness_rate() > 0.8);
    assert!(r_never.freshness_rate() < 0.3);
    // And the freshness is paid for with update cost, not free.
    assert!(r_threshold.mean_update_cost > 0.0);
    assert!(r_never.mean_update_cost == 0.0);
}
