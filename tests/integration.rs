//! Cross-crate integration tests: the public API exercised end to end the
//! way a downstream user would.

use aoi_mdp_caching::prelude::*;

fn small_cache_scenario(seed: u64) -> CacheScenario {
    CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 3,
        age_cap: 6,
        max_age_min: 3,
        max_age_max: 5,
        horizon: 400,
        seed,
        ..CacheScenario::default()
    }
}

#[test]
fn full_stage1_pipeline_via_prelude() {
    let sim = CacheSimulation::new(small_cache_scenario(1)).expect("valid scenario");
    let report = sim
        .run(CachePolicyKind::ValueIteration { gamma: 0.95 })
        .expect("solver runs");
    assert_eq!(report.reward.len(), 400);
    assert!(report.final_cumulative_reward() > 0.0);
    assert!(report.updates > 0);
}

#[test]
fn stage1_policies_share_the_same_world() {
    // Identical catalog and initial ages across runs: the never policy's
    // first-slot AoI must match any other policy's pre-update AoI.
    let sim = CacheSimulation::new(small_cache_scenario(2)).expect("valid scenario");
    let never = sim.run(CachePolicyKind::Never).expect("runs");
    let myopic = sim.run(CachePolicyKind::Myopic).expect("runs");
    // Catalog/popularity identical => same specs; reward curves differ.
    assert_ne!(
        never.final_cumulative_reward(),
        myopic.final_cumulative_reward()
    );
    assert_eq!(never.content_slots, myopic.content_slots);
}

#[test]
fn exact_solvers_agree_through_the_public_api() {
    let sim = CacheSimulation::new(small_cache_scenario(3)).expect("valid scenario");
    let vi = sim
        .run(CachePolicyKind::ValueIteration { gamma: 0.9 })
        .expect("runs");
    let pi = sim
        .run(CachePolicyKind::PolicyIteration { gamma: 0.9 })
        .expect("runs");
    assert!((vi.final_cumulative_reward() - pi.final_cumulative_reward()).abs() < 1e-9);
    assert_eq!(vi.updates, pi.updates);
}

#[test]
fn q_learning_approaches_exact_solution() {
    let sim = CacheSimulation::new(small_cache_scenario(4)).expect("valid scenario");
    let vi = sim
        .run(CachePolicyKind::ValueIteration { gamma: 0.9 })
        .expect("runs");
    let ql = sim
        .run(CachePolicyKind::QLearning {
            gamma: 0.9,
            steps: 150_000,
        })
        .expect("runs");
    let gap = (vi.final_cumulative_reward() - ql.final_cumulative_reward()).abs();
    assert!(
        gap / vi.final_cumulative_reward() < 0.1,
        "QL within 10% of VI (gap {gap})"
    );
}

#[test]
fn stage2_pipeline_and_determinism() {
    let scenario = fig1b_scenario();
    let a = run_service(&scenario, ServicePolicyKind::Lyapunov { v: 20.0 }).expect("runs");
    let b = run_service(&scenario, ServicePolicyKind::Lyapunov { v: 20.0 }).expect("runs");
    assert_eq!(a.queue, b.queue);
    assert_eq!(a.mean_cost, b.mean_cost);
}

#[test]
fn joint_pipeline_runs_on_network_substrate() {
    let mut scenario = joint_scenario();
    scenario.network.n_regions = 8;
    scenario.network.n_rsus = 2;
    scenario.network.road_length_m = 1600.0;
    scenario.horizon = 300;
    let report = run_joint(&scenario).expect("runs");
    assert_eq!(report.queues.len(), 2);
    assert!(report.total_requests > 0);
    assert!(report.freshness_rate() > 0.0);
}

#[test]
fn presets_match_paper_setup() {
    let fig1a = fig1a_scenario();
    assert_eq!(fig1a.n_contents(), 20, "paper: 20 contents");
    assert_eq!(fig1a.horizon, 1000, "paper: 1000 iterations");
    let fig1b = fig1b_scenario();
    assert_eq!(fig1b.horizon, 1000);
    assert_eq!(fig1b_policies().len(), 3, "paper: proposed + two baselines");
}

#[test]
fn custom_policy_through_trait_object() {
    // A downstream user can plug a hand-written policy into the simulator.
    struct AlwaysFirst;
    impl CacheUpdatePolicy for AlwaysFirst {
        fn name(&self) -> &str {
            "always-first"
        }
        fn decide(
            &mut self,
            _ctx: &aoi_mdp_caching::core::CacheDecisionContext<'_>,
            _rng: &mut dyn rand::RngCore,
        ) -> Option<usize> {
            Some(0)
        }
    }
    let sim = CacheSimulation::new(small_cache_scenario(5)).expect("valid scenario");
    let policies: Vec<Box<dyn CacheUpdatePolicy>> =
        vec![Box::new(AlwaysFirst), Box::new(AlwaysFirst)];
    let report = sim
        .run_with(policies, "always-first".to_string())
        .expect("runs");
    assert_eq!(report.updates, 2 * 400);
    // Content 0 of every RSU is pinned fresh.
    for k in 0..2 {
        assert!(report.aoi_trace(k, 0).max().unwrap() <= 6.0);
        assert_eq!(
            report
                .aoi_trace(k, 0)
                .values()
                .skip(1)
                .fold(f64::MIN, f64::max),
            1.0
        );
    }
}

#[test]
fn recorded_vanet_trace_drives_stage2() {
    // Record a request trace on the road substrate, then feed one RSU's
    // arrival stream into the stage-2 queue simulator — the glue a user
    // needs to study service control under realistic (bursty, mobility-
    // driven) arrivals instead of Poisson.
    use rand::SeedableRng;
    let mut network = Network::new(NetworkConfig::default()).expect("valid config");
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    network.warm_up(40, &mut rng);
    let trace = vanet::RequestTrace::record(&mut network, 600, &mut rng);
    let arrivals = trace.arrivals_for(vanet::RsuId(0));
    let mean_arrival = arrivals.iter().sum::<f64>() / arrivals.len() as f64;
    assert!(mean_arrival > 0.5, "warm road must generate load");

    let scenario = ServiceScenario {
        external_arrivals: Some(arrivals),
        horizon: 600,
        // Scale the menu to the trace's load so stability is feasible.
        levels: vec![
            ServiceLevel::new(0.0, 0.0),
            ServiceLevel::new(1.0, mean_arrival.ceil() * 2.0),
        ],
        ..ServiceScenario::default()
    };
    let lyap = run_service(&scenario, ServicePolicyKind::Lyapunov { v: 10.0 }).expect("runs");
    let greedy = run_service(&scenario, ServicePolicyKind::CostGreedy).expect("runs");
    assert!(lyap.mean_queue < greedy.mean_queue);
    assert_eq!(lyap.queue.len(), 600);
}

#[test]
fn eq4_constraint_controller_via_public_api() {
    use aoi_mdp_caching::core::{run_freshness_service, FreshnessScenario, SourcingMode};
    let scenario = FreshnessScenario {
        horizon: 3000,
        ..FreshnessScenario::default()
    };
    let adaptive = run_freshness_service(&scenario, SourcingMode::Adaptive).expect("runs");
    let oblivious = run_freshness_service(&scenario, SourcingMode::CacheOnly).expect("runs");
    assert!(adaptive.constraint_met);
    assert!(!oblivious.constraint_met);
    assert!(adaptive.mean_served_age < oblivious.mean_served_age);
}

#[test]
fn seeds_fan_out_consistently_across_crates() {
    // simkit's SeedSequence drives vanet + core reproducibly.
    let mut s1 = SeedSequence::new(99);
    let mut s2 = SeedSequence::new(99);
    let mut n1 = Network::new(NetworkConfig::default()).expect("valid config");
    let mut n2 = Network::new(NetworkConfig::default()).expect("valid config");
    let mut r1 = s1.rng("net");
    let mut r2 = s2.rng("net");
    for _ in 0..50 {
        let a = n1.step(&mut r1);
        let b = n2.step(&mut r2);
        assert_eq!(a.requests.len(), b.requests.len());
    }
}
