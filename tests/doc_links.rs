//! Markdown link checker: every relative link in the repo's curated
//! documentation must point at a file that exists.
//!
//! Scope is the hand-maintained docs (`README.md`, `ARCHITECTURE.md`,
//! `ROADMAP.md`, `CHANGES.md` and everything under `docs/`) — the
//! generated research-context files (`PAPER.md`, `PAPERS.md`,
//! `SNIPPETS.md`, `ISSUE.md`) are inputs, not documentation, and are
//! not checked. CI runs this in the docs job so a moved or renamed
//! file cannot leave a dangling link behind.

use std::fs;
use std::path::{Path, PathBuf};

/// The hand-maintained Markdown files at the repository root.
const ROOT_DOCS: &[&str] = &["README.md", "ARCHITECTURE.md", "ROADMAP.md", "CHANGES.md"];

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the umbrella crate is the repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Collects the documentation set: the curated root files plus every
/// `.md` under `docs/`, recursively.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files: Vec<PathBuf> = ROOT_DOCS
        .iter()
        .map(|name| root.join(name))
        .filter(|path| path.exists())
        .collect();
    let mut stack = vec![root.join("docs")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Extracts the targets of inline Markdown links `](target)` from one
/// line. Good enough for the repo's hand-written docs: it does not try
/// to handle nested parentheses or reference-style links (none are
/// used).
fn link_targets(line: &str) -> Vec<&str> {
    let mut targets = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find("](") {
        let tail = &rest[open + 2..];
        let Some(close) = tail.find(')') else {
            break;
        };
        targets.push(&tail[..close]);
        rest = &tail[close + 1..];
    }
    targets
}

/// True for link targets that are not relative file paths.
fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

#[test]
fn relative_links_in_docs_resolve() {
    let files = doc_files();
    assert!(
        files.iter().any(|f| f.ends_with("README.md")),
        "doc set must include README.md (wrong repo root?)"
    );
    let mut dangling: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text =
            fs::read_to_string(file).unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let base = file.parent().unwrap_or(Path::new("."));
        let mut in_code_fence = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_code_fence = !in_code_fence;
                continue;
            }
            if in_code_fence {
                continue;
            }
            for target in link_targets(line) {
                if is_external(target) || target.is_empty() {
                    continue;
                }
                // Drop a fragment (`file.md#section`); an empty
                // remainder was an in-page anchor handled above.
                let path_part = target.split('#').next().unwrap_or(target);
                if path_part.is_empty() {
                    continue;
                }
                checked += 1;
                if !base.join(path_part).exists() {
                    dangling.push(format!(
                        "{}:{}: dangling link -> {target}",
                        file.display(),
                        lineno + 1
                    ));
                }
            }
        }
    }
    assert!(checked > 0, "link checker found no links at all");
    assert!(
        dangling.is_empty(),
        "dangling documentation links:\n{}",
        dangling.join("\n")
    );
}
