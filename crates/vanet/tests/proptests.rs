//! Property-based tests for the vehicular-network substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vanet::{MobilityConfig, Network, NetworkConfig, RegionId, Road, RsuLayout, Traffic, Zipf};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rsu_layout_is_exact_partition(n_regions in 1usize..200, n_rsus in 1usize..50) {
        prop_assume!(n_rsus <= n_regions);
        let layout = RsuLayout::new(n_regions, n_rsus).unwrap();
        // Every region covered by exactly one RSU.
        let mut covered = vec![0usize; n_regions];
        for k in layout.rsus() {
            for r in layout.coverage(k) {
                covered[r] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "double/no coverage: {covered:?}");
        // covering_rsu is consistent with coverage.
        for r in 0..n_regions {
            let k = layout.covering_rsu(RegionId(r));
            prop_assert!(layout.coverage(k).contains(&r));
        }
        // Block sizes differ by at most one.
        let sizes: Vec<usize> = layout.rsus().map(|k| layout.coverage_len(k)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced layout: {sizes:?}");
    }

    #[test]
    fn region_lookup_matches_bounds(length in 10.0f64..10_000.0, n in 1usize..100, frac in 0.0f64..1.0) {
        let road = Road::new(length, n).unwrap();
        let pos = frac * length * 0.999_999;
        let region = road.region_at(pos).unwrap();
        let (lo, hi) = road.region_bounds(region);
        prop_assert!(pos >= lo - 1e-9 && pos < hi + 1e-9, "{pos} not in [{lo}, {hi})");
    }

    #[test]
    fn traffic_invariants_hold(seed in 0u64..500, entry_p in 0.0f64..1.0, slots in 1usize..300) {
        let road = Road::new(800.0, 8).unwrap();
        let cfg = MobilityConfig { entry_probability: entry_p, speed_min: 5.0, speed_max: 25.0 };
        let mut traffic = Traffic::new(road, cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..slots {
            traffic.step(&mut rng);
            for v in traffic.vehicles() {
                prop_assert!(v.position_m >= 0.0 && v.position_m < 800.0);
                prop_assert!(v.speed_mps >= 5.0 && v.speed_mps <= 25.0);
            }
        }
        prop_assert_eq!(
            traffic.total_entered(),
            traffic.total_exited() + traffic.n_vehicles() as u64
        );
    }

    #[test]
    fn zipf_is_a_distribution(n in 1usize..64, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s).unwrap();
        let pmf = z.pmf();
        prop_assert_eq!(pmf.len(), n);
        prop_assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for w in pmf.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn zipf_samples_in_range(n in 1usize..32, s in 0.0f64..2.5, seed in 0u64..100) {
        let z = Zipf::new(n, s).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn network_requests_always_hit_covering_rsu(seed in 0u64..200) {
        let mut network = Network::new(NetworkConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        network.warm_up(40, &mut rng);
        for _ in 0..40 {
            let slot = network.step(&mut rng);
            for r in &slot.requests {
                prop_assert!(network.layout().covers(r.rsu, r.region));
            }
        }
        for k in network.layout().rsus() {
            let p = network.popularity(k);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|v| *v > 0.0));
        }
    }
}
