//! Communication-cost models for MBS→RSU cache pushes.
//!
//! The paper's `C^k_h(x^k_h(t))` (Eq. 3) is the network cost of pushing one
//! content update to an RSU. The constants are not specified in the paper,
//! so the model is pluggable; all variants preserve the property that cost
//! is charged only when an update actually happens.

use crate::road::Road;
use crate::rsu::{RsuId, RsuLayout};
use crate::VanetError;
use serde::{Deserialize, Serialize};

/// Pluggable MBS→RSU update-cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostModel {
    /// Every update costs the same.
    Constant {
        /// Cost per update.
        cost: f64,
    },
    /// Cost grows linearly with the MBS→RSU distance (the MBS sits at the
    /// road center): `base + per_km · distance_km`.
    Distance {
        /// Fixed per-update cost.
        base: f64,
        /// Additional cost per kilometer of MBS→RSU distance.
        per_km: f64,
    },
    /// Congestion pricing: pushing `m` updates in the same slot costs
    /// `base · (1 + surge · (m − 1))` *per update* — simultaneous pushes
    /// contend for backhaul bandwidth.
    Congestion {
        /// Cost of a lone update.
        base: f64,
        /// Relative surcharge per concurrent update.
        surge: f64,
    },
}

impl Default for CostModel {
    /// Constant unit cost.
    fn default() -> Self {
        CostModel::Constant { cost: 1.0 }
    }
}

impl CostModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`VanetError::BadParameter`] for negative or non-finite
    /// parameters.
    pub fn validate(&self) -> Result<(), VanetError> {
        let ok = match *self {
            CostModel::Constant { cost } => cost.is_finite() && cost >= 0.0,
            CostModel::Distance { base, per_km } => {
                base.is_finite() && base >= 0.0 && per_km.is_finite() && per_km >= 0.0
            }
            CostModel::Congestion { base, surge } => {
                base.is_finite() && base >= 0.0 && surge.is_finite() && surge >= 0.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(VanetError::BadParameter {
                what: "cost model parameters",
                valid: ">= 0 and finite",
            })
        }
    }

    /// Cost of pushing one update to `rsu` while `concurrent_updates`
    /// updates (including this one) are pushed in the same slot.
    ///
    /// # Panics
    ///
    /// Panics if `concurrent_updates == 0` (the update being priced counts).
    pub fn update_cost(
        &self,
        road: &Road,
        layout: &RsuLayout,
        rsu: RsuId,
        concurrent_updates: usize,
    ) -> f64 {
        assert!(
            concurrent_updates >= 1,
            "the priced update itself counts as concurrent"
        );
        match *self {
            CostModel::Constant { cost } => cost,
            CostModel::Distance { base, per_km } => {
                let d_m = (layout.position_on(road, rsu) - road.center()).abs();
                base + per_km * d_m / 1000.0
            }
            CostModel::Congestion { base, surge } => {
                base * (1.0 + surge * (concurrent_updates as f64 - 1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Road, RsuLayout) {
        (
            Road::new(1000.0, 10).unwrap(),
            RsuLayout::new(10, 5).unwrap(),
        )
    }

    #[test]
    fn constant_cost_ignores_everything() {
        let (road, layout) = setup();
        let m = CostModel::Constant { cost: 2.5 };
        assert_eq!(m.update_cost(&road, &layout, RsuId(0), 1), 2.5);
        assert_eq!(m.update_cost(&road, &layout, RsuId(4), 7), 2.5);
    }

    #[test]
    fn distance_cost_grows_from_center() {
        let (road, layout) = setup();
        let m = CostModel::Distance {
            base: 1.0,
            per_km: 10.0,
        };
        // RSU 2 is centered on the road => cheapest; RSU 0/4 are far.
        let c_center = m.update_cost(&road, &layout, RsuId(2), 1);
        let c_edge = m.update_cost(&road, &layout, RsuId(0), 1);
        assert!(c_edge > c_center);
        // Symmetry of the two edge RSUs.
        let c_other_edge = m.update_cost(&road, &layout, RsuId(4), 1);
        assert!((c_edge - c_other_edge).abs() < 1e-9);
    }

    #[test]
    fn congestion_cost_scales_with_concurrency() {
        let (road, layout) = setup();
        let m = CostModel::Congestion {
            base: 1.0,
            surge: 0.5,
        };
        assert_eq!(m.update_cost(&road, &layout, RsuId(0), 1), 1.0);
        assert_eq!(m.update_cost(&road, &layout, RsuId(0), 3), 2.0);
    }

    #[test]
    fn validation() {
        assert!(CostModel::Constant { cost: -1.0 }.validate().is_err());
        assert!(CostModel::Distance {
            base: 1.0,
            per_km: f64::NAN
        }
        .validate()
        .is_err());
        assert!(CostModel::Congestion {
            base: 1.0,
            surge: -0.1
        }
        .validate()
        .is_err());
        assert!(CostModel::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "concurrent")]
    fn zero_concurrency_panics() {
        let (road, layout) = setup();
        let _ = CostModel::default().update_cost(&road, &layout, RsuId(0), 0);
    }
}
