//! User vehicles and the highway mobility model.

use crate::road::Road;
use crate::VanetError;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a user vehicle (monotonically assigned).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct VehicleId(pub u64);

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uv#{}", self.0)
    }
}

/// A connected user vehicle on the road.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    /// Stable identifier.
    pub id: VehicleId,
    /// Position along the road in meters.
    pub position_m: f64,
    /// Speed in meters per slot (vehicles move one way, toward increasing
    /// positions).
    pub speed_mps: f64,
}

/// Configuration of the highway entry/mobility process.
///
/// Vehicles enter at position 0 following a Bernoulli process (the
/// discrete-slot analogue of Poisson arrivals), draw a constant speed
/// uniformly from `[speed_min, speed_max]` and leave when they pass the end
/// of the road.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityConfig {
    /// Probability that a new vehicle enters in a slot.
    pub entry_probability: f64,
    /// Minimum vehicle speed (m/slot).
    pub speed_min: f64,
    /// Maximum vehicle speed (m/slot).
    pub speed_max: f64,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            entry_probability: 0.6,
            speed_min: 8.0,
            speed_max: 20.0,
        }
    }
}

impl MobilityConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`VanetError::BadParameter`] for probabilities outside
    /// `[0, 1]` or non-positive/inverted speed ranges.
    pub fn validate(&self) -> Result<(), VanetError> {
        if !(0.0..=1.0).contains(&self.entry_probability) {
            return Err(VanetError::BadParameter {
                what: "entry_probability",
                valid: "[0, 1]",
            });
        }
        if !self.speed_min.is_finite() || self.speed_min <= 0.0 {
            return Err(VanetError::BadParameter {
                what: "speed_min",
                valid: "> 0",
            });
        }
        if !self.speed_max.is_finite() || self.speed_max < self.speed_min {
            return Err(VanetError::BadParameter {
                what: "speed_max",
                valid: ">= speed_min",
            });
        }
        Ok(())
    }
}

/// The set of vehicles currently on the road plus the entry process.
///
/// ```
/// use vanet::{Road, Traffic, MobilityConfig};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let road = Road::new(1000.0, 10)?;
/// let mut traffic = Traffic::new(road, MobilityConfig::default())?;
/// let mut rng = StdRng::seed_from_u64(7);
/// for _ in 0..100 {
///     traffic.step(&mut rng);
/// }
/// // Every vehicle is on the road.
/// assert!(traffic.vehicles().iter().all(|v| v.position_m >= 0.0 && v.position_m < 1000.0));
/// # Ok::<(), vanet::VanetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Traffic {
    road: Road,
    config: MobilityConfig,
    vehicles: Vec<Vehicle>,
    next_id: u64,
    total_entered: u64,
    total_exited: u64,
}

/// What happened during one mobility slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilitySlot {
    /// Vehicles that entered this slot.
    pub entered: Vec<VehicleId>,
    /// Vehicles that left the road this slot.
    pub exited: Vec<VehicleId>,
}

impl Traffic {
    /// Creates an empty road with the given mobility process.
    ///
    /// # Errors
    ///
    /// Returns [`VanetError::BadParameter`] if the config is invalid.
    pub fn new(road: Road, config: MobilityConfig) -> Result<Self, VanetError> {
        config.validate()?;
        Ok(Traffic {
            road,
            config,
            vehicles: Vec::new(),
            next_id: 0,
            total_entered: 0,
            total_exited: 0,
        })
    }

    /// The road the traffic flows on.
    pub fn road(&self) -> &Road {
        &self.road
    }

    /// Vehicles currently on the road, in entry order.
    pub fn vehicles(&self) -> &[Vehicle] {
        &self.vehicles
    }

    /// Number of vehicles currently on the road.
    pub fn n_vehicles(&self) -> usize {
        self.vehicles.len()
    }

    /// Total vehicles that ever entered.
    pub fn total_entered(&self) -> u64 {
        self.total_entered
    }

    /// Total vehicles that drove off the end.
    pub fn total_exited(&self) -> u64 {
        self.total_exited
    }

    /// Advances one slot: move everyone, remove vehicles past the end,
    /// then admit at most one new vehicle at position 0.
    pub fn step(&mut self, rng: &mut dyn RngCore) -> MobilitySlot {
        let mut exited = Vec::new();
        let length = self.road.length_m();
        self.vehicles.retain_mut(|v| {
            v.position_m += v.speed_mps;
            if v.position_m >= length {
                exited.push(v.id);
                false
            } else {
                true
            }
        });
        self.total_exited += exited.len() as u64;

        let mut entered = Vec::new();
        if rng.gen::<f64>() < self.config.entry_probability {
            let id = VehicleId(self.next_id);
            self.next_id += 1;
            let speed = if (self.config.speed_max - self.config.speed_min).abs() < f64::EPSILON {
                self.config.speed_min
            } else {
                rng.gen_range(self.config.speed_min..self.config.speed_max)
            };
            self.vehicles.push(Vehicle {
                id,
                position_m: 0.0,
                speed_mps: speed,
            });
            self.total_entered += 1;
            entered.push(id);
        }
        MobilitySlot { entered, exited }
    }

    /// Pre-populates the road with `n` vehicles at uniformly random
    /// positions (useful to skip the warm-up transient).
    pub fn seed_vehicles(&mut self, n: usize, rng: &mut dyn RngCore) {
        for _ in 0..n {
            let id = VehicleId(self.next_id);
            self.next_id += 1;
            let position = rng.gen_range(0.0..self.road.length_m());
            let speed = rng.gen_range(self.config.speed_min..=self.config.speed_max);
            self.vehicles.push(Vehicle {
                id,
                position_m: position,
                speed_mps: speed,
            });
            self.total_entered += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Traffic, StdRng) {
        let road = Road::new(500.0, 5).unwrap();
        let traffic = Traffic::new(road, MobilityConfig::default()).unwrap();
        (traffic, StdRng::seed_from_u64(3))
    }

    #[test]
    fn vehicles_stay_on_road() {
        let (mut traffic, mut rng) = setup();
        for _ in 0..500 {
            traffic.step(&mut rng);
            for v in traffic.vehicles() {
                assert!(v.position_m >= 0.0 && v.position_m < 500.0);
            }
        }
    }

    #[test]
    fn conservation_of_vehicles() {
        let (mut traffic, mut rng) = setup();
        for _ in 0..1000 {
            traffic.step(&mut rng);
        }
        assert_eq!(
            traffic.total_entered(),
            traffic.total_exited() + traffic.n_vehicles() as u64
        );
        assert!(traffic.total_entered() > 0);
        assert!(traffic.total_exited() > 0);
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let (mut traffic, mut rng) = setup();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let slot = traffic.step(&mut rng);
            for id in slot.entered {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
    }

    #[test]
    fn entry_rate_matches_probability() {
        let road = Road::new(10_000.0, 10).unwrap();
        let cfg = MobilityConfig {
            entry_probability: 0.3,
            ..MobilityConfig::default()
        };
        let mut traffic = Traffic::new(road, cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let slots = 20_000;
        for _ in 0..slots {
            traffic.step(&mut rng);
        }
        let rate = traffic.total_entered() as f64 / slots as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn zero_entry_probability_keeps_road_empty() {
        let road = Road::new(100.0, 2).unwrap();
        let cfg = MobilityConfig {
            entry_probability: 0.0,
            ..MobilityConfig::default()
        };
        let mut traffic = Traffic::new(road, cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            traffic.step(&mut rng);
        }
        assert_eq!(traffic.n_vehicles(), 0);
    }

    #[test]
    fn seeding_places_vehicles() {
        let (mut traffic, mut rng) = setup();
        traffic.seed_vehicles(10, &mut rng);
        assert_eq!(traffic.n_vehicles(), 10);
        for v in traffic.vehicles() {
            assert!(v.position_m >= 0.0 && v.position_m < 500.0);
        }
    }

    #[test]
    fn config_validation() {
        assert!(MobilityConfig {
            entry_probability: 1.5,
            ..MobilityConfig::default()
        }
        .validate()
        .is_err());
        assert!(MobilityConfig {
            speed_min: 0.0,
            ..MobilityConfig::default()
        }
        .validate()
        .is_err());
        assert!(MobilityConfig {
            speed_min: 10.0,
            speed_max: 5.0,
            ..MobilityConfig::default()
        }
        .validate()
        .is_err());
        assert!(MobilityConfig::default().validate().is_ok());
    }

    #[test]
    fn display() {
        assert_eq!(VehicleId(4).to_string(), "uv#4");
    }
}
