//! # vanet — synthetic connected-vehicle network substrate
//!
//! The road/vehicle environment of *AoI-Aware Markov Decision Policies for
//! Caching* (ICDCS 2022), built from scratch: the paper evaluates on
//! randomized road traffic, so this crate provides a deterministic,
//! seed-reproducible synthetic equivalent exposing the same knobs
//! (§II-A of the paper):
//!
//! * [`Road`] — a straight one-way road divided into `L` regions, one
//!   content per region,
//! * [`RsuLayout`] — `N_R` road-side units covering contiguous blocks of
//!   `L′` regions each (an exact partition),
//! * [`Traffic`] / [`MobilityConfig`] — Bernoulli vehicle entries, constant
//!   per-vehicle speeds, one-way motion, despawn at the road end,
//! * [`RequestGenerator`] / [`Zipf`] — per-vehicle content requests,
//!   Zipf-popular over the covering RSU's cached regions,
//! * [`PopularityEstimator`] — the `p^k_h(t)` content-population term of
//!   the paper's MDP state, estimated with exponential forgetting,
//! * [`CostModel`] — constant / distance / congestion pricing for MBS→RSU
//!   pushes (the paper's `C^k_h`),
//! * [`Network`] — everything assembled behind one `step()` per slot.
//!
//! ## Example
//!
//! ```
//! use vanet::{Network, NetworkConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut network = Network::new(NetworkConfig::default())?;
//! let mut rng = StdRng::seed_from_u64(1);
//! network.warm_up(50, &mut rng);
//! let slot = network.step(&mut rng);
//! println!("{} vehicles, {} requests", network.traffic().n_vehicles(), slot.requests.len());
//! # Ok::<(), vanet::VanetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod error;
mod network;
mod popularity;
mod request;
mod road;
mod rsu;
mod trace;
mod vehicle;

pub use cost::CostModel;
pub use error::VanetError;
pub use network::{Network, NetworkConfig, NetworkSlot};
pub use popularity::PopularityEstimator;
pub use request::{Request, RequestGenerator, Zipf};
pub use road::{RegionId, Road};
pub use rsu::{RsuId, RsuLayout};
pub use trace::{RequestTrace, TRACE_HEADER};
pub use vehicle::{MobilityConfig, MobilitySlot, Traffic, Vehicle, VehicleId};
