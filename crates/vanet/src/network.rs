//! The assembled connected-vehicle network.

use crate::cost::CostModel;
use crate::popularity::PopularityEstimator;
use crate::request::{Request, RequestGenerator};
use crate::road::Road;
use crate::rsu::{RsuId, RsuLayout};
use crate::vehicle::{MobilityConfig, MobilitySlot, Traffic};
use crate::VanetError;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Configuration of a full network scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Road length in meters.
    pub road_length_m: f64,
    /// Number of regions `L` (= number of contents).
    pub n_regions: usize,
    /// Number of RSUs `N_R`.
    pub n_rsus: usize,
    /// Vehicle entry/speed process.
    pub mobility: MobilityConfig,
    /// Per-vehicle per-slot request probability.
    pub request_probability: f64,
    /// Zipf exponent of the request popularity.
    pub zipf_exponent: f64,
    /// Popularity-estimator forgetting factor per slot.
    pub popularity_decay: f64,
    /// MBS→RSU update-cost model.
    pub cost_model: CostModel,
}

impl Default for NetworkConfig {
    /// The paper's Fig. 1a scale: 4 RSUs × 5 regions = 20 contents.
    fn default() -> Self {
        NetworkConfig {
            road_length_m: 4000.0,
            n_regions: 20,
            n_rsus: 4,
            mobility: MobilityConfig::default(),
            request_probability: 0.4,
            zipf_exponent: 0.9,
            popularity_decay: 0.98,
            cost_model: CostModel::default(),
        }
    }
}

/// Everything that happened in one network slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSlot {
    /// Vehicle entries/exits.
    pub mobility: MobilitySlot,
    /// Content requests issued this slot.
    pub requests: Vec<Request>,
}

/// The live network: road + RSU layout + traffic + request stream +
/// per-RSU popularity estimates.
///
/// ```
/// use vanet::{Network, NetworkConfig};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut network = Network::new(NetworkConfig::default())?;
/// let mut rng = StdRng::seed_from_u64(42);
/// network.warm_up(30, &mut rng);
/// let slot = network.step(&mut rng);
/// // All requests target the RSU covering the requesting vehicle.
/// for r in &slot.requests {
///     assert!(network.layout().covers(r.rsu, r.region));
/// }
/// # Ok::<(), vanet::VanetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    config: NetworkConfig,
    road: Road,
    layout: RsuLayout,
    traffic: Traffic,
    generator: RequestGenerator,
    popularity: Vec<PopularityEstimator>,
}

impl Network {
    /// Builds the network from a configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`VanetError`] from validating the road, layout,
    /// mobility, request generator or cost model.
    pub fn new(config: NetworkConfig) -> Result<Self, VanetError> {
        let road = Road::new(config.road_length_m, config.n_regions)?;
        let layout = RsuLayout::new(config.n_regions, config.n_rsus)?;
        let traffic = Traffic::new(road, config.mobility)?;
        let generator = RequestGenerator::new(config.request_probability, config.zipf_exponent)?;
        config.cost_model.validate()?;
        let popularity = layout
            .rsus()
            .map(|k| {
                let range = layout.coverage(k);
                PopularityEstimator::new(
                    range.end - range.start,
                    range.start,
                    config.popularity_decay,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Network {
            config,
            road,
            layout,
            traffic,
            generator,
            popularity,
        })
    }

    /// The scenario configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The road.
    pub fn road(&self) -> &Road {
        &self.road
    }

    /// The RSU coverage layout.
    pub fn layout(&self) -> &RsuLayout {
        &self.layout
    }

    /// The live traffic.
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }

    /// Current popularity estimate `p^k_h(t)` of RSU `k` over its coverage
    /// block (local indices).
    ///
    /// # Panics
    ///
    /// Panics if `rsu` is out of range.
    pub fn popularity(&self, rsu: RsuId) -> Vec<f64> {
        self.popularity[rsu.0].popularity()
    }

    /// [`popularity`](Network::popularity) into a caller-owned buffer
    /// (cleared and refilled) — per-slot consumers reuse one buffer for the
    /// whole run instead of allocating a fresh vector every slot.
    ///
    /// # Panics
    ///
    /// Panics if `rsu` is out of range.
    pub fn popularity_into(&self, rsu: RsuId, out: &mut Vec<f64>) {
        self.popularity[rsu.0].popularity_into(out);
    }

    /// Cost of pushing one update to `rsu` with `concurrent` simultaneous
    /// pushes in the slot.
    pub fn update_cost(&self, rsu: RsuId, concurrent: usize) -> f64 {
        self.config
            .cost_model
            .update_cost(&self.road, &self.layout, rsu, concurrent)
    }

    /// Runs `slots` mobility-only slots to populate the road before an
    /// experiment starts.
    pub fn warm_up(&mut self, slots: usize, rng: &mut dyn RngCore) {
        for _ in 0..slots {
            self.traffic.step(rng);
        }
    }

    /// Advances one slot: mobility, request generation, popularity update.
    pub fn step(&mut self, rng: &mut dyn RngCore) -> NetworkSlot {
        let mobility = self.traffic.step(rng);
        let requests =
            self.generator
                .generate(self.traffic.vehicles(), &self.road, &self.layout, rng);
        for r in &requests {
            self.popularity[r.rsu.0].record(r.region);
        }
        for est in &mut self.popularity {
            est.end_slot();
        }
        NetworkSlot { mobility, requests }
    }

    /// Per-RSU request counts of a slot report (indexed by RSU id).
    pub fn requests_per_rsu(&self, slot: &NetworkSlot) -> Vec<usize> {
        let mut counts = vec![0; self.layout.n_rsus()];
        for r in &slot.requests {
            counts[r.rsu.0] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network() -> Network {
        Network::new(NetworkConfig::default()).unwrap()
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let n = network();
        assert_eq!(n.layout().n_rsus(), 4);
        assert_eq!(n.layout().n_regions(), 20);
        assert_eq!(n.layout().regions_per_rsu(), 5);
    }

    #[test]
    fn step_produces_consistent_requests() {
        let mut n = network();
        let mut rng = StdRng::seed_from_u64(1);
        n.warm_up(50, &mut rng);
        let mut total_requests = 0;
        for _ in 0..100 {
            let slot = n.step(&mut rng);
            total_requests += slot.requests.len();
            for r in &slot.requests {
                assert!(n.layout().covers(r.rsu, r.region));
            }
            let counts = n.requests_per_rsu(&slot);
            assert_eq!(counts.iter().sum::<usize>(), slot.requests.len());
        }
        assert!(total_requests > 0, "warm traffic must generate requests");
    }

    #[test]
    fn popularity_stays_normalized() {
        let mut n = network();
        let mut rng = StdRng::seed_from_u64(2);
        n.warm_up(50, &mut rng);
        for _ in 0..50 {
            n.step(&mut rng);
        }
        for k in n.layout().rsus() {
            let p = n.popularity(k);
            assert_eq!(p.len(), n.layout().coverage_len(k));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn update_cost_delegates_to_model() {
        let cfg = NetworkConfig {
            cost_model: CostModel::Congestion {
                base: 2.0,
                surge: 1.0,
            },
            ..NetworkConfig::default()
        };
        let n = Network::new(cfg).unwrap();
        assert_eq!(n.update_cost(RsuId(0), 1), 2.0);
        assert_eq!(n.update_cost(RsuId(0), 2), 4.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = NetworkConfig {
            n_rsus: 0,
            ..NetworkConfig::default()
        };
        assert!(Network::new(cfg).is_err());

        let cfg = NetworkConfig {
            request_probability: 2.0,
            ..NetworkConfig::default()
        };
        assert!(Network::new(cfg).is_err());

        let cfg = NetworkConfig {
            cost_model: CostModel::Constant { cost: -3.0 },
            ..NetworkConfig::default()
        };
        assert!(Network::new(cfg).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let mut n = network();
            let mut rng = StdRng::seed_from_u64(seed);
            n.warm_up(20, &mut rng);
            let mut log = Vec::new();
            for _ in 0..30 {
                let slot = n.step(&mut rng);
                log.push(slot.requests.len());
            }
            log
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
