//! Error type for vehicular-network model construction.

use std::error::Error;
use std::fmt;

/// Errors produced when building or stepping the network model.
#[derive(Debug, Clone, PartialEq)]
pub enum VanetError {
    /// A parameter was outside its valid range.
    BadParameter {
        /// Parameter name.
        what: &'static str,
        /// Human-readable valid range.
        valid: &'static str,
    },
    /// The requested layout is impossible (e.g. more RSUs than regions).
    BadLayout {
        /// Number of regions requested.
        n_regions: usize,
        /// Number of RSUs requested.
        n_rsus: usize,
    },
    /// A recorded request-trace file could not be read back (see
    /// [`RequestTrace::read_from`](crate::RequestTrace::read_from)).
    BadTrace {
        /// 1-based line the problem was found at (`0` for whole-file
        /// problems such as a missing trailer).
        line: usize,
        /// What was wrong.
        why: String,
    },
}

impl fmt::Display for VanetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VanetError::BadParameter { what, valid } => {
                write!(f, "{what} out of range (expected {valid})")
            }
            VanetError::BadLayout { n_regions, n_rsus } => write!(
                f,
                "cannot cover {n_regions} regions with {n_rsus} RSUs (need 1 <= RSUs <= regions)"
            ),
            VanetError::BadTrace { line: 0, why } => write!(f, "bad request trace: {why}"),
            VanetError::BadTrace { line, why } => {
                write!(f, "bad request trace at line {line}: {why}")
            }
        }
    }
}

impl Error for VanetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = VanetError::BadLayout {
            n_regions: 3,
            n_rsus: 9,
        };
        assert!(e.to_string().contains("3 regions"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VanetError>();
    }
}
