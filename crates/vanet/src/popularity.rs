//! Per-RSU content-popularity estimation.
//!
//! The paper's MDP state includes "the content population that each RSU
//! has"; this module estimates the request distribution `p^k_h(t)` from the
//! observed request stream with exponential forgetting, so the estimate
//! tracks the rapidly changing road environment.

use crate::road::RegionId;
use crate::VanetError;
use serde::{Deserialize, Serialize};

/// Exponentially-forgetting popularity estimator over one RSU's cached
/// regions.
///
/// Counts decay by `decay` per slot and new requests add 1; the popularity
/// vector is the Laplace-smoothed normalization of the counts, so it is
/// always a proper distribution even before any request arrives.
///
/// ```
/// use vanet::{PopularityEstimator, RegionId};
/// let mut est = PopularityEstimator::new(4, 0, 0.9).unwrap();
/// for _ in 0..50 {
///     est.record(RegionId(2));
///     est.end_slot();
/// }
/// let p = est.popularity();
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(p[2] > p[0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopularityEstimator {
    /// First region index of the RSU's coverage block.
    base_region: usize,
    counts: Vec<f64>,
    decay: f64,
    smoothing: f64,
}

impl PopularityEstimator {
    /// Creates an estimator over `n_regions` regions starting at
    /// `base_region`, with per-slot forgetting factor `decay ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`VanetError::BadParameter`] if `n_regions == 0` or
    /// `decay ∉ (0, 1]`.
    pub fn new(n_regions: usize, base_region: usize, decay: f64) -> Result<Self, VanetError> {
        if n_regions == 0 {
            return Err(VanetError::BadParameter {
                what: "n_regions",
                valid: ">= 1",
            });
        }
        if !decay.is_finite() || decay <= 0.0 || decay > 1.0 {
            return Err(VanetError::BadParameter {
                what: "decay",
                valid: "(0, 1]",
            });
        }
        Ok(PopularityEstimator {
            base_region,
            counts: vec![0.0; n_regions],
            decay,
            smoothing: 1.0,
        })
    }

    /// Number of regions tracked.
    pub fn n_regions(&self) -> usize {
        self.counts.len()
    }

    /// Records one request for `region`.
    ///
    /// Requests outside the tracked block are ignored (they belong to
    /// another RSU).
    pub fn record(&mut self, region: RegionId) {
        if let Some(idx) = region.0.checked_sub(self.base_region) {
            if idx < self.counts.len() {
                self.counts[idx] += 1.0;
            }
        }
    }

    /// Applies the per-slot exponential decay. Call once per slot after
    /// recording the slot's requests.
    pub fn end_slot(&mut self) {
        for c in &mut self.counts {
            *c *= self.decay;
        }
    }

    /// The current Laplace-smoothed popularity distribution over the
    /// tracked regions (local indices `0..n_regions`).
    pub fn popularity(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.popularity_into(&mut out);
        out
    }

    /// Writes the current popularity distribution into `out` (cleared and
    /// refilled) — the no-alloc path for per-slot callers that reuse one
    /// buffer across the whole simulation.
    pub fn popularity_into(&self, out: &mut Vec<f64>) {
        let total: f64 =
            self.counts.iter().sum::<f64>() + self.smoothing * self.counts.len() as f64;
        out.clear();
        out.extend(self.counts.iter().map(|c| (c + self.smoothing) / total));
    }

    /// Popularity of a specific region (global index), or `None` when the
    /// region is outside the tracked block.
    pub fn popularity_of(&self, region: RegionId) -> Option<f64> {
        let idx = region.0.checked_sub(self.base_region)?;
        if idx >= self.counts.len() {
            return None;
        }
        Some(self.popularity()[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_before_any_request() {
        let est = PopularityEstimator::new(5, 0, 0.9).unwrap();
        let p = est.popularity();
        for v in &p {
            assert!((v - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn popularity_is_always_a_distribution() {
        let mut est = PopularityEstimator::new(3, 10, 0.8).unwrap();
        for i in 0..30 {
            est.record(RegionId(10 + i % 3));
            if i % 2 == 0 {
                est.record(RegionId(11));
            }
            est.end_slot();
            let p = est.popularity();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(p.iter().all(|v| *v > 0.0));
        }
    }

    #[test]
    fn hot_region_dominates() {
        let mut est = PopularityEstimator::new(4, 0, 0.95).unwrap();
        for _ in 0..100 {
            est.record(RegionId(1));
            est.record(RegionId(1));
            est.record(RegionId(3));
            est.end_slot();
        }
        let p = est.popularity();
        assert!(p[1] > p[3]);
        assert!(p[3] > p[0]);
    }

    #[test]
    fn decay_forgets_old_interest() {
        let mut est = PopularityEstimator::new(2, 0, 0.5).unwrap();
        for _ in 0..20 {
            est.record(RegionId(0));
            est.end_slot();
        }
        // Interest flips to region 1.
        for _ in 0..20 {
            est.record(RegionId(1));
            est.end_slot();
        }
        let p = est.popularity();
        assert!(p[1] > p[0], "estimator must track the shift: {p:?}");
    }

    #[test]
    fn out_of_block_requests_ignored() {
        let mut est = PopularityEstimator::new(2, 5, 0.9).unwrap();
        est.record(RegionId(0));
        est.record(RegionId(9));
        let p = est.popularity();
        assert!((p[0] - 0.5).abs() < 1e-12, "counts must be untouched");
        assert_eq!(est.popularity_of(RegionId(0)), None);
        assert_eq!(est.popularity_of(RegionId(9)), None);
        assert!(est.popularity_of(RegionId(5)).is_some());
    }

    #[test]
    fn validation() {
        assert!(PopularityEstimator::new(0, 0, 0.9).is_err());
        assert!(PopularityEstimator::new(2, 0, 0.0).is_err());
        assert!(PopularityEstimator::new(2, 0, 1.5).is_err());
        assert!(PopularityEstimator::new(2, 0, 1.0).is_ok());
    }

    #[test]
    fn n_regions_accessor() {
        let est = PopularityEstimator::new(7, 0, 0.9).unwrap();
        assert_eq!(est.n_regions(), 7);
    }
}
