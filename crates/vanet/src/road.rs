//! The straight road and its regions.
//!
//! The paper's architecture (§II-A): a straight road divided into `L`
//! regions, each producing exactly one content (region `h` ↔ content `h`).

use crate::VanetError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a road region (and of the content that region produces).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct RegionId(pub usize);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

/// A straight one-way road of `length_m` meters divided into `n_regions`
/// equal regions.
///
/// ```
/// use vanet::Road;
/// let road = Road::new(1000.0, 10).unwrap();
/// assert_eq!(road.region_at(0.0).unwrap().0, 0);
/// assert_eq!(road.region_at(999.9).unwrap().0, 9);
/// assert!(road.region_at(1000.0).is_none()); // past the end
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Road {
    length_m: f64,
    n_regions: usize,
}

impl Road {
    /// Creates a road.
    ///
    /// # Errors
    ///
    /// Returns [`VanetError::BadParameter`] if `length_m` is not a positive
    /// finite number or `n_regions == 0`.
    pub fn new(length_m: f64, n_regions: usize) -> Result<Self, VanetError> {
        if !length_m.is_finite() || length_m <= 0.0 {
            return Err(VanetError::BadParameter {
                what: "length_m",
                valid: "> 0 and finite",
            });
        }
        if n_regions == 0 {
            return Err(VanetError::BadParameter {
                what: "n_regions",
                valid: ">= 1",
            });
        }
        Ok(Road {
            length_m,
            n_regions,
        })
    }

    /// Total length in meters.
    pub fn length_m(&self) -> f64 {
        self.length_m
    }

    /// Number of regions `L`.
    pub fn n_regions(&self) -> usize {
        self.n_regions
    }

    /// Length of one region in meters.
    pub fn region_length_m(&self) -> f64 {
        self.length_m / self.n_regions as f64
    }

    /// Region containing the position, or `None` if the position is off the
    /// road (`position < 0` or `position >= length_m`).
    pub fn region_at(&self, position_m: f64) -> Option<RegionId> {
        if !position_m.is_finite() || position_m < 0.0 || position_m >= self.length_m {
            return None;
        }
        let idx = (position_m / self.region_length_m()) as usize;
        Some(RegionId(idx.min(self.n_regions - 1)))
    }

    /// `[start, end)` bounds of a region in meters.
    ///
    /// # Panics
    ///
    /// Panics if the region index is out of range.
    pub fn region_bounds(&self, region: RegionId) -> (f64, f64) {
        assert!(region.0 < self.n_regions, "region out of range");
        let w = self.region_length_m();
        (region.0 as f64 * w, (region.0 + 1) as f64 * w)
    }

    /// Center position of a region in meters.
    ///
    /// # Panics
    ///
    /// Panics if the region index is out of range.
    pub fn region_center(&self, region: RegionId) -> f64 {
        let (lo, hi) = self.region_bounds(region);
        (lo + hi) / 2.0
    }

    /// Center of the road (where the MBS sits).
    pub fn center(&self) -> f64 {
        self.length_m / 2.0
    }

    /// Iterates all regions in order.
    pub fn regions(&self) -> impl Iterator<Item = RegionId> {
        (0..self.n_regions).map(RegionId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Road::new(0.0, 5).is_err());
        assert!(Road::new(-1.0, 5).is_err());
        assert!(Road::new(f64::NAN, 5).is_err());
        assert!(Road::new(100.0, 0).is_err());
        assert!(Road::new(100.0, 5).is_ok());
    }

    #[test]
    fn regions_partition_the_road() {
        let road = Road::new(1000.0, 8).unwrap();
        assert_eq!(road.region_length_m(), 125.0);
        for r in road.regions() {
            let (lo, hi) = road.region_bounds(r);
            assert_eq!(road.region_at(lo), Some(r));
            assert_eq!(road.region_at(hi - 1e-9), Some(r));
        }
    }

    #[test]
    fn off_road_positions() {
        let road = Road::new(100.0, 4).unwrap();
        assert_eq!(road.region_at(-0.1), None);
        assert_eq!(road.region_at(100.0), None);
        assert_eq!(road.region_at(f64::NAN), None);
    }

    #[test]
    fn centers() {
        let road = Road::new(100.0, 4).unwrap();
        assert_eq!(road.center(), 50.0);
        assert_eq!(road.region_center(RegionId(0)), 12.5);
        assert_eq!(road.region_center(RegionId(3)), 87.5);
    }

    #[test]
    fn region_display() {
        assert_eq!(RegionId(3).to_string(), "region#3");
    }

    #[test]
    #[should_panic(expected = "region out of range")]
    fn bounds_out_of_range_panics() {
        let road = Road::new(100.0, 2).unwrap();
        let _ = road.region_bounds(RegionId(2));
    }
}
