//! Road-side units and their coverage layout.

use crate::road::{RegionId, Road};
use crate::VanetError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// Index of a road-side unit.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct RsuId(pub usize);

impl fmt::Display for RsuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rsu#{}", self.0)
    }
}

/// Assignment of contiguous region blocks to RSUs.
///
/// The paper deploys RSUs "at specific distance intervals", each covering
/// `L′` regions; every region is covered by exactly one RSU and each RSU
/// caches exactly the contents of its covered regions.
///
/// When `n_regions` is not divisible by `n_rsus`, the first
/// `n_regions mod n_rsus` RSUs cover one extra region, so the layout is
/// always an exact partition.
///
/// ```
/// use vanet::{RsuLayout, RegionId, RsuId};
/// let layout = RsuLayout::new(20, 4).unwrap();
/// assert_eq!(layout.regions_per_rsu(), 5);
/// assert_eq!(layout.covering_rsu(RegionId(7)), RsuId(1));
/// assert_eq!(layout.coverage(RsuId(1)), 5..10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RsuLayout {
    n_regions: usize,
    n_rsus: usize,
    /// `starts[k]..starts[k+1]` is RSU k's coverage.
    starts: Vec<usize>,
}

impl RsuLayout {
    /// Partitions `n_regions` among `n_rsus` contiguous blocks.
    ///
    /// # Errors
    ///
    /// Returns [`VanetError::BadLayout`] unless `1 ≤ n_rsus ≤ n_regions`.
    pub fn new(n_regions: usize, n_rsus: usize) -> Result<Self, VanetError> {
        if n_rsus == 0 || n_rsus > n_regions {
            return Err(VanetError::BadLayout { n_regions, n_rsus });
        }
        let base = n_regions / n_rsus;
        let extra = n_regions % n_rsus;
        let mut starts = Vec::with_capacity(n_rsus + 1);
        let mut pos = 0;
        for k in 0..n_rsus {
            starts.push(pos);
            pos += base + usize::from(k < extra);
        }
        starts.push(pos);
        debug_assert_eq!(pos, n_regions);
        Ok(RsuLayout {
            n_regions,
            n_rsus,
            starts,
        })
    }

    /// Number of regions `L`.
    pub fn n_regions(&self) -> usize {
        self.n_regions
    }

    /// Number of RSUs `N_R`.
    pub fn n_rsus(&self) -> usize {
        self.n_rsus
    }

    /// Nominal regions per RSU (`L′`, the base block size).
    pub fn regions_per_rsu(&self) -> usize {
        self.n_regions / self.n_rsus
    }

    /// The contiguous region range RSU `k` covers (and caches).
    ///
    /// # Panics
    ///
    /// Panics if `rsu` is out of range.
    pub fn coverage(&self, rsu: RsuId) -> Range<usize> {
        assert!(rsu.0 < self.n_rsus, "rsu out of range");
        self.starts[rsu.0]..self.starts[rsu.0 + 1]
    }

    /// Number of regions RSU `k` covers.
    ///
    /// # Panics
    ///
    /// Panics if `rsu` is out of range.
    pub fn coverage_len(&self, rsu: RsuId) -> usize {
        let r = self.coverage(rsu);
        r.end - r.start
    }

    /// The RSU covering a region.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn covering_rsu(&self, region: RegionId) -> RsuId {
        assert!(region.0 < self.n_regions, "region out of range");
        // starts is sorted; find the last start <= region.
        let k = match self.starts.binary_search(&region.0) {
            Ok(k) => k.min(self.n_rsus - 1),
            Err(k) => k - 1,
        };
        RsuId(k)
    }

    /// Whether RSU `k` covers (and therefore caches) the content of
    /// `region`.
    pub fn covers(&self, rsu: RsuId, region: RegionId) -> bool {
        rsu.0 < self.n_rsus && self.coverage(rsu).contains(&region.0)
    }

    /// Iterates all RSU ids.
    pub fn rsus(&self) -> impl Iterator<Item = RsuId> {
        (0..self.n_rsus).map(RsuId)
    }

    /// Physical position of RSU `k` on a road: the center of its coverage
    /// block (used by distance-based cost models).
    pub fn position_on(&self, road: &Road, rsu: RsuId) -> f64 {
        let range = self.coverage(rsu);
        let (lo, _) = road.region_bounds(RegionId(range.start));
        let (_, hi) = road.region_bounds(RegionId(range.end - 1));
        (lo + hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition() {
        let layout = RsuLayout::new(20, 5).unwrap();
        assert_eq!(layout.regions_per_rsu(), 4);
        for k in layout.rsus() {
            assert_eq!(layout.coverage_len(k), 4);
        }
    }

    #[test]
    fn uneven_partition_is_exact() {
        let layout = RsuLayout::new(10, 3).unwrap();
        let total: usize = layout.rsus().map(|k| layout.coverage_len(k)).sum();
        assert_eq!(total, 10);
        // First RSU takes the remainder.
        assert_eq!(layout.coverage(RsuId(0)), 0..4);
        assert_eq!(layout.coverage(RsuId(1)), 4..7);
        assert_eq!(layout.coverage(RsuId(2)), 7..10);
    }

    #[test]
    fn covering_rsu_is_inverse_of_coverage() {
        let layout = RsuLayout::new(17, 4).unwrap();
        for k in layout.rsus() {
            for r in layout.coverage(k) {
                assert_eq!(layout.covering_rsu(RegionId(r)), k);
                assert!(layout.covers(k, RegionId(r)));
            }
        }
    }

    #[test]
    fn covers_is_exclusive() {
        let layout = RsuLayout::new(8, 2).unwrap();
        assert!(layout.covers(RsuId(0), RegionId(3)));
        assert!(!layout.covers(RsuId(1), RegionId(3)));
    }

    #[test]
    fn rejects_bad_layouts() {
        assert!(RsuLayout::new(4, 0).is_err());
        assert!(RsuLayout::new(4, 5).is_err());
        assert!(RsuLayout::new(4, 4).is_ok());
    }

    #[test]
    fn positions_are_within_road() {
        let road = Road::new(1000.0, 10).unwrap();
        let layout = RsuLayout::new(10, 3).unwrap();
        for k in layout.rsus() {
            let p = layout.position_on(&road, k);
            assert!(p > 0.0 && p < 1000.0);
        }
        // RSU positions must be increasing along the road.
        let ps: Vec<f64> = layout
            .rsus()
            .map(|k| layout.position_on(&road, k))
            .collect();
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display() {
        assert_eq!(RsuId(2).to_string(), "rsu#2");
    }

    #[test]
    #[should_panic(expected = "rsu out of range")]
    fn coverage_out_of_range_panics() {
        let layout = RsuLayout::new(4, 2).unwrap();
        let _ = layout.coverage(RsuId(2));
    }
}
