//! Content request generation: Zipf popularity over an RSU's cached
//! contents.

use crate::road::RegionId;
use crate::rsu::{RsuId, RsuLayout};
use crate::vehicle::{Vehicle, VehicleId};
use crate::VanetError;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// A Zipf distribution over `n` ranks with exponent `s`
/// (`P(rank i) ∝ 1/(i+1)^s`).
///
/// Content popularity in edge-caching evaluations is conventionally
/// Zipf-distributed; `s = 0` degenerates to uniform.
///
/// ```
/// use vanet::Zipf;
/// let z = Zipf::new(4, 1.0).unwrap();
/// let pmf = z.pmf();
/// assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(pmf[0] > pmf[3]); // rank 0 is the most popular
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    exponent: f64,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n ≥ 1` ranks.
    ///
    /// # Errors
    ///
    /// Returns [`VanetError::BadParameter`] if `n == 0` or the exponent is
    /// negative/non-finite.
    pub fn new(n: usize, exponent: f64) -> Result<Self, VanetError> {
        if n == 0 {
            return Err(VanetError::BadParameter {
                what: "n",
                valid: ">= 1",
            });
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(VanetError::BadParameter {
                what: "exponent",
                valid: ">= 0 and finite",
            });
        }
        let weights: Vec<f64> = (0..n)
            .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Ok(Zipf { exponent, cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero ranks (never true; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The probability mass function over ranks.
    pub fn pmf(&self) -> Vec<f64> {
        let mut prev = 0.0;
        self.cdf
            .iter()
            .map(|c| {
                let p = c - prev;
                prev = *c;
                p
            })
            .collect()
    }

    /// Samples a rank.
    pub fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// One content request issued by a vehicle to the RSU covering it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Requesting vehicle.
    pub vehicle: VehicleId,
    /// RSU receiving the request (the one covering the vehicle's position).
    pub rsu: RsuId,
    /// Requested content's region.
    pub region: RegionId,
}

/// Generates requests from the vehicles on the road.
///
/// Each slot, every vehicle requests a content with probability
/// `request_probability`; the content is drawn Zipf-distributed over the
/// covering RSU's cached regions, with ranks ordered by distance ahead of
/// the vehicle (the region just ahead is the most popular — vehicles care
/// about upcoming road conditions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestGenerator {
    request_probability: f64,
    zipf_exponent: f64,
}

impl RequestGenerator {
    /// Creates a generator.
    ///
    /// # Errors
    ///
    /// Returns [`VanetError::BadParameter`] for a request probability
    /// outside `[0, 1]` or a bad Zipf exponent.
    pub fn new(request_probability: f64, zipf_exponent: f64) -> Result<Self, VanetError> {
        if !(0.0..=1.0).contains(&request_probability) {
            return Err(VanetError::BadParameter {
                what: "request_probability",
                valid: "[0, 1]",
            });
        }
        if !zipf_exponent.is_finite() || zipf_exponent < 0.0 {
            return Err(VanetError::BadParameter {
                what: "zipf_exponent",
                valid: ">= 0 and finite",
            });
        }
        Ok(RequestGenerator {
            request_probability,
            zipf_exponent,
        })
    }

    /// Per-vehicle per-slot request probability.
    pub fn request_probability(&self) -> f64 {
        self.request_probability
    }

    /// Generates this slot's requests for the given vehicles.
    ///
    /// Vehicles that are off the road (should not happen when driven by
    /// [`Traffic`](crate::Traffic)) are skipped.
    pub fn generate(
        &self,
        vehicles: &[Vehicle],
        road: &crate::road::Road,
        layout: &RsuLayout,
        rng: &mut dyn RngCore,
    ) -> Vec<Request> {
        let mut requests = Vec::new();
        for v in vehicles {
            if rng.gen::<f64>() >= self.request_probability {
                continue;
            }
            let Some(region) = road.region_at(v.position_m) else {
                continue;
            };
            let rsu = layout.covering_rsu(region);
            let coverage = layout.coverage(rsu);
            let n = coverage.end - coverage.start;
            // Rank regions by distance ahead of the vehicle (wrapping within
            // the coverage block): rank 0 = own region, rank 1 = next, ...
            let zipf = Zipf::new(n, self.zipf_exponent).expect("validated at construction");
            let rank = zipf.sample(rng);
            let offset = region.0 - coverage.start;
            let target = coverage.start + (offset + rank) % n;
            requests.push(Request {
                vehicle: v.id,
                rsu,
                region: RegionId(target),
            });
        }
        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::Road;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one_and_decreases() {
        for s in [0.0, 0.5, 1.0, 2.0] {
            let z = Zipf::new(6, s).unwrap();
            let pmf = z.pmf();
            assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            for w in pmf.windows(2) {
                assert!(w[0] >= w[1] - 1e-12, "pmf must be non-increasing");
            }
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for p in z.pmf() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipf::new(5, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        let pmf = z.pmf();
        for (i, c) in counts.iter().enumerate() {
            let freq = *c as f64 / n as f64;
            assert!(
                (freq - pmf[i]).abs() < 0.01,
                "rank {i}: freq {freq} vs pmf {}",
                pmf[i]
            );
        }
    }

    #[test]
    fn zipf_validation() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(3, -1.0).is_err());
        assert!(Zipf::new(3, f64::NAN).is_err());
        let z = Zipf::new(3, 1.0).unwrap();
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
        assert_eq!(z.exponent(), 1.0);
    }

    #[test]
    fn requests_target_covering_rsu_and_covered_region() {
        let road = Road::new(1000.0, 20).unwrap();
        let layout = RsuLayout::new(20, 4).unwrap();
        let generator = RequestGenerator::new(1.0, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let vehicles: Vec<Vehicle> = (0..50)
            .map(|i| Vehicle {
                id: VehicleId(i),
                position_m: (i as f64) * 19.9,
                speed_mps: 10.0,
            })
            .collect();
        let requests = generator.generate(&vehicles, &road, &layout, &mut rng);
        assert_eq!(requests.len(), 50);
        for r in &requests {
            assert!(layout.covers(r.rsu, r.region), "{r:?}");
            // The RSU must be the one covering the vehicle's position.
            let v = &vehicles[r.vehicle.0 as usize];
            let vehicle_region = road.region_at(v.position_m).unwrap();
            assert_eq!(layout.covering_rsu(vehicle_region), r.rsu);
        }
    }

    #[test]
    fn zero_probability_generates_nothing() {
        let road = Road::new(100.0, 4).unwrap();
        let layout = RsuLayout::new(4, 2).unwrap();
        let generator = RequestGenerator::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let vehicles = [Vehicle {
            id: VehicleId(0),
            position_m: 10.0,
            speed_mps: 5.0,
        }];
        assert!(generator
            .generate(&vehicles, &road, &layout, &mut rng)
            .is_empty());
    }

    #[test]
    fn own_region_is_most_requested() {
        let road = Road::new(1000.0, 10).unwrap();
        let layout = RsuLayout::new(10, 2).unwrap();
        let generator = RequestGenerator::new(1.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // A single vehicle parked in region 2 (covered by RSU 0: 0..5).
        let vehicles = [Vehicle {
            id: VehicleId(0),
            position_m: 250.0,
            speed_mps: 0.0,
        }];
        // BTreeMap so the failure message (and any future per-region
        // accounting) iterates in region order, deterministically.
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..5_000 {
            for r in generator.generate(&vehicles, &road, &layout, &mut rng) {
                *counts.entry(r.region.0).or_insert(0usize) += 1;
            }
        }
        let own = counts.get(&2).copied().unwrap_or(0);
        for (region, c) in &counts {
            if *region != 2 {
                assert!(own >= *c, "own region must dominate: {counts:?}");
            }
        }
    }

    #[test]
    fn generator_validation() {
        assert!(RequestGenerator::new(1.5, 1.0).is_err());
        assert!(RequestGenerator::new(0.5, -0.5).is_err());
        let g = RequestGenerator::new(0.5, 1.0).unwrap();
        assert_eq!(g.request_probability(), 0.5);
    }
}
