//! Request-trace recording and replay.
//!
//! Comparing policies fairly requires the *identical* workload. A
//! [`RequestTrace`] freezes the per-slot request stream of a live
//! [`Network`] so that any number of controller variants can be replayed
//! against it (and, being serde-serializable, traces can be persisted and
//! shared as synthetic "datasets").

use crate::error::VanetError;
use crate::network::Network;
use crate::request::Request;
use crate::road::RegionId;
use crate::rsu::RsuId;
use crate::vehicle::VehicleId;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::io;

/// Header line of the on-disk trace format (see
/// [`RequestTrace::write_to`]).
pub const TRACE_HEADER: &str = "aoi-request-trace v1";

/// A frozen per-slot request stream.
///
/// ```
/// use vanet::{Network, NetworkConfig, RequestTrace};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut network = Network::new(NetworkConfig::default())?;
/// let mut rng = StdRng::seed_from_u64(3);
/// network.warm_up(30, &mut rng);
/// let trace = RequestTrace::record(&mut network, 100, &mut rng);
/// assert_eq!(trace.len(), 100);
/// // Replay: every policy sees the same requests in the same slots.
/// for (slot, requests) in trace.iter().enumerate() {
///     let _ = (slot, requests);
/// }
/// # Ok::<(), vanet::VanetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RequestTrace {
    slots: Vec<Vec<Request>>,
}

impl RequestTrace {
    /// Steps the network for `slots` slots, recording every request.
    pub fn record(network: &mut Network, slots: usize, rng: &mut dyn RngCore) -> Self {
        let mut recorded = Vec::with_capacity(slots);
        for _ in 0..slots {
            recorded.push(network.step(rng).requests);
        }
        RequestTrace { slots: recorded }
    }

    /// Builds a trace from explicit per-slot request lists.
    pub fn from_slots(slots: Vec<Vec<Request>>) -> Self {
        RequestTrace { slots }
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the trace has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The requests of slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len()`.
    pub fn slot(&self, t: usize) -> &[Request] {
        &self.slots[t]
    }

    /// Iterates the per-slot request lists in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &[Request]> {
        self.slots.iter().map(Vec::as_slice)
    }

    /// Total requests across all slots.
    pub fn total_requests(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Per-RSU request totals (indexed by RSU id; `n_rsus` sets the output
    /// length so RSUs with zero requests still appear).
    pub fn requests_per_rsu(&self, n_rsus: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_rsus];
        for slot in &self.slots {
            for r in slot {
                if r.rsu.0 < n_rsus {
                    counts[r.rsu.0] += 1;
                }
            }
        }
        counts
    }

    /// Per-slot arrival counts for one RSU — the arrival trace a stage-2
    /// queue simulation consumes.
    pub fn arrivals_for(&self, rsu: crate::rsu::RsuId) -> Vec<f64> {
        self.slots
            .iter()
            .map(|slot| slot.iter().filter(|r| r.rsu == rsu).count() as f64)
            .collect()
    }

    /// Writes the trace in its versioned line format, so recorded request
    /// logs can drive the `aoi-serve` engine (or any replay) from disk:
    ///
    /// ```text
    /// aoi-request-trace v1
    /// slot
    /// req <vehicle> <rsu> <region>
    /// ...
    /// end <total-requests>
    /// ```
    ///
    /// Each `slot` line opens the next slot (empty slots are just
    /// consecutive `slot` lines); every `req` belongs to the most recent
    /// one; the `end` trailer carries the total request count so
    /// truncation is detectable. The writer is destination-agnostic —
    /// callers open files (or sockets, or in-memory buffers) themselves.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of the destination.
    pub fn write_to(&self, mut w: impl io::Write) -> io::Result<()> {
        writeln!(w, "{TRACE_HEADER}")?;
        for slot in &self.slots {
            writeln!(w, "slot")?;
            for r in slot {
                writeln!(w, "req {} {} {}", r.vehicle.0, r.rsu.0, r.region.0)?;
            }
        }
        writeln!(w, "end {}", self.total_requests())
    }

    /// Reads a trace written by [`write_to`](RequestTrace::write_to) back,
    /// bit-identically. Blank lines are skipped and unknown *fields* after
    /// a record's known ones are ignored (the same forward-compatibility
    /// rule the artifact format uses); unknown record kinds, a missing or
    /// foreign header, a count-mismatched or absent `end` trailer all
    /// fail.
    ///
    /// # Errors
    ///
    /// Returns [`VanetError::BadTrace`] naming the offending line.
    pub fn read_from(r: impl io::BufRead) -> Result<Self, VanetError> {
        let bad = |line: usize, why: String| VanetError::BadTrace { line, why };
        let mut slots: Vec<Vec<Request>> = Vec::new();
        let mut total = 0usize;
        let mut saw_header = false;
        let mut ended = false;
        for (i, line) in r.lines().enumerate() {
            let n = i + 1;
            let line = line.map_err(|e| bad(n, format!("read failed: {e}")))?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if !saw_header {
                if line != TRACE_HEADER {
                    return Err(bad(n, format!("expected `{TRACE_HEADER}` header")));
                }
                saw_header = true;
                continue;
            }
            if ended {
                return Err(bad(n, "content after `end` trailer".to_string()));
            }
            let mut fields = line.split_whitespace();
            let kind = fields.next().unwrap_or_default();
            let mut field = |what: &str| -> Result<u64, VanetError> {
                fields
                    .next()
                    .ok_or_else(|| bad(n, format!("missing {what}")))?
                    .parse::<u64>()
                    .map_err(|_| bad(n, format!("unparseable {what}")))
            };
            match kind {
                "slot" => slots.push(Vec::new()),
                "req" => {
                    let vehicle = VehicleId(field("vehicle id")?);
                    let rsu = RsuId(field("rsu id")? as usize);
                    let region = RegionId(field("region id")? as usize);
                    slots
                        .last_mut()
                        .ok_or_else(|| bad(n, "`req` before any `slot`".to_string()))?
                        .push(Request {
                            vehicle,
                            rsu,
                            region,
                        });
                    total += 1;
                }
                "end" => {
                    let declared = field("request count")? as usize;
                    if declared != total {
                        return Err(bad(
                            n,
                            format!("trailer declares {declared} requests, file has {total}"),
                        ));
                    }
                    ended = true;
                }
                other => return Err(bad(n, format!("unknown record `{other}`"))),
            }
        }
        if !saw_header {
            return Err(bad(0, "empty trace file".to_string()));
        }
        if !ended {
            return Err(bad(
                0,
                "missing `end` trailer (truncated trace)".to_string(),
            ));
        }
        Ok(RequestTrace { slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::rsu::RsuId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn recorded(seed: u64, slots: usize) -> RequestTrace {
        let mut network = Network::new(NetworkConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        network.warm_up(30, &mut rng);
        RequestTrace::record(&mut network, slots, &mut rng)
    }

    #[test]
    fn recording_is_deterministic() {
        let a = recorded(5, 50);
        let b = recorded(5, 50);
        assert_eq!(a, b);
        assert_ne!(a, recorded(6, 50));
    }

    #[test]
    fn counts_are_consistent() {
        let trace = recorded(7, 80);
        assert_eq!(trace.len(), 80);
        assert!(!trace.is_empty());
        let total = trace.total_requests();
        assert!(total > 0);
        let per_rsu: usize = trace.requests_per_rsu(4).iter().sum();
        assert_eq!(per_rsu, total);
        let per_slot: usize = trace.iter().map(<[Request]>::len).sum();
        assert_eq!(per_slot, total);
    }

    #[test]
    fn arrivals_extraction_matches_slot_contents() {
        let trace = recorded(9, 40);
        let arrivals = trace.arrivals_for(RsuId(0));
        assert_eq!(arrivals.len(), 40);
        for (t, a) in arrivals.iter().enumerate() {
            let direct = trace.slot(t).iter().filter(|r| r.rsu == RsuId(0)).count();
            assert_eq!(*a, direct as f64);
        }
    }

    #[test]
    fn disk_format_round_trips() {
        let trace = recorded(11, 60);
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let back = RequestTrace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back, trace);
        // Empty slots survive too.
        let sparse = RequestTrace::from_slots(vec![vec![], trace.slot(0).to_vec(), vec![]]);
        let mut bytes = Vec::new();
        sparse.write_to(&mut bytes).unwrap();
        assert_eq!(RequestTrace::read_from(bytes.as_slice()).unwrap(), sparse);
    }

    #[test]
    fn disk_format_rejects_malformed_input() {
        let reject = |text: &str, needle: &str| {
            let err = RequestTrace::read_from(text.as_bytes()).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{text}` gave {err} (wanted `{needle}`)"
            );
        };
        reject("", "empty");
        reject("not-a-trace v1\nend 0\n", "header");
        reject("aoi-request-trace v1\nslot\n", "missing `end`");
        reject(
            "aoi-request-trace v1\nreq 0 0 0\nend 1\n",
            "before any `slot`",
        );
        reject(
            "aoi-request-trace v1\nslot\nreq 0 0 0\nend 7\n",
            "declares 7",
        );
        reject("aoi-request-trace v1\nslot\nreq 0 x 0\nend 1\n", "rsu id");
        reject("aoi-request-trace v1\nslot\nwat\nend 0\n", "unknown record");
        reject("aoi-request-trace v1\nend 0\nslot\n", "after `end`");
    }

    #[test]
    fn empty_and_manual_traces() {
        let empty = RequestTrace::default();
        assert!(empty.is_empty());
        assert_eq!(empty.total_requests(), 0);
        let manual = RequestTrace::from_slots(vec![vec![], vec![]]);
        assert_eq!(manual.len(), 2);
        assert_eq!(manual.total_requests(), 0);
    }
}
