//! Request-trace recording and replay.
//!
//! Comparing policies fairly requires the *identical* workload. A
//! [`RequestTrace`] freezes the per-slot request stream of a live
//! [`Network`] so that any number of controller variants can be replayed
//! against it (and, being serde-serializable, traces can be persisted and
//! shared as synthetic "datasets").

use crate::network::Network;
use crate::request::Request;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A frozen per-slot request stream.
///
/// ```
/// use vanet::{Network, NetworkConfig, RequestTrace};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut network = Network::new(NetworkConfig::default())?;
/// let mut rng = StdRng::seed_from_u64(3);
/// network.warm_up(30, &mut rng);
/// let trace = RequestTrace::record(&mut network, 100, &mut rng);
/// assert_eq!(trace.len(), 100);
/// // Replay: every policy sees the same requests in the same slots.
/// for (slot, requests) in trace.iter().enumerate() {
///     let _ = (slot, requests);
/// }
/// # Ok::<(), vanet::VanetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RequestTrace {
    slots: Vec<Vec<Request>>,
}

impl RequestTrace {
    /// Steps the network for `slots` slots, recording every request.
    pub fn record(network: &mut Network, slots: usize, rng: &mut dyn RngCore) -> Self {
        let mut recorded = Vec::with_capacity(slots);
        for _ in 0..slots {
            recorded.push(network.step(rng).requests);
        }
        RequestTrace { slots: recorded }
    }

    /// Builds a trace from explicit per-slot request lists.
    pub fn from_slots(slots: Vec<Vec<Request>>) -> Self {
        RequestTrace { slots }
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the trace has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The requests of slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len()`.
    pub fn slot(&self, t: usize) -> &[Request] {
        &self.slots[t]
    }

    /// Iterates the per-slot request lists in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &[Request]> {
        self.slots.iter().map(Vec::as_slice)
    }

    /// Total requests across all slots.
    pub fn total_requests(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Per-RSU request totals (indexed by RSU id; `n_rsus` sets the output
    /// length so RSUs with zero requests still appear).
    pub fn requests_per_rsu(&self, n_rsus: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_rsus];
        for slot in &self.slots {
            for r in slot {
                if r.rsu.0 < n_rsus {
                    counts[r.rsu.0] += 1;
                }
            }
        }
        counts
    }

    /// Per-slot arrival counts for one RSU — the arrival trace a stage-2
    /// queue simulation consumes.
    pub fn arrivals_for(&self, rsu: crate::rsu::RsuId) -> Vec<f64> {
        self.slots
            .iter()
            .map(|slot| slot.iter().filter(|r| r.rsu == rsu).count() as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::rsu::RsuId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn recorded(seed: u64, slots: usize) -> RequestTrace {
        let mut network = Network::new(NetworkConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        network.warm_up(30, &mut rng);
        RequestTrace::record(&mut network, slots, &mut rng)
    }

    #[test]
    fn recording_is_deterministic() {
        let a = recorded(5, 50);
        let b = recorded(5, 50);
        assert_eq!(a, b);
        assert_ne!(a, recorded(6, 50));
    }

    #[test]
    fn counts_are_consistent() {
        let trace = recorded(7, 80);
        assert_eq!(trace.len(), 80);
        assert!(!trace.is_empty());
        let total = trace.total_requests();
        assert!(total > 0);
        let per_rsu: usize = trace.requests_per_rsu(4).iter().sum();
        assert_eq!(per_rsu, total);
        let per_slot: usize = trace.iter().map(<[Request]>::len).sum();
        assert_eq!(per_slot, total);
    }

    #[test]
    fn arrivals_extraction_matches_slot_contents() {
        let trace = recorded(9, 40);
        let arrivals = trace.arrivals_for(RsuId(0));
        assert_eq!(arrivals.len(), 40);
        for (t, a) in arrivals.iter().enumerate() {
            let direct = trace.slot(t).iter().filter(|r| r.rsu == RsuId(0)).count();
            assert_eq!(*a, direct as f64);
        }
    }

    #[test]
    fn empty_and_manual_traces() {
        let empty = RequestTrace::default();
        assert!(empty.is_empty());
        assert_eq!(empty.total_requests(), 0);
        let manual = RequestTrace::from_slots(vec![vec![], vec![]]);
        assert_eq!(manual.len(), 2);
        assert_eq!(manual.total_requests(), 0);
    }
}
