//! Stage-2 simulator: delay-aware content service (the paper's Fig. 1b).
//!
//! One RSU queue under Poisson request arrivals; a [`ServicePolicy`] picks a
//! service level each slot. All policies compared on a scenario face the
//! **identical arrival trace** (drawn once from the scenario seed), so
//! differences are purely due to the decision rule.

use crate::service::{ServiceDecisionContext, ServiceLevel, ServicePolicy, ServicePolicyKind};
use crate::AoiCacheError;
use lyapunov::analysis::{check_stability, StabilityVerdict};
use lyapunov::Queue;
use serde::{Deserialize, Serialize};
use simkit::{sample_poisson, SeedSequence, SlotClock, TimeSeries};

/// Configuration of a stage-2 service-control experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceScenario {
    /// Mean request arrivals per slot (Poisson); ignored when
    /// `external_arrivals` is set.
    pub arrival_rate: f64,
    /// The service-level menu.
    pub levels: Vec<ServiceLevel>,
    /// Lyapunov tradeoff coefficient used by the proposed policy.
    pub v: f64,
    /// Simulation length in slots (the paper runs 1000).
    pub horizon: usize,
    /// Initial backlog.
    pub initial_backlog: f64,
    /// Root seed for the arrival trace.
    pub seed: u64,
    /// Externally supplied per-slot arrivals (e.g. one RSU's stream from a
    /// recorded [`vanet::RequestTrace`]); overrides the Poisson process and
    /// the horizon is clamped to its length.
    pub external_arrivals: Option<Vec<f64>>,
}

impl Default for ServiceScenario {
    /// Fig. 1b setup: moderate load against the standard three-level menu.
    fn default() -> Self {
        ServiceScenario {
            arrival_rate: 0.9,
            levels: ServiceLevel::standard_menu(),
            v: 20.0,
            horizon: 1000,
            initial_backlog: 0.0,
            seed: 11,
            external_arrivals: None,
        }
    }
}

impl ServiceScenario {
    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] for invalid settings.
    pub fn validate(&self) -> Result<(), AoiCacheError> {
        if !self.arrival_rate.is_finite() || self.arrival_rate < 0.0 {
            return Err(AoiCacheError::BadParameter {
                what: "arrival_rate",
                valid: ">= 0 and finite",
            });
        }
        if self.levels.is_empty() {
            return Err(AoiCacheError::BadParameter {
                what: "levels",
                valid: "non-empty",
            });
        }
        if self
            .levels
            .iter()
            .any(|l| !l.cost.is_finite() || l.cost < 0.0 || !l.rate.is_finite() || l.rate < 0.0)
        {
            return Err(AoiCacheError::BadParameter {
                what: "service levels",
                valid: ">= 0 and finite",
            });
        }
        if self.horizon == 0 {
            return Err(AoiCacheError::BadParameter {
                what: "horizon",
                valid: ">= 1",
            });
        }
        if !self.initial_backlog.is_finite() || self.initial_backlog < 0.0 {
            return Err(AoiCacheError::BadParameter {
                what: "initial_backlog",
                valid: ">= 0 and finite",
            });
        }
        if let Some(trace) = &self.external_arrivals {
            if trace.is_empty() {
                return Err(AoiCacheError::BadParameter {
                    what: "external_arrivals",
                    valid: "non-empty when set",
                });
            }
            if trace.iter().any(|a| !a.is_finite() || *a < 0.0) {
                return Err(AoiCacheError::BadParameter {
                    what: "external_arrivals",
                    valid: ">= 0 and finite",
                });
            }
        }
        Ok(())
    }

    /// The arrival trace all policies share: the external trace when set
    /// (clamped to the horizon), otherwise Poisson draws deterministic in
    /// the seed.
    pub fn arrival_trace(&self) -> Vec<f64> {
        if let Some(trace) = &self.external_arrivals {
            return trace.iter().copied().take(self.horizon).collect();
        }
        let mut seeds = SeedSequence::new(self.seed);
        let mut rng = seeds.rng("arrivals");
        (0..self.horizon)
            .map(|_| sample_poisson(self.arrival_rate, &mut rng) as f64)
            .collect()
    }
}

/// Everything measured in one stage-2 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceRunReport {
    /// Label of the policy that produced this run.
    pub policy: String,
    /// Backlog `Q[t]` after each slot (the paper's Fig. 1b curve).
    pub queue: TimeSeries,
    /// Cost incurred each slot.
    pub cost: TimeSeries,
    /// Time-average backlog.
    pub mean_queue: f64,
    /// Time-average cost.
    pub mean_cost: f64,
    /// Total requests served.
    pub total_served: f64,
    /// How often each service level was chosen.
    pub level_counts: Vec<u64>,
    /// Rate-stability verdict of the backlog trajectory.
    pub stability: StabilityVerdict,
}

/// Runs one policy on the scenario.
///
/// # Errors
///
/// Propagates scenario validation and policy-construction errors.
pub fn run_service(
    scenario: &ServiceScenario,
    kind: ServicePolicyKind,
) -> Result<ServiceRunReport, AoiCacheError> {
    scenario.validate()?;
    let policy = kind.build()?;
    run_service_with(scenario, policy)
}

/// Runs a caller-constructed policy on the scenario.
///
/// # Errors
///
/// Propagates scenario validation errors.
pub fn run_service_with(
    scenario: &ServiceScenario,
    mut policy: Box<dyn ServicePolicy>,
) -> Result<ServiceRunReport, AoiCacheError> {
    scenario.validate()?;
    let arrivals = scenario.arrival_trace();
    let mut seeds = SeedSequence::new(scenario.seed);
    let _ = seeds.rng("arrivals");
    let mut rng = seeds.rng("policy");

    let mut queue = Queue::with_backlog(scenario.initial_backlog);
    let mut clock = SlotClock::new();
    let mut queue_series = TimeSeries::with_capacity("queue", scenario.horizon);
    let mut cost_series = TimeSeries::with_capacity("cost", scenario.horizon);
    let mut level_counts = vec![0u64; scenario.levels.len()];
    let mut cost_sum = 0.0;
    let mut queue_sum = 0.0;
    let mut served = 0.0;

    for a in &arrivals {
        let now = clock.now();
        let decision = {
            let ctx = ServiceDecisionContext {
                slot: now,
                backlog: queue.backlog(),
                levels: &scenario.levels,
            };
            policy.decide(&ctx, &mut rng)
        };
        if decision >= scenario.levels.len() {
            return Err(AoiCacheError::BadParameter {
                what: "service decision",
                valid: "level index",
            });
        }
        let level = scenario.levels[decision];
        served += queue.step(*a, level.rate);
        level_counts[decision] += 1;
        cost_sum += level.cost;
        queue_sum += queue.backlog();
        queue_series.push(now, queue.backlog());
        cost_series.push(now, level.cost);
        clock.tick();
    }

    let effective_horizon = arrivals.len().max(1) as f64;
    let backlogs: Vec<f64> = queue_series.values().collect();
    Ok(ServiceRunReport {
        policy: policy.name().to_string(),
        stability: check_stability(&backlogs, 0.05),
        queue: queue_series,
        cost: cost_series,
        mean_queue: queue_sum / effective_horizon,
        mean_cost: cost_sum / effective_horizon,
        total_served: served,
        level_counts,
    })
}

/// Runs several policies on the identical arrival trace (the paper's
/// Fig. 1b comparison of the proposed rule against two baselines).
///
/// # Errors
///
/// Propagates per-run errors.
pub fn compare_service(
    scenario: &ServiceScenario,
    kinds: &[ServicePolicyKind],
) -> Result<Vec<ServiceRunReport>, AoiCacheError> {
    kinds.iter().map(|k| run_service(scenario, *k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> ServiceScenario {
        ServiceScenario {
            horizon: 2000,
            ..ServiceScenario::default()
        }
    }

    #[test]
    fn arrival_trace_is_deterministic_and_plausible() {
        let s = scenario();
        let a = s.arrival_trace();
        let b = s.arrival_trace();
        assert_eq!(a, b);
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!((mean - s.arrival_rate).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn lyapunov_is_stable_under_feasible_load() {
        let report = run_service(&scenario(), ServicePolicyKind::Lyapunov { v: 20.0 }).unwrap();
        assert_eq!(report.stability, StabilityVerdict::Stable);
        assert_eq!(report.policy, "lyapunov");
    }

    #[test]
    fn cost_greedy_queue_blows_up() {
        let report = run_service(&scenario(), ServicePolicyKind::CostGreedy).unwrap();
        assert_eq!(report.stability, StabilityVerdict::Unstable);
        // Idle forever: nothing served, queue ≈ total arrivals.
        assert_eq!(report.total_served, 0.0);
    }

    #[test]
    fn always_serve_has_lowest_queue_and_highest_cost() {
        let s = scenario();
        let always = run_service(&s, ServicePolicyKind::AlwaysServe).unwrap();
        let lyap = run_service(&s, ServicePolicyKind::Lyapunov { v: 20.0 }).unwrap();
        assert!(always.mean_queue <= lyap.mean_queue + 1e-9);
        assert!(always.mean_cost >= lyap.mean_cost - 1e-9);
    }

    #[test]
    fn lyapunov_sits_between_extremes() {
        // The paper's point: the proposed rule trades off cost and latency
        // *between* the two extremes.
        let s = scenario();
        let reports = compare_service(
            &s,
            &[
                ServicePolicyKind::Lyapunov { v: 20.0 },
                ServicePolicyKind::AlwaysServe,
                ServicePolicyKind::CostGreedy,
            ],
        )
        .unwrap();
        let (lyap, always, greedy) = (&reports[0], &reports[1], &reports[2]);
        assert!(lyap.mean_cost < always.mean_cost);
        assert!(lyap.mean_queue < greedy.mean_queue);
        assert_eq!(lyap.queue.len(), s.horizon);
    }

    #[test]
    fn larger_v_lowers_cost_and_grows_queue() {
        let s = scenario();
        let small = run_service(&s, ServicePolicyKind::Lyapunov { v: 2.0 }).unwrap();
        let large = run_service(&s, ServicePolicyKind::Lyapunov { v: 200.0 }).unwrap();
        assert!(large.mean_cost <= small.mean_cost + 1e-9);
        assert!(large.mean_queue >= small.mean_queue);
    }

    #[test]
    fn level_counts_total_horizon() {
        let report = run_service(&scenario(), ServicePolicyKind::Periodic { period: 2 }).unwrap();
        assert_eq!(report.level_counts.iter().sum::<u64>(), 2000);
        // Half the slots at full rate.
        assert_eq!(report.level_counts[2], 1000);
    }

    #[test]
    fn external_arrival_trace_is_used_verbatim() {
        let mut s = scenario();
        s.external_arrivals = Some(vec![2.0; 500]);
        s.horizon = 500;
        assert_eq!(s.arrival_trace(), vec![2.0; 500]);
        let report = run_service(&s, ServicePolicyKind::AlwaysServe).unwrap();
        assert_eq!(report.queue.len(), 500);
        // Service rate 3 > arrivals 2: everything except the in-flight slot
        // gets served.
        assert!(report.total_served > 900.0);
    }

    #[test]
    fn external_trace_clamps_horizon() {
        let mut s = scenario();
        s.external_arrivals = Some(vec![1.0; 100]);
        s.horizon = 10_000;
        let report = run_service(&s, ServicePolicyKind::AlwaysServe).unwrap();
        assert_eq!(report.queue.len(), 100);
        assert!(
            (report.mean_cost - 2.0).abs() < 1e-9,
            "normalized by the trace length"
        );
    }

    #[test]
    fn external_trace_validation() {
        let mut s = scenario();
        s.external_arrivals = Some(vec![]);
        assert!(run_service(&s, ServicePolicyKind::AlwaysServe).is_err());
        let mut s = scenario();
        s.external_arrivals = Some(vec![-1.0]);
        assert!(run_service(&s, ServicePolicyKind::AlwaysServe).is_err());
    }

    #[test]
    fn validation_rejects_bad_scenarios() {
        let mut s = scenario();
        s.arrival_rate = -1.0;
        assert!(run_service(&s, ServicePolicyKind::AlwaysServe).is_err());
        let mut s = scenario();
        s.levels.clear();
        assert!(run_service(&s, ServicePolicyKind::AlwaysServe).is_err());
        let mut s = scenario();
        s.horizon = 0;
        assert!(run_service(&s, ServicePolicyKind::AlwaysServe).is_err());
        let mut s = scenario();
        s.initial_backlog = f64::NAN;
        assert!(run_service(&s, ServicePolicyKind::AlwaysServe).is_err());
        let mut s = scenario();
        s.levels[0].cost = -2.0;
        assert!(run_service(&s, ServicePolicyKind::AlwaysServe).is_err());
    }
}
