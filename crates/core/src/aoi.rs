//! Age-of-information primitives.
//!
//! AoI is measured in whole slots and is **at least 1**: a content delivered
//! in the slot it was generated has age 1 when used. Ages are capped at a
//! finite `A_cap` so that the cache-management MDP has a finite state space;
//! the cap is chosen above every content's freshness limit `A^max_h`, so
//! capping never hides a violation.

use crate::AoiCacheError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::num::NonZeroU32;

/// An age-of-information value in slots (always ≥ 1).
///
/// ```
/// use aoi_cache::Age;
/// let age = Age::new(3).unwrap();
/// assert_eq!(age.get(), 3);
/// assert!(Age::new(0).is_none());
/// assert!(age.exceeds(Age::new(2).unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Age(NonZeroU32);

impl Age {
    /// The freshest possible age.
    pub const ONE: Age = Age(NonZeroU32::MIN);

    /// Creates an age; returns `None` for 0.
    pub fn new(slots: u32) -> Option<Age> {
        NonZeroU32::new(slots).map(Age)
    }

    /// The age in slots.
    pub fn get(self) -> u32 {
        self.0.get()
    }

    /// Ages by one slot, saturating at `cap`.
    #[must_use]
    pub fn aged(self, cap: Age) -> Age {
        let next = self.0.get().saturating_add(1).min(cap.get());
        // lint:allow(panic-hygiene): `next` is the min of two NonZero-backed
        // values, so it is always >= 1.
        Age(NonZeroU32::new(next).expect("ages are >= 1"))
    }

    /// Whether this age is beyond the freshness limit `max_age`
    /// (a *violation*: strictly older than allowed).
    pub fn exceeds(self, max_age: Age) -> bool {
        self.0 > max_age.0
    }

    /// `age / max_age` — the normalized staleness used in reports
    /// (1.0 = exactly at the limit).
    pub fn ratio_to(self, max_age: Age) -> f64 {
        f64::from(self.get()) / f64::from(max_age.get())
    }

    /// The paper's per-content AoI utility `A^max / A` (Eq. 2 term):
    /// maximal (= `A^max`) when fresh, 1 at the limit, < 1 beyond it.
    pub fn utility(self, max_age: Age) -> f64 {
        f64::from(max_age.get()) / f64::from(self.get())
    }
}

impl Default for Age {
    fn default() -> Self {
        Age::ONE
    }
}

impl fmt::Display for Age {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} slots", self.get())
    }
}

/// The AoI state of one RSU's cache: one age per cached content, all capped
/// at a common `A_cap`.
///
/// ```
/// use aoi_cache::{Age, AgeVector};
/// let mut ages = AgeVector::fresh(3, Age::new(10).unwrap());
/// ages.advance();           // everyone ages by one slot
/// ages.refresh(1);          // content 1 replaced by the MBS copy
/// assert_eq!(ages.age(1), Age::ONE);
/// assert_eq!(ages.age(0), Age::new(2).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgeVector {
    ages: Vec<Age>,
    cap: Age,
}

impl AgeVector {
    /// Creates a vector of `n` fresh (age-1) contents with the given cap.
    pub fn fresh(n: usize, cap: Age) -> Self {
        AgeVector {
            ages: vec![Age::ONE; n],
            cap,
        }
    }

    /// Creates a vector from explicit ages.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] if any age exceeds the cap or
    /// the vector is empty.
    pub fn from_ages(ages: Vec<Age>, cap: Age) -> Result<Self, AoiCacheError> {
        if ages.is_empty() {
            return Err(AoiCacheError::BadParameter {
                what: "ages",
                valid: "non-empty",
            });
        }
        if ages.iter().any(|a| *a > cap) {
            return Err(AoiCacheError::BadParameter {
                what: "age",
                valid: "<= cap",
            });
        }
        Ok(AgeVector { ages, cap })
    }

    /// Number of tracked contents.
    pub fn len(&self) -> usize {
        self.ages.len()
    }

    /// Whether the vector tracks no contents.
    pub fn is_empty(&self) -> bool {
        self.ages.is_empty()
    }

    /// The common age cap `A_cap`.
    pub fn cap(&self) -> Age {
        self.cap
    }

    /// Age of content `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn age(&self, i: usize) -> Age {
        self.ages[i]
    }

    /// All ages in content order.
    pub fn as_slice(&self) -> &[Age] {
        &self.ages
    }

    /// Ages every content by one slot (capped).
    pub fn advance(&mut self) {
        for a in &mut self.ages {
            *a = a.aged(self.cap);
        }
    }

    /// Replaces content `i` with a fresh copy (age 1).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn refresh(&mut self, i: usize) {
        self.ages[i] = Age::ONE;
    }

    /// Replaces content `i` with a copy of the given age (an MBS copy that
    /// is itself not perfectly fresh), capped.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn refresh_to(&mut self, i: usize, age: Age) {
        self.ages[i] = age.min(self.cap);
    }

    /// 0-based coordinates (age − 1 per content) for state-space encoding.
    pub fn coords(&self) -> Vec<usize> {
        self.coord_iter().collect()
    }

    /// Streams the 0-based coordinates without allocating — the per-slot
    /// state-encoding path of the simulators
    /// (pairs with [`ProductSpace::encode_iter`](mdp::ProductSpace::encode_iter)).
    pub fn coord_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.ages.iter().map(|a| (a.get() - 1) as usize)
    }

    /// Reconstructs an `AgeVector` from 0-based coordinates.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is ≥ cap.
    pub fn from_coords(coords: &[usize], cap: Age) -> Self {
        let ages = coords
            .iter()
            .map(|c| {
                // lint:allow(panic-hygiene): documented panic — from_coords'
                // contract rejects out-of-range coordinates.
                let v = u32::try_from(*c + 1).expect("coordinate fits u32");
                assert!(v <= cap.get(), "coordinate {c} out of cap {cap}");
                Age::new(v).expect("v >= 1") // lint:allow(panic-hygiene): v = c + 1 >= 1
            })
            .collect();
        AgeVector { ages, cap }
    }

    /// Number of contents whose age violates their freshness limit.
    pub fn count_violations(&self, max_ages: &[Age]) -> usize {
        assert_eq!(max_ages.len(), self.ages.len(), "length mismatch");
        self.ages
            .iter()
            .zip(max_ages)
            .filter(|(a, m)| a.exceeds(**m))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn age(v: u32) -> Age {
        Age::new(v).unwrap()
    }

    #[test]
    fn age_basics() {
        assert_eq!(Age::ONE.get(), 1);
        assert_eq!(Age::default(), Age::ONE);
        assert!(Age::new(0).is_none());
        assert_eq!(age(5).to_string(), "5 slots");
    }

    #[test]
    fn aging_saturates_at_cap() {
        let cap = age(3);
        let mut a = Age::ONE;
        a = a.aged(cap);
        assert_eq!(a, age(2));
        a = a.aged(cap);
        assert_eq!(a, age(3));
        a = a.aged(cap);
        assert_eq!(a, age(3), "must saturate");
    }

    #[test]
    fn utility_and_ratio() {
        let max = age(8);
        assert_eq!(Age::ONE.utility(max), 8.0);
        assert_eq!(age(8).utility(max), 1.0);
        assert!(age(10).utility(max) < 1.0);
        assert_eq!(age(4).ratio_to(max), 0.5);
    }

    #[test]
    fn violation_is_strict() {
        let max = age(5);
        assert!(!age(5).exceeds(max));
        assert!(age(6).exceeds(max));
    }

    #[test]
    fn vector_dynamics() {
        let mut v = AgeVector::fresh(4, age(6));
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        v.advance();
        v.advance();
        assert!(v.as_slice().iter().all(|a| *a == age(3)));
        v.refresh(2);
        assert_eq!(v.age(2), Age::ONE);
        v.refresh_to(0, age(9));
        assert_eq!(v.age(0), age(6), "refresh_to caps");
    }

    #[test]
    fn coords_roundtrip() {
        let cap = age(7);
        let v = AgeVector::from_ages(vec![age(1), age(4), age(7)], cap).unwrap();
        let coords = v.coords();
        assert_eq!(coords, vec![0, 3, 6]);
        let back = AgeVector::from_coords(&coords, cap);
        assert_eq!(back, v);
    }

    #[test]
    fn from_ages_validates() {
        assert!(AgeVector::from_ages(vec![], age(5)).is_err());
        assert!(AgeVector::from_ages(vec![age(6)], age(5)).is_err());
        assert!(AgeVector::from_ages(vec![age(5)], age(5)).is_ok());
    }

    #[test]
    fn violations_counted() {
        let v = AgeVector::from_ages(vec![age(2), age(5), age(9)], age(10)).unwrap();
        let max_ages = [age(3), age(4), age(9)];
        assert_eq!(v.count_violations(&max_ages), 1);
    }

    #[test]
    #[should_panic(expected = "out of cap")]
    fn from_coords_validates_cap() {
        let _ = AgeVector::from_coords(&[7], age(7));
    }
}
