//! The full two-stage scheme on the vehicular-network substrate.
//!
//! Each slot:
//!
//! 1. the network advances (mobility, requests, popularity estimates),
//! 2. **stage 1** — every RSU's cache policy picks an update using the
//!    *live* popularity estimate; updates are priced by the network's cost
//!    model (congestion models see the slot's concurrency),
//! 3. **stage 2** — every RSU's service policy drains its request queue;
//!    requests for contents older than their freshness limit are *stale
//!    hits* and incur an extra MBS-fetch cost,
//! 4. ages advance.
//!
//! Joint runs always execute one replicate at a time: the network substrate
//! couples every RSU through shared mobility and congestion state, so the
//! replicate-lane batching the cache kernel enjoys
//! ([`crate::run_batch`]) does not decompose here.
//! [`ExperimentPlan::batch`](crate::ExperimentPlan::batch) is therefore a
//! no-op for joint (and service) grids.

use crate::aoi::{Age, AgeVector};
use crate::catalog::Catalog;
use crate::engine::{RsuCacheEngine, RsuServiceEngine};
use crate::policy::{CachePolicyKind, CacheUpdatePolicy, CompiledRsuMdp, RsuSpec};
use crate::reward::RewardModel;
use crate::service::{ServiceLevel, ServicePolicy, ServicePolicyKind};
use crate::AoiCacheError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simkit::persist::{
    self, ArtifactKind, ArtifactWriter, Compression, Manifest, SharedArtifactWriter,
};
use simkit::{
    executor, RecordingMode, SeedSequence, SlotClock, Summary, TimeSeries, TraceRecorder,
};
use std::path::Path;
use vanet::{Network, NetworkConfig, RsuId};

/// Configuration of a joint two-stage experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointScenario {
    /// The road/traffic/request substrate.
    pub network: NetworkConfig,
    /// Age cap `A_cap`.
    pub age_cap: u32,
    /// Lower bound of per-content `A^max_h`.
    pub max_age_min: u32,
    /// Upper bound of per-content `A^max_h`.
    pub max_age_max: u32,
    /// The Eq. 1 AoI weight `w`.
    pub weight: f64,
    /// Stage-1 cache policy.
    pub cache_policy: CachePolicyKind,
    /// Stage-2 service policy.
    pub service_policy: ServicePolicyKind,
    /// Service-level menu of every RSU.
    pub levels: Vec<ServiceLevel>,
    /// Extra cost charged when a request hits a stale cached content (the
    /// RSU falls back to fetching from the MBS).
    pub mbs_fetch_cost: f64,
    /// Slots simulated (after warm-up).
    pub horizon: usize,
    /// Mobility-only warm-up slots.
    pub warmup: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for JointScenario {
    fn default() -> Self {
        JointScenario {
            network: NetworkConfig::default(),
            age_cap: 9,
            max_age_min: 4,
            max_age_max: 8,
            weight: 1.0,
            cache_policy: CachePolicyKind::Myopic,
            service_policy: ServicePolicyKind::Lyapunov { v: 20.0 },
            // Scaled to the default network's offered load (~15–20 requests
            // per slot per RSU at full traffic); the standard three-level
            // menu of the standalone stage-2 scenario would be overloaded.
            levels: vec![
                ServiceLevel::new(0.0, 0.0),
                ServiceLevel::new(1.0, 8.0),
                ServiceLevel::new(3.0, 25.0),
            ],
            mbs_fetch_cost: 1.0,
            horizon: 1000,
            warmup: 50,
            seed: 23,
        }
    }
}

impl JointScenario {
    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns parameter/scenario errors for inconsistent settings.
    pub fn validate(&self) -> Result<(), AoiCacheError> {
        if self.max_age_min == 0 || self.max_age_max < self.max_age_min {
            return Err(AoiCacheError::BadParameter {
                what: "max-age bounds",
                valid: "1 <= min <= max",
            });
        }
        if self.age_cap < self.max_age_max {
            return Err(AoiCacheError::BadScenario {
                why: "age cap must be at least the largest max age",
            });
        }
        if self.horizon == 0 {
            return Err(AoiCacheError::BadParameter {
                what: "horizon",
                valid: ">= 1",
            });
        }
        if self.levels.is_empty() {
            return Err(AoiCacheError::BadParameter {
                what: "levels",
                valid: "non-empty",
            });
        }
        if !self.mbs_fetch_cost.is_finite() || self.mbs_fetch_cost < 0.0 {
            return Err(AoiCacheError::BadParameter {
                what: "mbs_fetch_cost",
                valid: ">= 0 and finite",
            });
        }
        Ok(())
    }
}

/// Everything measured in one joint run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointReport {
    /// How much of the per-RSU backlog traces this run retained.
    pub recording: RecordingMode,
    /// Stage-1 per-slot Eq. 1 reward (live popularity).
    pub cache_reward: TimeSeries,
    /// Cumulative stage-1 reward.
    pub cumulative_cache_reward: TimeSeries,
    /// Per-RSU backlog trajectories — complete under
    /// [`RecordingMode::Full`], strided under [`RecordingMode::Decimate`],
    /// empty under [`RecordingMode::SummaryOnly`].
    pub queues: Vec<TimeSeries>,
    /// Exact per-RSU backlog summary statistics (over every slot,
    /// regardless of `recording`).
    pub queue_summaries: Vec<Summary>,
    /// Total requests issued by vehicles.
    pub total_requests: u64,
    /// Requests that hit a stale cached content.
    pub stale_requests: u64,
    /// Cache updates pushed.
    pub updates: u64,
    /// Mean backlog across RSUs and slots.
    pub mean_queue: f64,
    /// Mean per-slot service cost (all RSUs).
    pub mean_service_cost: f64,
    /// Mean per-slot update cost (all RSUs).
    pub mean_update_cost: f64,
    /// Mean per-slot stale-fallback cost (all RSUs).
    pub mean_stale_cost: f64,
}

impl JointReport {
    /// Fraction of requests served from fresh cache content.
    pub fn freshness_rate(&self) -> f64 {
        if self.total_requests == 0 {
            return 1.0;
        }
        1.0 - self.stale_requests as f64 / self.total_requests as f64
    }

    /// Mean per-slot total cost (service + updates + stale fallbacks).
    pub fn mean_total_cost(&self) -> f64 {
        self.mean_service_cost + self.mean_update_cost + self.mean_stale_cost
    }
}

/// Runs the full two-stage scheme, retaining every per-RSU backlog sample
/// ([`RecordingMode::Full`]).
///
/// # Errors
///
/// Propagates scenario validation, network construction and policy
/// construction errors.
pub fn run_joint(scenario: &JointScenario) -> Result<JointReport, AoiCacheError> {
    run_joint_recorded(scenario, RecordingMode::Full)
}

/// [`run_joint`] with an explicit backlog-trace retention policy.
///
/// The retention policy is a measurement knob, not part of the experiment
/// identity: every scalar statistic, the reward series and the cumulative
/// reward curve are identical in every mode — only how much of the
/// `O(horizon × RSUs)` backlog trace data is kept changes.
///
/// # Errors
///
/// Propagates scenario validation, network construction and policy
/// construction errors.
pub fn run_joint_recorded(
    scenario: &JointScenario,
    recording: RecordingMode,
) -> Result<JointReport, AoiCacheError> {
    run_joint_sunk(scenario, recording, None)
}

/// [`run_joint_recorded`], but **spilling** every retained backlog sample
/// to the artifact file at `path` slot by slot: the returned report's
/// [`queues`](JointReport::queues) are empty (the samples live on disk)
/// while every other field is identical to an in-memory run's. The
/// artifact also carries the cache-reward and cumulative-reward series;
/// re-reading it reconstructs each series bit-identically.
///
/// # Errors
///
/// Same conditions as [`run_joint_recorded`], plus artifact write
/// failures ([`AoiCacheError::Persist`]).
pub fn run_joint_artifact(
    scenario: &JointScenario,
    recording: RecordingMode,
    path: &Path,
) -> Result<JointReport, AoiCacheError> {
    run_joint_artifact_with(scenario, recording, path, Compression::None)
}

/// [`run_joint_artifact`] under an explicit artifact encoding (see
/// [`simkit::persist::compress`]); both encodings re-read transparently
/// and bit-identically.
///
/// # Errors
///
/// Same conditions as [`run_joint_artifact`].
pub fn run_joint_artifact_with(
    scenario: &JointScenario,
    recording: RecordingMode,
    path: &Path,
    compression: Compression,
) -> Result<JointReport, AoiCacheError> {
    scenario.validate()?;
    let manifest = Manifest {
        artifact: ArtifactKind::Trace,
        scenario: "joint".to_string(),
        policy: format!(
            "{}+{}",
            scenario.cache_policy.label(),
            scenario.service_policy.label()
        ),
        seed: Some(scenario.seed),
        recording,
        config_hash: persist::config_hash(scenario),
    };
    let writer = ArtifactWriter::create_with(path, &manifest, compression)
        .map_err(AoiCacheError::from)?
        .shared();
    let report = run_joint_sunk(scenario, recording, Some(&writer))?;
    ArtifactWriter::finish_shared(writer).map_err(AoiCacheError::from)?;
    Ok(report)
}

fn run_joint_sunk(
    scenario: &JointScenario,
    recording: RecordingMode,
    artifact: Option<&SharedArtifactWriter>,
) -> Result<JointReport, AoiCacheError> {
    scenario.validate()?;
    let mut seeds = SeedSequence::new(scenario.seed);
    let mut network = Network::new(scenario.network)?;
    let layout = network.layout().clone();
    let n_rsus = layout.n_rsus();
    // lint:allow(panic-hygiene): Scenario::validate already rejected a zero cap.
    let cap = Age::new(scenario.age_cap).expect("validated >= 1");

    // Catalog over all regions.
    let mut catalog_rng = seeds.rng("catalog");
    let catalog = Catalog::random(
        layout.n_regions(),
        scenario.max_age_min,
        scenario.max_age_max,
        &mut catalog_rng,
    )?;

    // Per-RSU problem specs; the build-time popularity is the (uniform)
    // initial estimate — live estimates flow in during the run.
    let specs: Vec<RsuSpec> = (0..n_rsus)
        .map(|k| {
            let coverage = layout.coverage(RsuId(k));
            let n_local = coverage.end - coverage.start;
            RsuSpec {
                max_ages: catalog.max_ages(coverage.clone()),
                popularity: vec![1.0 / n_local as f64; n_local],
                age_cap: cap,
                weight: scenario.weight,
                update_cost: network.update_cost(RsuId(k), 1),
            }
        })
        .collect();

    // Per-RSU MDP compiles and solves are independent, so they fan out
    // across the shared executor; each RSU builds from its own
    // deterministic RNG stream (derived up front, in RSU order), keeping
    // results identical for any worker count.
    let build_seeds: Vec<u64> = (0..n_rsus).map(|_| seeds.derive("policy-build")).collect();
    let workers = executor::worker_count(n_rsus, scenario.cache_policy.uses_mdp(), 1);
    type BuiltRsu = (
        Box<dyn CacheUpdatePolicy>,
        Box<dyn ServicePolicy>,
        RewardModel,
    );
    let built: Vec<BuiltRsu> = executor::parallel_map(workers, &build_seeds, |k, seed| {
        let spec = &specs[k];
        // Compile the RSU's MDP once (when the policy kind solves one) so
        // the solver sweeps the CSR kernel rather than the trait callback.
        let compiled = if scenario.cache_policy.uses_mdp() {
            Some(CompiledRsuMdp::from_spec(spec)?)
        } else {
            None
        };
        let mut rng = StdRng::seed_from_u64(*seed);
        let cache_policy = scenario
            .cache_policy
            .build_with(compiled.as_ref(), &mut rng)?;
        let service_policy = scenario.service_policy.build()?;
        let reward = spec.reward_model()?;
        Ok::<BuiltRsu, AoiCacheError>((cache_policy, service_policy, reward))
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let mut init_rng = seeds.rng("init-ages");
    let ages: Vec<AgeVector> = (0..n_rsus)
        .map(|k| {
            let n_local = layout.coverage_len(RsuId(k));
            let v: Vec<Age> = (0..n_local)
                // lint:allow(panic-hygiene): gen_range(1..=cap) draws are >= 1.
                .map(|_| Age::new(init_rng.gen_range(1..=scenario.age_cap)).expect(">= 1"))
                .collect();
            AgeVector::from_ages(v, cap)
        })
        .collect::<Result<_, _>>()?;

    // Assemble the clock-agnostic per-RSU cores the slot loop drives (the
    // same `RsuCacheEngine`/`RsuServiceEngine` ops the standalone
    // simulator and the `aoi-serve` engine compose).
    let mut cache_engines: Vec<RsuCacheEngine> = Vec::with_capacity(n_rsus);
    let mut service_engines: Vec<RsuServiceEngine> = Vec::with_capacity(n_rsus);
    for (k, ((cache_policy, service_policy, reward), ages_k)) in
        built.into_iter().zip(ages).enumerate()
    {
        cache_engines.push(RsuCacheEngine::new(
            cache_policy,
            reward,
            ages_k,
            specs[k].max_ages.clone(),
            scenario.weight,
            specs[k].update_cost,
        )?);
        service_engines.push(RsuServiceEngine::new(service_policy));
    }

    let mut rng = seeds.rng("run");
    network.warm_up(scenario.warmup, &mut rng);

    let mut queue_recorders: Vec<TraceRecorder> = Vec::with_capacity(n_rsus);
    for k in 0..n_rsus {
        let name = format!("rsu{k}/queue");
        queue_recorders.push(match artifact {
            Some(writer) => TraceRecorder::to_artifact(name, recording, writer)?,
            None => TraceRecorder::new(name, recording, scenario.horizon),
        });
    }
    let mut reward_series = TimeSeries::with_capacity("cache reward", scenario.horizon);
    let mut clock = SlotClock::new();

    let mut total_requests = 0u64;
    let mut stale_requests = 0u64;
    let mut updates = 0u64;
    let mut service_cost_sum = 0.0;
    let mut update_cost_sum = 0.0;
    let mut stale_cost_sum = 0.0;
    let mut queue_sum = 0.0;

    // Hoisted slot-loop scratch: the decision/arrival buffers and the live
    // popularity estimate are reused every slot instead of reallocated.
    let mut decisions: Vec<Option<usize>> = Vec::with_capacity(n_rsus);
    let mut arrivals = vec![0.0f64; n_rsus];
    let mut popularity: Vec<f64> = Vec::new();

    for _ in 0..scenario.horizon {
        let now = clock.now();
        let slot = network.step(&mut rng);

        // Stage 1: collect decisions first so congestion pricing sees the
        // slot's true concurrency. (The engine core is told the *base*
        // update cost — the congestion-priced cost is only knowable after
        // every RSU has decided.)
        decisions.clear();
        for k in 0..n_rsus {
            network.popularity_into(RsuId(k), &mut popularity);
            decisions.push(cache_engines[k].decide(
                now,
                &popularity,
                specs[k].update_cost,
                &mut rng,
            ));
        }
        let concurrent = decisions.iter().filter(|d| d.is_some()).count();
        let mut slot_reward = 0.0;
        for k in 0..n_rsus {
            if let Some(h) = decisions[k] {
                cache_engines[k].apply_refresh(h)?;
                updates += 1;
                let cost = network.update_cost(RsuId(k), concurrent.max(1));
                update_cost_sum += cost;
                slot_reward -= cost;
            }
            network.popularity_into(RsuId(k), &mut popularity);
            slot_reward += scenario.weight * cache_engines[k].aoi_utility(&popularity);
        }
        reward_series.push(now, slot_reward);

        // Stage 2: per-RSU arrivals and freshness accounting.
        arrivals.fill(0.0);
        for request in &slot.requests {
            total_requests += 1;
            let k = request.rsu.0;
            arrivals[k] += 1.0;
            let local = request.region.0 - layout.coverage(request.rsu).start;
            let age = cache_engines[k].age(local);
            if age.exceeds(catalog.max_age(request.region.0)) {
                stale_requests += 1;
                stale_cost_sum += scenario.mbs_fetch_cost;
            }
        }
        for k in 0..n_rsus {
            let decision = service_engines[k].decide(now, &scenario.levels, &mut rng)?;
            let level = scenario.levels[decision];
            service_engines[k].apply(arrivals[k], level);
            service_cost_sum += level.cost;
            queue_sum += service_engines[k].backlog();
            queue_recorders[k].record(now, service_engines[k].backlog());
        }

        for engine in &mut cache_engines {
            engine.advance();
        }
        clock.tick();
    }

    let mut queue_series = Vec::with_capacity(n_rsus);
    let mut queue_summaries = Vec::with_capacity(n_rsus);
    for recorder in queue_recorders.drain(..) {
        let (series, summary) = recorder.into_parts();
        queue_series.push(series);
        queue_summaries.push(summary);
    }
    let horizon = scenario.horizon as f64;
    let cumulative_cache_reward = reward_series.cumulative();
    if let Some(writer) = artifact {
        let mut writer = writer.borrow_mut();
        writer.series(&reward_series)?;
        writer.series(&cumulative_cache_reward)?;
    }
    Ok(JointReport {
        recording,
        cumulative_cache_reward,
        cache_reward: reward_series,
        queues: queue_series,
        queue_summaries,
        total_requests,
        stale_requests,
        updates,
        mean_queue: queue_sum / (horizon * n_rsus as f64),
        mean_service_cost: service_cost_sum / horizon,
        mean_update_cost: update_cost_sum / horizon,
        mean_stale_cost: stale_cost_sum / horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> JointScenario {
        let network = NetworkConfig {
            n_regions: 6,
            n_rsus: 2,
            road_length_m: 1200.0,
            ..NetworkConfig::default()
        };
        JointScenario {
            network,
            age_cap: 6,
            max_age_min: 3,
            max_age_max: 5,
            horizon: 400,
            warmup: 30,
            seed: 5,
            ..JointScenario::default()
        }
    }

    #[test]
    fn runs_and_reports() {
        let report = run_joint(&tiny()).unwrap();
        assert_eq!(report.queues.len(), 2);
        assert_eq!(report.cache_reward.len(), 400);
        assert!(report.total_requests > 0);
        assert!(report.updates > 0);
        assert!(report.freshness_rate() >= 0.0 && report.freshness_rate() <= 1.0);
        assert!(report.mean_total_cost() > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_joint(&tiny()).unwrap();
        let b = run_joint(&tiny()).unwrap();
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.stale_requests, b.stale_requests);
    }

    #[test]
    fn active_caching_is_fresher_than_never() {
        let mut never = tiny();
        never.cache_policy = CachePolicyKind::Never;
        let mut myopic = tiny();
        myopic.cache_policy = CachePolicyKind::Myopic;
        let r_never = run_joint(&never).unwrap();
        let r_myopic = run_joint(&myopic).unwrap();
        assert!(
            r_myopic.freshness_rate() > r_never.freshness_rate(),
            "myopic {} vs never {}",
            r_myopic.freshness_rate(),
            r_never.freshness_rate()
        );
    }

    #[test]
    fn lyapunov_queues_stay_bounded() {
        let report = run_joint(&tiny()).unwrap();
        for q in &report.queues {
            let last = q.last().unwrap().value;
            assert!(last < 200.0, "queue exploded: {last}");
        }
    }

    #[test]
    fn cost_greedy_service_starves_queues() {
        let mut s = tiny();
        s.service_policy = ServicePolicyKind::CostGreedy;
        let report = run_joint(&s).unwrap();
        // Nothing is ever served, so the mean queue dominates the Lyapunov
        // run's.
        let lyap = run_joint(&tiny()).unwrap();
        assert!(report.mean_queue > lyap.mean_queue);
        assert!(report.mean_service_cost < lyap.mean_service_cost + 1e-9);
    }

    #[test]
    fn recording_modes_share_everything_but_queue_traces() {
        let full = run_joint(&tiny()).unwrap();
        assert_eq!(full.recording, RecordingMode::Full);
        let summary = run_joint_recorded(&tiny(), RecordingMode::SummaryOnly).unwrap();
        assert!(summary.queues.iter().all(|q| q.is_empty()));
        assert_eq!(
            summary.cumulative_cache_reward,
            full.cumulative_cache_reward
        );
        assert_eq!(summary.cache_reward, full.cache_reward);
        assert_eq!(summary.total_requests, full.total_requests);
        assert_eq!(summary.stale_requests, full.stale_requests);
        assert_eq!(summary.updates, full.updates);
        assert_eq!(summary.mean_queue, full.mean_queue);
        assert_eq!(summary.queue_summaries, full.queue_summaries);
        // The streamed summaries equal a post-hoc pass over the full traces.
        for (trace, want) in full.queues.iter().zip(&summary.queue_summaries) {
            let post_hoc: simkit::RunningStats = trace.values().collect();
            assert_eq!(post_hoc.summary(), *want);
        }
        // Decimate(1) is Full.
        let dec = run_joint_recorded(&tiny(), RecordingMode::Decimate(1)).unwrap();
        assert_eq!(dec.queues, full.queues);
    }

    #[test]
    fn validation() {
        let mut s = tiny();
        s.age_cap = 2;
        assert!(run_joint(&s).is_err());
        let mut s = tiny();
        s.horizon = 0;
        assert!(run_joint(&s).is_err());
        let mut s = tiny();
        s.levels.clear();
        assert!(run_joint(&s).is_err());
        let mut s = tiny();
        s.mbs_fetch_cost = -1.0;
        assert!(run_joint(&s).is_err());
    }
}
