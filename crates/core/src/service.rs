//! Content-service policies: the paper's Lyapunov drift-plus-penalty rule
//! (Eq. 5) and the two baseline extremes it is compared against in Fig. 1b.

use crate::AoiCacheError;
use lyapunov::{DecisionOption, DriftPlusPenalty};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use simkit::TimeSlot;

/// One service intensity an RSU can choose in a slot: a bandwidth cost
/// `C(α)` and the requests it serves `b(α)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceLevel {
    /// Communication cost of running at this level for one slot.
    pub cost: f64,
    /// Requests served (departures) at this level per slot.
    pub rate: f64,
}

impl ServiceLevel {
    /// Convenience constructor.
    pub fn new(cost: f64, rate: f64) -> Self {
        ServiceLevel { cost, rate }
    }

    /// A conventional three-level menu: idle (free), low (1 request at cost
    /// 0.5), high (3 requests at cost 2).
    pub fn standard_menu() -> Vec<ServiceLevel> {
        vec![
            ServiceLevel::new(0.0, 0.0),
            ServiceLevel::new(0.5, 1.0),
            ServiceLevel::new(2.0, 3.0),
        ]
    }
}

/// Everything a service policy may inspect when deciding.
#[derive(Debug, Clone, Copy)]
pub struct ServiceDecisionContext<'a> {
    /// Current slot.
    pub slot: TimeSlot,
    /// Current request backlog `Q[t]` of this RSU.
    pub backlog: f64,
    /// The available service levels.
    pub levels: &'a [ServiceLevel],
}

/// A per-RSU service decision rule: picks a service level each slot.
pub trait ServicePolicy: Send {
    /// Short display name (used in experiment tables).
    fn name(&self) -> &str;

    /// Picks the index of a level in `ctx.levels`.
    fn decide(&mut self, ctx: &ServiceDecisionContext<'_>, rng: &mut dyn RngCore) -> usize;
}

/// The paper's Eq. 5: `α* = argmin V·C(α) − Q[t]·b(α)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LyapunovServicePolicy {
    dpp: DriftPlusPenalty,
}

impl LyapunovServicePolicy {
    /// Creates the policy with tradeoff coefficient `v`.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::Controller`] if `v` is negative/non-finite.
    pub fn new(v: f64) -> Result<Self, AoiCacheError> {
        Ok(LyapunovServicePolicy {
            dpp: DriftPlusPenalty::new(v)?,
        })
    }

    /// The tradeoff coefficient.
    pub fn v(&self) -> f64 {
        self.dpp.v()
    }
}

impl ServicePolicy for LyapunovServicePolicy {
    fn name(&self) -> &str {
        "lyapunov"
    }

    fn decide(&mut self, ctx: &ServiceDecisionContext<'_>, _rng: &mut dyn RngCore) -> usize {
        let options: Vec<DecisionOption> = ctx
            .levels
            .iter()
            .map(|l| DecisionOption::new(l.cost, l.rate))
            .collect();
        self.dpp
            .decide(ctx.backlog, &options)
            // lint:allow(panic-hygiene): the controller validated its service
            // levels at construction and the backlog is its own queue state.
            .expect("levels are non-empty and backlog is valid")
    }
}

/// Latency-greedy baseline: always run at the highest service rate
/// (cheapest on ties). Minimal delay, maximal cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlwaysServePolicy;

impl ServicePolicy for AlwaysServePolicy {
    fn name(&self) -> &str {
        "always-serve"
    }

    fn decide(&mut self, ctx: &ServiceDecisionContext<'_>, _rng: &mut dyn RngCore) -> usize {
        let mut best = 0;
        for (i, l) in ctx.levels.iter().enumerate() {
            let b = ctx.levels[best];
            if l.rate > b.rate || (l.rate == b.rate && l.cost < b.cost) {
                best = i;
            }
        }
        best
    }
}

/// Cost-greedy baseline: always pick the cheapest level (idle when idling
/// is free). Minimal cost, unbounded delay under load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostGreedyPolicy;

impl ServicePolicy for CostGreedyPolicy {
    fn name(&self) -> &str {
        "cost-greedy"
    }

    fn decide(&mut self, ctx: &ServiceDecisionContext<'_>, _rng: &mut dyn RngCore) -> usize {
        let mut best = 0;
        for (i, l) in ctx.levels.iter().enumerate() {
            let b = ctx.levels[best];
            if l.cost < b.cost || (l.cost == b.cost && l.rate > b.rate) {
                best = i;
            }
        }
        best
    }
}

/// Duty-cycle baseline: run at the highest rate every `period`-th slot and
/// idle (cheapest level) otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodicServePolicy {
    period: u64,
}

impl PeriodicServePolicy {
    /// Creates a policy serving every `period ≥ 1` slots.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u64) -> Self {
        assert!(period >= 1, "period must be at least 1");
        PeriodicServePolicy { period }
    }
}

impl ServicePolicy for PeriodicServePolicy {
    fn name(&self) -> &str {
        "periodic-serve"
    }

    fn decide(&mut self, ctx: &ServiceDecisionContext<'_>, rng: &mut dyn RngCore) -> usize {
        if ctx.slot.index().is_multiple_of(self.period) {
            AlwaysServePolicy.decide(ctx, rng)
        } else {
            CostGreedyPolicy.decide(ctx, rng)
        }
    }
}

/// Declarative service-policy selection for simulators and benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServicePolicyKind {
    /// The paper's drift-plus-penalty rule with coefficient `v`.
    Lyapunov {
        /// Cost/backlog tradeoff coefficient.
        v: f64,
    },
    /// Latency-greedy: always serve at the maximum rate.
    AlwaysServe,
    /// Cost-greedy: always pick the cheapest level.
    CostGreedy,
    /// Serve at full rate every `period`-th slot.
    Periodic {
        /// Slots between serving bursts.
        period: u64,
    },
}

impl ServicePolicyKind {
    /// Short display label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            ServicePolicyKind::Lyapunov { .. } => "lyapunov",
            ServicePolicyKind::AlwaysServe => "always-serve",
            ServicePolicyKind::CostGreedy => "cost-greedy",
            ServicePolicyKind::Periodic { .. } => "periodic-serve",
        }
    }

    /// Builds a policy instance.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::Controller`] for an invalid `v`.
    pub fn build(&self) -> Result<Box<dyn ServicePolicy>, AoiCacheError> {
        Ok(match *self {
            ServicePolicyKind::Lyapunov { v } => Box::new(LyapunovServicePolicy::new(v)?),
            ServicePolicyKind::AlwaysServe => Box::new(AlwaysServePolicy),
            ServicePolicyKind::CostGreedy => Box::new(CostGreedyPolicy),
            ServicePolicyKind::Periodic { period } => Box::new(PeriodicServePolicy::new(period)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx<'a>(slot: u64, backlog: f64, levels: &'a [ServiceLevel]) -> ServiceDecisionContext<'a> {
        ServiceDecisionContext {
            slot: TimeSlot::new(slot),
            backlog,
            levels,
        }
    }

    #[test]
    fn lyapunov_matches_paper_extremes() {
        let levels = ServiceLevel::standard_menu();
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = LyapunovServicePolicy::new(10.0).unwrap();
        // Q = 0: minimize cost -> idle (paper's first sanity case).
        assert_eq!(policy.decide(&ctx(0, 0.0, &levels), &mut rng), 0);
        // Q huge: maximize service -> highest rate (second sanity case).
        assert_eq!(policy.decide(&ctx(0, 1e9, &levels), &mut rng), 2);
        assert_eq!(policy.v(), 10.0);
    }

    #[test]
    fn always_serve_picks_max_rate() {
        let levels = ServiceLevel::standard_menu();
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = AlwaysServePolicy;
        assert_eq!(policy.decide(&ctx(0, 0.0, &levels), &mut rng), 2);
    }

    #[test]
    fn always_serve_breaks_rate_ties_by_cost() {
        let levels = vec![ServiceLevel::new(3.0, 2.0), ServiceLevel::new(1.0, 2.0)];
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(AlwaysServePolicy.decide(&ctx(0, 5.0, &levels), &mut rng), 1);
    }

    #[test]
    fn cost_greedy_picks_cheapest() {
        let levels = ServiceLevel::standard_menu();
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = CostGreedyPolicy;
        assert_eq!(policy.decide(&ctx(0, 1e9, &levels), &mut rng), 0);
    }

    #[test]
    fn cost_greedy_breaks_cost_ties_by_rate() {
        let levels = vec![ServiceLevel::new(1.0, 1.0), ServiceLevel::new(1.0, 2.0)];
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(CostGreedyPolicy.decide(&ctx(0, 5.0, &levels), &mut rng), 1);
    }

    #[test]
    fn periodic_alternates() {
        let levels = ServiceLevel::standard_menu();
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = PeriodicServePolicy::new(3);
        assert_eq!(policy.decide(&ctx(0, 5.0, &levels), &mut rng), 2);
        assert_eq!(policy.decide(&ctx(1, 5.0, &levels), &mut rng), 0);
        assert_eq!(policy.decide(&ctx(2, 5.0, &levels), &mut rng), 0);
        assert_eq!(policy.decide(&ctx(3, 5.0, &levels), &mut rng), 2);
    }

    #[test]
    fn kinds_build_and_label() {
        let kinds = [
            ServicePolicyKind::Lyapunov { v: 5.0 },
            ServicePolicyKind::AlwaysServe,
            ServicePolicyKind::CostGreedy,
            ServicePolicyKind::Periodic { period: 2 },
        ];
        for kind in kinds {
            let policy = kind.build().unwrap();
            assert_eq!(policy.name(), kind.label());
        }
        assert!(ServicePolicyKind::Lyapunov { v: -1.0 }.build().is_err());
    }

    #[test]
    fn standard_menu_shape() {
        let menu = ServiceLevel::standard_menu();
        assert_eq!(menu.len(), 3);
        assert_eq!(menu[0].rate, 0.0);
        assert!(menu[2].rate > menu[1].rate);
    }
}
