//! Clock-agnostic per-RSU engine cores shared by every driver.
//!
//! The stage-1/stage-2 state machines used to live inline in the
//! simulators' slot loops; this module extracts them into two cores with
//! **no internal time loop and no internal randomness for arrivals** —
//! slots, request popularity, arrivals and RNG streams are all inputs:
//!
//! * [`RsuCacheEngine`] — one RSU's stage-1 state (AoI vector + Eq. 1
//!   reward model + cache-update policy). `decide → apply_refresh →
//!   aoi_utility/action_cost → advance` is one slot.
//! * [`RsuServiceEngine`] — one RSU's stage-2 state (backlog queue +
//!   service policy). `decide → apply` is one slot.
//!
//! Three drivers compose the same ops in different clocks:
//! [`CacheSimulation::run`](crate::CacheSimulation::run) (stage 1 alone,
//! synthetic popularity), [`run_joint`](crate::run_joint) (both stages on
//! the live `vanet` substrate) and the online `aoi-serve` engine (both
//! stages against an **external** request stream). Because every driver
//! calls the identical core operations in the identical order, simulator
//! reports are bit-identical to the pre-extraction code — pinned by
//! `core/tests/engine_identity.rs` against goldens captured before the
//! refactor.

use crate::aoi::{Age, AgeVector};
use crate::policy::{CacheDecisionContext, CacheUpdatePolicy};
use crate::reward::RewardModel;
use crate::service::{ServiceDecisionContext, ServiceLevel, ServicePolicy};
use crate::AoiCacheError;
use lyapunov::Queue;
use rand::RngCore;
use simkit::TimeSlot;

/// One RSU's clock-agnostic stage-1 core: the AoI state vector, the Eq. 1
/// reward model and the cache-update policy, advanced strictly by
/// externally supplied events.
///
/// The engine owns what is *state* (ages, policy memory) and takes as
/// arguments what is *environment* (the slot index, the popularity
/// estimate, the per-update cost) — the standalone simulator passes its
/// static spec popularity, the joint simulator passes the live network
/// estimate, and the serving engine passes whatever its request stream
/// implies. Nothing here reads a clock or draws arrival randomness.
pub struct RsuCacheEngine {
    policy: Box<dyn CacheUpdatePolicy>,
    reward: RewardModel,
    ages: AgeVector,
    max_ages: Vec<Age>,
    weight: f64,
    update_cost: f64,
}

impl RsuCacheEngine {
    /// Assembles an engine from its parts. `weight` and `update_cost` are
    /// the values presented to the policy's decision context each slot
    /// (drivers may still override the cost per decision, e.g. congestion
    /// pricing).
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] if the age vector and
    /// freshness-limit vector lengths disagree.
    pub fn new(
        policy: Box<dyn CacheUpdatePolicy>,
        reward: RewardModel,
        ages: AgeVector,
        max_ages: Vec<Age>,
        weight: f64,
        update_cost: f64,
    ) -> Result<Self, AoiCacheError> {
        if ages.len() != max_ages.len() {
            return Err(AoiCacheError::BadParameter {
                what: "max_ages",
                valid: "one per cached content",
            });
        }
        Ok(RsuCacheEngine {
            policy,
            reward,
            ages,
            max_ages,
            weight,
            update_cost,
        })
    }

    /// Number of contents this RSU caches.
    pub fn contents(&self) -> usize {
        self.ages.len()
    }

    /// The current AoI vector.
    pub fn ages(&self) -> &AgeVector {
        &self.ages
    }

    /// The current AoI of local content `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn age(&self, h: usize) -> Age {
        self.ages.age(h)
    }

    /// The freshness limit `A^max_h` of local content `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn max_age(&self, h: usize) -> Age {
        self.max_ages[h]
    }

    /// The per-content freshness limits.
    pub fn max_ages(&self) -> &[Age] {
        &self.max_ages
    }

    /// Whether local content `h` is past its freshness limit (a request
    /// served from it is a *stale hit*).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn is_stale(&self, h: usize) -> bool {
        self.ages.age(h).exceeds(self.max_ages[h])
    }

    /// Asks the policy which content to refresh this slot (`None` = idle).
    /// `popularity` is the driver's current estimate and `update_cost` the
    /// cost the decision context advertises; `rng` is the driver's stream
    /// (the engine never owns randomness, so any driver interleaving
    /// reproduces the serial draw order).
    pub fn decide(
        &mut self,
        slot: TimeSlot,
        popularity: &[f64],
        update_cost: f64,
        rng: &mut dyn RngCore,
    ) -> Option<usize> {
        let ctx = CacheDecisionContext {
            slot,
            ages: &self.ages,
            max_ages: &self.max_ages,
            popularity,
            weight: self.weight,
            update_cost,
        };
        self.policy.decide(&ctx, rng)
    }

    /// [`decide`](RsuCacheEngine::decide) with the engine's own
    /// construction-time `update_cost` (the standalone stage-1 setting).
    pub fn decide_static(
        &mut self,
        slot: TimeSlot,
        popularity: &[f64],
        rng: &mut dyn RngCore,
    ) -> Option<usize> {
        let cost = self.update_cost;
        self.decide(slot, popularity, cost, rng)
    }

    /// Applies a refresh decision: content `h`'s age resets to 1.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] if `h` is not a local
    /// content index (a buggy policy).
    pub fn apply_refresh(&mut self, h: usize) -> Result<(), AoiCacheError> {
        if h >= self.ages.len() {
            return Err(AoiCacheError::BadParameter {
                what: "cache decision",
                valid: "local content index",
            });
        }
        self.ages.refresh(h);
        Ok(())
    }

    /// The Eq. 2 AoI utility `Σ_h (A^max_h/A_h)·p_h` of the current ages
    /// under the given popularity.
    pub fn aoi_utility(&self, popularity: &[f64]) -> f64 {
        self.reward.aoi_utility(&self.ages, popularity)
    }

    /// The Eq. 3 action cost of this slot (`update_cost` if a refresh was
    /// pushed, else 0).
    pub fn action_cost(&self, updated: bool) -> f64 {
        self.reward.action_cost(updated)
    }

    /// Ends the slot: every age grows by one (saturating at the cap).
    pub fn advance(&mut self) {
        self.ages.advance();
    }
}

/// One RSU's clock-agnostic stage-2 core: the backlog queue and the
/// service policy, driven by externally supplied arrivals.
///
/// `decide` evaluates the policy on the pre-arrival backlog; `apply` runs
/// the queue dynamics for an (independently chosen) service level. The
/// split mirrors [`lyapunov::ServiceController::decide`] /
/// [`lyapunov::ServiceController::step_chosen`] and exists for the same
/// reason: arrivals and decisions are inputs, so any driver — simulator
/// or online server — produces identical queue trajectories from
/// identical inputs.
pub struct RsuServiceEngine {
    policy: Box<dyn ServicePolicy>,
    queue: Queue,
}

impl RsuServiceEngine {
    /// Wraps a service policy around an empty backlog queue.
    pub fn new(policy: Box<dyn ServicePolicy>) -> Self {
        RsuServiceEngine {
            policy,
            queue: Queue::new(),
        }
    }

    /// Current backlog.
    pub fn backlog(&self) -> f64 {
        self.queue.backlog()
    }

    /// Asks the policy which service level to run this slot, validating
    /// the answer against the menu.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] if the policy picks an
    /// index outside `levels`.
    pub fn decide(
        &mut self,
        slot: TimeSlot,
        levels: &[ServiceLevel],
        rng: &mut dyn RngCore,
    ) -> Result<usize, AoiCacheError> {
        let decision = {
            let ctx = ServiceDecisionContext {
                slot,
                backlog: self.queue.backlog(),
                levels,
            };
            self.policy.decide(&ctx, rng)
        };
        if decision >= levels.len() {
            return Err(AoiCacheError::BadParameter {
                what: "service decision",
                valid: "level index",
            });
        }
        Ok(decision)
    }

    /// Runs the slot's queue dynamics: drain at `level.rate`, then admit
    /// `arrivals`. Returns the backlog actually served.
    pub fn apply(&mut self, arrivals: f64, level: ServiceLevel) -> f64 {
        self.queue.step(arrivals, level.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MyopicPolicy, NeverPolicy};
    use crate::service::AlwaysServePolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> RsuCacheEngine {
        let cap = Age::new(6).unwrap();
        let max_ages = vec![Age::new(4).unwrap(), Age::new(5).unwrap()];
        let reward = RewardModel::new(1.0, 0.25, max_ages.clone()).unwrap();
        let ages =
            AgeVector::from_ages(vec![Age::new(3).unwrap(), Age::new(6).unwrap()], cap).unwrap();
        RsuCacheEngine::new(Box::new(MyopicPolicy), reward, ages, max_ages, 1.0, 0.25).unwrap()
    }

    #[test]
    fn cache_engine_slot_cycle() {
        let mut e = engine();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(e.contents(), 2);
        assert!(e.is_stale(1) && !e.is_stale(0));
        let pop = [0.5, 0.5];
        let decision = e.decide_static(TimeSlot::ZERO, &pop, &mut rng);
        let h = decision.expect("a stale popular content must be refreshed");
        e.apply_refresh(h).unwrap();
        assert_eq!(e.age(h).get(), 1);
        let with_update = e.action_cost(true);
        assert_eq!(with_update, 0.25);
        assert_eq!(e.action_cost(false), 0.0);
        assert!(e.aoi_utility(&pop) > 0.0);
        let before = e.age(0).get();
        e.advance();
        assert_eq!(e.age(0).get(), (before + 1).min(6));
    }

    #[test]
    fn cache_engine_rejects_bad_inputs() {
        let cap = Age::new(6).unwrap();
        let max_ages = vec![Age::new(4).unwrap()];
        let reward = RewardModel::new(1.0, 0.25, max_ages.clone()).unwrap();
        let ages = AgeVector::fresh(2, cap);
        assert!(
            RsuCacheEngine::new(Box::new(NeverPolicy), reward, ages, max_ages, 1.0, 0.25).is_err()
        );
        let mut e = engine();
        assert!(e.apply_refresh(9).is_err());
    }

    #[test]
    fn service_engine_slot_cycle() {
        let mut e = RsuServiceEngine::new(Box::new(AlwaysServePolicy));
        let mut rng = StdRng::seed_from_u64(2);
        let levels = [ServiceLevel::new(0.0, 0.0), ServiceLevel::new(1.0, 2.0)];
        let d = e.decide(TimeSlot::ZERO, &levels, &mut rng).unwrap();
        assert_eq!(d, 1, "always-serve picks the fastest level");
        let served = e.apply(3.0, levels[d]);
        assert_eq!(served, 0.0, "empty queue had nothing to drain");
        assert_eq!(e.backlog(), 3.0);
        assert!(e.decide(TimeSlot::ZERO, &[], &mut rng).is_err());
    }
}
