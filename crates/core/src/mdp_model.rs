//! The paper's cache-management MDP (§II-B), factored per RSU.
//!
//! Both the reward (Eqs. 1–3) and the AoI dynamics separate across RSUs —
//! each RSU updates at most one of its own contents per slot and earns
//! utility only from its own cache — so the global MDP decomposes into
//! `N_R` independent per-RSU MDPs. This module builds the exact per-RSU
//! model:
//!
//! * **State**: the RSU's capped age vector (ages `1..=A_cap` per cached
//!   content), optionally crossed with a content-popularity phase (the
//!   paper's "content population" state component).
//! * **Action**: `0` = no update, `1+j` = push a fresh copy of local
//!   content `j` (at most one per slot, matching "only one content is
//!   updated at a time").
//! * **Reward**: Eq. 1 evaluated on the post-action ages.
//! * **Dynamics**: post-action ages all age by one slot, capped; the MBS
//!   copy is fresh every slot (the paper's assumption), so the age part of
//!   the transition is deterministic.

use crate::aoi::{Age, AgeVector};
use crate::reward::RewardModel;
use crate::AoiCacheError;
use mdp::{CompiledMdp, FiniteMdp, ProductSpace, Transition};
use serde::{Deserialize, Serialize};

/// Content-popularity dynamics of one RSU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PopularityModel {
    /// Fixed popularity vector `p_h` (the default; estimated popularity is
    /// frozen at solve time).
    Static(Vec<f64>),
    /// Two popularity phases (e.g. light/heavy traffic) switching with a
    /// per-slot probability — popularity becomes part of the MDP state.
    TwoPhase {
        /// The two popularity vectors.
        phases: [Vec<f64>; 2],
        /// Per-slot probability of switching phase.
        switch_probability: f64,
    },
}

impl PopularityModel {
    /// Number of popularity phases (1 or 2).
    pub fn n_phases(&self) -> usize {
        match self {
            PopularityModel::Static(_) => 1,
            PopularityModel::TwoPhase { .. } => 2,
        }
    }

    /// The popularity vector of a phase.
    ///
    /// # Panics
    ///
    /// Panics if `phase >= n_phases()`.
    pub fn popularity(&self, phase: usize) -> &[f64] {
        match self {
            PopularityModel::Static(p) => {
                assert_eq!(phase, 0, "static model has a single phase");
                p
            }
            PopularityModel::TwoPhase { phases, .. } => &phases[phase],
        }
    }

    fn validate(&self, n_contents: usize) -> Result<(), AoiCacheError> {
        let check = |p: &[f64]| -> Result<(), AoiCacheError> {
            if p.len() != n_contents {
                return Err(AoiCacheError::BadScenario {
                    why: "popularity length must equal the content count",
                });
            }
            if p.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(AoiCacheError::BadParameter {
                    what: "popularity",
                    valid: "finite and >= 0",
                });
            }
            let sum: f64 = p.iter().sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(AoiCacheError::BadParameter {
                    what: "popularity",
                    valid: "sums to 1",
                });
            }
            Ok(())
        };
        match self {
            PopularityModel::Static(p) => check(p),
            PopularityModel::TwoPhase {
                phases,
                switch_probability,
            } => {
                check(&phases[0])?;
                check(&phases[1])?;
                if !switch_probability.is_finite() || !(0.0..=1.0).contains(switch_probability) {
                    return Err(AoiCacheError::BadParameter {
                        what: "switch_probability",
                        valid: "[0, 1]",
                    });
                }
                Ok(())
            }
        }
    }
}

/// The exact per-RSU cache-management MDP.
///
/// ```
/// use aoi_cache::{Age, RewardModel, RsuCacheMdp, PopularityModel};
/// use mdp::FiniteMdp;
/// use mdp::solver::ValueIteration;
///
/// let reward = RewardModel::new(1.0, 0.5, vec![Age::new(4).unwrap(); 2])?;
/// let mdp = RsuCacheMdp::new(
///     reward,
///     Age::new(6).unwrap(),
///     PopularityModel::Static(vec![0.7, 0.3]),
/// )?;
/// assert_eq!(mdp.n_states(), 36);   // 6 ages ^ 2 contents
/// assert_eq!(mdp.n_actions(), 3);   // none | update 0 | update 1
/// let outcome = ValueIteration::new(0.95).solve(&mdp)?;
/// assert!(outcome.converged);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RsuCacheMdp {
    reward: RewardModel,
    age_cap: Age,
    popularity: PopularityModel,
    age_space: ProductSpace,
}

impl RsuCacheMdp {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadScenario`] when the age cap is below the
    /// largest freshness limit (violations would be unrepresentable) or the
    /// state space would overflow, and parameter errors for invalid
    /// popularity vectors.
    pub fn new(
        reward: RewardModel,
        age_cap: Age,
        popularity: PopularityModel,
    ) -> Result<Self, AoiCacheError> {
        let n = reward.n_contents();
        popularity.validate(n)?;
        let largest = reward
            .max_ages()
            .iter()
            .max()
            // lint:allow(panic-hygiene): RewardModel construction rejects empty
            // catalogs, so max_ages() is non-empty.
            .expect("reward model has contents");
        if age_cap < *largest {
            return Err(AoiCacheError::BadScenario {
                why: "age cap must be at least the largest max age",
            });
        }
        let age_space = ProductSpace::new(vec![age_cap.get() as usize; n]).ok_or(
            AoiCacheError::BadScenario {
                why: "state space too large",
            },
        )?;
        Ok(RsuCacheMdp {
            reward,
            age_cap,
            popularity,
            age_space,
        })
    }

    /// Compiles the model into the flat CSR solver kernel.
    ///
    /// Solvers sweep the compiled form without re-deriving the
    /// age/popularity arithmetic per `(state, action)` row, so anything
    /// solving this MDP more than once (different solver families, horizon
    /// steps, policy kinds) should compile once and share the kernel.
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledMdp::compile`] validation errors.
    pub fn compile(&self) -> Result<CompiledMdp, AoiCacheError> {
        Ok(CompiledMdp::compile(self)?)
    }

    /// The reward model.
    pub fn reward_model(&self) -> &RewardModel {
        &self.reward
    }

    /// The age cap `A_cap`.
    pub fn age_cap(&self) -> Age {
        self.age_cap
    }

    /// The popularity dynamics.
    pub fn popularity_model(&self) -> &PopularityModel {
        &self.popularity
    }

    /// Number of cached contents `L′`.
    pub fn n_contents(&self) -> usize {
        self.reward.n_contents()
    }

    /// The action index meaning "no update".
    pub const ACTION_NONE: usize = 0;

    /// The action index that updates local content `j`.
    pub fn action_update(&self, j: usize) -> usize {
        assert!(j < self.n_contents(), "content index out of range");
        j + 1
    }

    /// Decodes an action index into `Some(local content)` or `None` for the
    /// no-update action.
    ///
    /// # Panics
    ///
    /// Panics if `action >= n_actions()`.
    pub fn decode_action(&self, action: usize) -> Option<usize> {
        assert!(action <= self.n_contents(), "action out of range");
        action.checked_sub(1)
    }

    /// Encodes an age vector (plus popularity phase) into a state index.
    ///
    /// # Panics
    ///
    /// Panics if the vector length, any age, or the phase is out of range.
    pub fn encode_state(&self, ages: &AgeVector, phase: usize) -> usize {
        assert!(phase < self.popularity.n_phases(), "phase out of range");
        // Stream the coordinates straight into the mixed-radix encoding:
        // this runs once per (RSU, slot) in the simulators, so it must not
        // materialize a coordinate vector.
        let idx = self
            .age_space
            .encode_iter(ages.coord_iter())
            // lint:allow(panic-hygiene): AgeVector keeps every age <= cap, and
            // the age space is sized by the same cap.
            .expect("ages within cap encode");
        phase * self.age_space.len() + idx
    }

    /// Decodes a state index into `(ages, phase)`.
    ///
    /// # Panics
    ///
    /// Panics if `state >= n_states()`.
    pub fn decode_state(&self, state: usize) -> (AgeVector, usize) {
        let phase = state / self.age_space.len();
        assert!(phase < self.popularity.n_phases(), "state out of range");
        let coords = self.age_space.decode(state % self.age_space.len());
        (AgeVector::from_coords(&coords, self.age_cap), phase)
    }

    /// Applies the action to the decoded age coordinates and computes the
    /// slot reward; returns `(post_action_coords, reward)`.
    fn apply(&self, coords: &mut [usize], phase: usize, action: usize) -> f64 {
        if let Some(j) = action.checked_sub(1) {
            coords[j] = 0; // fresh copy: age 1
        }
        let popularity = self.popularity.popularity(phase);
        let w = self.reward.weight();
        let mut utility = 0.0;
        for ((c, m), p) in coords.iter().zip(self.reward.max_ages()).zip(popularity) {
            let age = (*c + 1) as f64;
            utility += f64::from(m.get()) / age * p;
        }
        w * utility - self.reward.action_cost(action != Self::ACTION_NONE)
    }
}

impl FiniteMdp for RsuCacheMdp {
    fn n_states(&self) -> usize {
        self.popularity.n_phases() * self.age_space.len()
    }

    fn n_actions(&self) -> usize {
        self.n_contents() + 1
    }

    fn transitions(&self, state: usize, action: usize, out: &mut Vec<Transition>) {
        out.clear();
        let phase = state / self.age_space.len();
        let mut coords = self.age_space.decode(state % self.age_space.len());
        let reward = self.apply(&mut coords, phase, action);
        // Everyone ages by one slot, capped.
        let cap_coord = self.age_cap.get() as usize - 1;
        for c in &mut coords {
            *c = (*c + 1).min(cap_coord);
        }
        let age_next = self
            .age_space
            .encode(&coords)
            // lint:allow(panic-hygiene): Age::aged saturates at the cap, so the
            // aged coordinates always encode.
            .expect("aged coordinates stay in range");
        match &self.popularity {
            PopularityModel::Static(_) => {
                out.push(Transition::new(age_next, 1.0, reward));
            }
            PopularityModel::TwoPhase {
                switch_probability, ..
            } => {
                let q = *switch_probability;
                let stay = phase * self.age_space.len() + age_next;
                let flip = (1 - phase) * self.age_space.len() + age_next;
                if q < 1.0 {
                    out.push(Transition::new(stay, 1.0 - q, reward));
                }
                if q > 0.0 {
                    out.push(Transition::new(flip, q, reward));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp::solver::ValueIteration;

    fn age(v: u32) -> Age {
        Age::new(v).unwrap()
    }

    fn small_mdp(weight: f64, cost: f64) -> RsuCacheMdp {
        let reward = RewardModel::new(weight, cost, vec![age(3), age(4)]).unwrap();
        RsuCacheMdp::new(reward, age(5), PopularityModel::Static(vec![0.6, 0.4])).unwrap()
    }

    #[test]
    fn shape() {
        let m = small_mdp(1.0, 0.5);
        assert_eq!(m.n_states(), 25);
        assert_eq!(m.n_actions(), 3);
        assert_eq!(m.n_contents(), 2);
        assert_eq!(RsuCacheMdp::ACTION_NONE, 0);
        assert_eq!(m.action_update(1), 2);
        assert_eq!(m.decode_action(0), None);
        assert_eq!(m.decode_action(2), Some(1));
    }

    #[test]
    fn state_roundtrip() {
        let m = small_mdp(1.0, 0.5);
        for s in 0..m.n_states() {
            let (ages, phase) = m.decode_state(s);
            assert_eq!(m.encode_state(&ages, phase), s);
        }
    }

    #[test]
    fn transition_ages_and_refreshes() {
        let m = small_mdp(1.0, 0.5);
        let ages = AgeVector::from_ages(vec![age(3), age(2)], age(5)).unwrap();
        let s = m.encode_state(&ages, 0);
        let mut buf = Vec::new();

        // No update: both age by one.
        m.transitions(s, RsuCacheMdp::ACTION_NONE, &mut buf);
        assert_eq!(buf.len(), 1);
        let (next, _) = m.decode_state(buf[0].next);
        assert_eq!(next.as_slice(), &[age(4), age(3)]);

        // Update content 0: it lands at age 2 next slot (1 fresh + 1 aging).
        m.transitions(s, m.action_update(0), &mut buf);
        let (next, _) = m.decode_state(buf[0].next);
        assert_eq!(next.as_slice(), &[age(2), age(3)]);
    }

    #[test]
    fn ages_saturate_at_cap() {
        let m = small_mdp(1.0, 0.5);
        let ages = AgeVector::from_ages(vec![age(5), age(5)], age(5)).unwrap();
        let s = m.encode_state(&ages, 0);
        let mut buf = Vec::new();
        m.transitions(s, RsuCacheMdp::ACTION_NONE, &mut buf);
        let (next, _) = m.decode_state(buf[0].next);
        assert_eq!(next.as_slice(), &[age(5), age(5)]);
    }

    #[test]
    fn reward_matches_reward_model() {
        let m = small_mdp(2.0, 0.7);
        let ages = AgeVector::from_ages(vec![age(2), age(4)], age(5)).unwrap();
        let s = m.encode_state(&ages, 0);
        let mut buf = Vec::new();

        m.transitions(s, RsuCacheMdp::ACTION_NONE, &mut buf);
        // Post-action ages = [2, 4]; utility = 3/2*0.6 + 4/4*0.4 = 1.3.
        assert!((buf[0].reward - 2.0 * 1.3).abs() < 1e-12);

        m.transitions(s, m.action_update(0), &mut buf);
        // Post-action ages = [1, 4]; utility = 3*0.6 + 1*0.4 = 2.2; minus cost.
        assert!((buf[0].reward - (2.0 * 2.2 - 0.7)).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_optimal_policy_always_updates() {
        let m = small_mdp(1.0, 0.0);
        let out = ValueIteration::new(0.9).solve(&m).unwrap();
        assert!(out.converged);
        // With free updates, never choosing "none" is optimal whenever any
        // content is stale: check a fully stale state.
        let stale = AgeVector::from_ages(vec![age(5), age(5)], age(5)).unwrap();
        let s = m.encode_state(&stale, 0);
        assert_ne!(out.policy.action(s), RsuCacheMdp::ACTION_NONE);
    }

    #[test]
    fn prohibitive_cost_never_updates() {
        let m = small_mdp(1.0, 1e9);
        let out = ValueIteration::new(0.9).solve(&m).unwrap();
        for s in 0..m.n_states() {
            assert_eq!(out.policy.action(s), RsuCacheMdp::ACTION_NONE);
        }
    }

    #[test]
    fn moderate_cost_yields_sawtooth_updates() {
        // With a moderate cost the optimal policy must update sometimes but
        // not always.
        let m = small_mdp(1.0, 0.8);
        let out = ValueIteration::new(0.95).solve(&m).unwrap();
        let actions: Vec<usize> = (0..m.n_states()).map(|s| out.policy.action(s)).collect();
        assert!(actions.contains(&RsuCacheMdp::ACTION_NONE));
        assert!(actions.iter().any(|&a| a != RsuCacheMdp::ACTION_NONE));
    }

    #[test]
    fn popular_content_is_updated_first() {
        let reward = RewardModel::new(1.0, 0.4, vec![age(4), age(4)]).unwrap();
        let m = RsuCacheMdp::new(reward, age(6), PopularityModel::Static(vec![0.9, 0.1])).unwrap();
        let out = ValueIteration::new(0.95).solve(&m).unwrap();
        // Both contents equally stale: the popular one gets the update.
        let stale = AgeVector::from_ages(vec![age(4), age(4)], age(6)).unwrap();
        let s = m.encode_state(&stale, 0);
        assert_eq!(out.policy.action(s), m.action_update(0));
    }

    #[test]
    fn two_phase_transitions_split_probability() {
        let reward = RewardModel::new(1.0, 0.5, vec![age(3)]).unwrap();
        let m = RsuCacheMdp::new(
            reward,
            age(4),
            PopularityModel::TwoPhase {
                phases: [vec![1.0], vec![1.0]],
                switch_probability: 0.25,
            },
        )
        .unwrap();
        assert_eq!(m.n_states(), 8);
        let mut buf = Vec::new();
        m.transitions(0, 0, &mut buf);
        assert_eq!(buf.len(), 2);
        let mass: f64 = buf.iter().map(|t| t.probability).sum();
        assert!((mass - 1.0).abs() < 1e-12);
        // One outcome stays in phase 0, the other flips to phase 1.
        let phases: Vec<usize> = buf.iter().map(|t| m.decode_state(t.next).1).collect();
        assert!(phases.contains(&0) && phases.contains(&1));
    }

    #[test]
    fn validation() {
        let reward = RewardModel::new(1.0, 0.5, vec![age(6)]).unwrap();
        // Cap below the max age.
        assert!(
            RsuCacheMdp::new(reward.clone(), age(5), PopularityModel::Static(vec![1.0])).is_err()
        );
        // Bad popularity length.
        assert!(RsuCacheMdp::new(
            reward.clone(),
            age(6),
            PopularityModel::Static(vec![0.5, 0.5])
        )
        .is_err());
        // Popularity not summing to one.
        assert!(
            RsuCacheMdp::new(reward.clone(), age(6), PopularityModel::Static(vec![0.4])).is_err()
        );
        // Bad switch probability.
        assert!(RsuCacheMdp::new(
            reward,
            age(6),
            PopularityModel::TwoPhase {
                phases: [vec![1.0], vec![1.0]],
                switch_probability: 1.5
            }
        )
        .is_err());
    }

    #[test]
    fn accessors() {
        let m = small_mdp(1.0, 0.5);
        assert_eq!(m.age_cap(), age(5));
        assert_eq!(m.reward_model().update_cost(), 0.5);
        assert_eq!(m.popularity_model().n_phases(), 1);
    }
}
