//! The content catalog: one content per road region, each with its own
//! freshness limit `A^max_h`.

use crate::aoi::Age;
use crate::AoiCacheError;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use vanet::RegionId;

/// Static description of one content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentSpec {
    /// The region producing this content (content `h` ↔ region `h`).
    pub region: RegionId,
    /// Freshness limit `A^max_h`: ages beyond this are violations.
    pub max_age: Age,
}

/// The full catalog of `L` contents.
///
/// The paper: "all contents have the same file size and different maximum
/// AoI value limits" — sizes are uniform (and therefore not modelled),
/// `A^max_h` varies per content.
///
/// ```
/// use aoi_cache::{Age, Catalog};
/// let catalog = Catalog::uniform(10, Age::new(6).unwrap());
/// assert_eq!(catalog.len(), 10);
/// assert_eq!(catalog.max_age(3).get(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    contents: Vec<ContentSpec>,
}

impl Catalog {
    /// Creates a catalog where every content has the same freshness limit.
    pub fn uniform(n: usize, max_age: Age) -> Self {
        Catalog {
            contents: (0..n)
                .map(|h| ContentSpec {
                    region: RegionId(h),
                    max_age,
                })
                .collect(),
        }
    }

    /// Creates a catalog with per-content limits drawn uniformly from
    /// `[min_max_age, max_max_age]` (the paper randomizes the per-region
    /// maximum AoI).
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] if `n == 0`, either bound is
    /// zero, or the bounds are inverted.
    pub fn random(
        n: usize,
        min_max_age: u32,
        max_max_age: u32,
        rng: &mut dyn RngCore,
    ) -> Result<Self, AoiCacheError> {
        if n == 0 {
            return Err(AoiCacheError::BadParameter {
                what: "n",
                valid: ">= 1",
            });
        }
        if min_max_age == 0 || max_max_age < min_max_age {
            return Err(AoiCacheError::BadParameter {
                what: "max-age bounds",
                valid: "1 <= min <= max",
            });
        }
        Ok(Catalog {
            contents: (0..n)
                .map(|h| ContentSpec {
                    region: RegionId(h),
                    // lint:allow(panic-hygiene): bounds checked >= 1 above.
                    max_age: Age::new(rng.gen_range(min_max_age..=max_max_age))
                        .expect("bounds are >= 1"),
                })
                .collect(),
        })
    }

    /// Creates a catalog from explicit specs.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] for an empty list.
    pub fn from_specs(contents: Vec<ContentSpec>) -> Result<Self, AoiCacheError> {
        if contents.is_empty() {
            return Err(AoiCacheError::BadParameter {
                what: "contents",
                valid: "non-empty",
            });
        }
        Ok(Catalog { contents })
    }

    /// Number of contents `L`.
    pub fn len(&self) -> usize {
        self.contents.len()
    }

    /// Whether the catalog is empty (never true for constructed catalogs).
    pub fn is_empty(&self) -> bool {
        self.contents.is_empty()
    }

    /// The spec of content `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn spec(&self, h: usize) -> &ContentSpec {
        &self.contents[h]
    }

    /// Freshness limit of content `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn max_age(&self, h: usize) -> Age {
        self.contents[h].max_age
    }

    /// Freshness limits of a contiguous block of contents (an RSU's cached
    /// slice).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn max_ages(&self, range: std::ops::Range<usize>) -> Vec<Age> {
        self.contents[range].iter().map(|c| c.max_age).collect()
    }

    /// The largest freshness limit in the catalog (used to choose `A_cap`).
    pub fn largest_max_age(&self) -> Age {
        self.contents
            .iter()
            .map(|c| c.max_age)
            .max()
            // lint:allow(panic-hygiene): every Catalog constructor rejects n == 0.
            .expect("catalog is non-empty")
    }

    /// Iterates all content specs in region order.
    pub fn iter(&self) -> impl Iterator<Item = &ContentSpec> {
        self.contents.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_catalog() {
        let c = Catalog::uniform(5, Age::new(7).unwrap());
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        for h in 0..5 {
            assert_eq!(c.max_age(h).get(), 7);
            assert_eq!(c.spec(h).region, RegionId(h));
        }
        assert_eq!(c.largest_max_age().get(), 7);
    }

    #[test]
    fn random_catalog_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = Catalog::random(50, 4, 12, &mut rng).unwrap();
        for spec in c.iter() {
            let m = spec.max_age.get();
            assert!((4..=12).contains(&m));
        }
        assert!(c.largest_max_age().get() <= 12);
    }

    #[test]
    fn random_catalog_varies() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = Catalog::random(50, 2, 20, &mut rng).unwrap();
        let first = c.max_age(0);
        assert!(
            c.iter().any(|s| s.max_age != first),
            "50 draws over [2,20] should vary"
        );
    }

    #[test]
    fn validation() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Catalog::random(0, 1, 5, &mut rng).is_err());
        assert!(Catalog::random(3, 0, 5, &mut rng).is_err());
        assert!(Catalog::random(3, 6, 5, &mut rng).is_err());
        assert!(Catalog::from_specs(vec![]).is_err());
    }

    #[test]
    fn max_ages_slice() {
        let c = Catalog::uniform(10, Age::new(3).unwrap());
        let ages = c.max_ages(2..7);
        assert_eq!(ages.len(), 5);
    }
}
