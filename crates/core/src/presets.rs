//! Ready-made scenarios matching the paper's evaluation section, used by
//! the benchmark harness, the examples and EXPERIMENTS.md.

use crate::cache_sim::CacheScenario;
use crate::joint_sim::JointScenario;
use crate::policy::CachePolicyKind;
use crate::service::ServicePolicyKind;
use crate::service_sim::ServiceScenario;

/// The Fig. 1a experiment: 4 RSUs × 5 contents (20 contents managed by the
/// MBS), 1000 slots, random initial ages and per-content `A^max`; the
/// proposed MDP update policy.
///
/// The paper plots (i) the AoI of two selected contents of RSU 1 over time
/// and (ii) the cumulative MBS reward.
pub fn fig1a_scenario() -> CacheScenario {
    CacheScenario::default()
}

/// The cache policy the paper proposes for Fig. 1a (exact MDP via value
/// iteration).
pub fn fig1a_policy() -> CachePolicyKind {
    CachePolicyKind::ValueIteration { gamma: 0.95 }
}

/// The Fig. 1b experiment: one RSU queue over 1000 slots under Poisson
/// request arrivals; the proposed drift-plus-penalty rule against the two
/// baseline extremes.
pub fn fig1b_scenario() -> ServiceScenario {
    ServiceScenario::default()
}

/// The three service policies compared in Fig. 1b: the proposed rule plus
/// the two extremes the paper's Eq. 5 sanity analysis describes.
pub fn fig1b_policies() -> [ServicePolicyKind; 3] {
    [
        ServicePolicyKind::Lyapunov { v: 20.0 },
        ServicePolicyKind::AlwaysServe,
        ServicePolicyKind::CostGreedy,
    ]
}

/// The joint two-stage extension experiment on the vehicular-network
/// substrate (not a paper figure; exercises both stages end to end).
pub fn joint_scenario() -> JointScenario {
    JointScenario::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_matches_paper_scale() {
        let s = fig1a_scenario();
        assert_eq!(s.n_rsus, 4);
        assert_eq!(s.regions_per_rsu, 5);
        assert_eq!(s.n_contents(), 20);
        assert_eq!(s.horizon, 1000);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn fig1b_has_three_policies() {
        let s = fig1b_scenario();
        assert_eq!(s.horizon, 1000);
        assert!(s.validate().is_ok());
        let kinds = fig1b_policies();
        assert_eq!(kinds.len(), 3);
        assert_eq!(kinds[0].label(), "lyapunov");
    }

    #[test]
    fn joint_scenario_is_valid() {
        assert!(joint_scenario().validate().is_ok());
    }
}
