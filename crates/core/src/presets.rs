//! Ready-made scenarios matching the paper's evaluation section, used by
//! the benchmark harness, the examples and EXPERIMENTS.md.

use crate::cache_sim::CacheScenario;
use crate::experiment::ExperimentPlan;
use crate::joint_sim::JointScenario;
use crate::policy::CachePolicyKind;
use crate::service::ServicePolicyKind;
use crate::service_sim::ServiceScenario;
use simkit::RecordingMode;

/// The Fig. 1a experiment: 4 RSUs × 5 contents (20 contents managed by the
/// MBS), 1000 slots, random initial ages and per-content `A^max`; the
/// proposed MDP update policy.
///
/// The paper plots (i) the AoI of two selected contents of RSU 1 over time
/// and (ii) the cumulative MBS reward.
pub fn fig1a_scenario() -> CacheScenario {
    CacheScenario::default()
}

/// The cache policy the paper proposes for Fig. 1a (exact MDP via value
/// iteration).
pub fn fig1a_policy() -> CachePolicyKind {
    CachePolicyKind::ValueIteration { gamma: 0.95 }
}

/// The Fig. 1b experiment: one RSU queue over 1000 slots under Poisson
/// request arrivals; the proposed drift-plus-penalty rule against the two
/// baseline extremes.
pub fn fig1b_scenario() -> ServiceScenario {
    ServiceScenario::default()
}

/// The three service policies compared in Fig. 1b: the proposed rule plus
/// the two extremes the paper's Eq. 5 sanity analysis describes.
pub fn fig1b_policies() -> [ServicePolicyKind; 3] {
    [
        ServicePolicyKind::Lyapunov { v: 20.0 },
        ServicePolicyKind::AlwaysServe,
        ServicePolicyKind::CostGreedy,
    ]
}

/// The joint two-stage extension experiment on the vehicular-network
/// substrate (not a paper figure; exercises both stages end to end).
pub fn joint_scenario() -> JointScenario {
    JointScenario::default()
}

/// The Fig. 1a experiment as an *ensemble*: the proposed MDP policy against
/// the strongest baselines, replicated over `n_seeds` seeds, producing the
/// mean/CI cumulative-reward curves the paper's figures average over.
pub fn fig1a_ensemble(n_seeds: u64) -> ExperimentPlan {
    ExperimentPlan::cache(
        vec![fig1a_scenario()],
        vec![
            fig1a_policy(),
            CachePolicyKind::AverageReward,
            CachePolicyKind::Myopic,
            CachePolicyKind::AgeThreshold { margin: 1 },
            CachePolicyKind::Random { probability: 0.5 },
            CachePolicyKind::Never,
        ],
    )
    .replicate_seeds((1..=n_seeds.max(1)).collect())
}

/// [`fig1a_ensemble`] in its memory-lean form: cells retain only exact
/// per-content AoI summaries ([`RecordingMode::SummaryOnly`]), so a cell
/// costs `O(horizon)` instead of `O(horizon × contents)` — the preset to
/// scale seed counts far beyond the paper's. Every statistic and ensemble
/// curve is identical to the full-trace plan; pair with
/// [`ExperimentPlan::run_ensembles`] to also stream the replicate waves.
pub fn fig1a_ensemble_lean(n_seeds: u64) -> ExperimentPlan {
    fig1a_ensemble(n_seeds).recording(RecordingMode::SummaryOnly)
}

/// The Fig. 1b experiment as an ensemble: the drift-plus-penalty rule and
/// the two baseline extremes over `n_seeds` replicate arrival traces.
pub fn fig1b_ensemble(n_seeds: u64) -> ExperimentPlan {
    ExperimentPlan::service(vec![fig1b_scenario()], fig1b_policies().to_vec())
        .replicate_seeds((1..=n_seeds.max(1)).collect())
}

/// A deliberately small grid (2 policies × 2 seeds on a tiny scenario) used
/// by the CI smoke step and the bench harness to keep both executor paths
/// (serial and `parallel`) green.
pub fn smoke_grid() -> ExperimentPlan {
    let scenario = CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 3,
        age_cap: 6,
        max_age_min: 3,
        max_age_max: 5,
        horizon: 200,
        ..CacheScenario::default()
    };
    ExperimentPlan::cache(
        vec![scenario],
        vec![
            CachePolicyKind::ValueIteration { gamma: 0.9 },
            CachePolicyKind::Myopic,
        ],
    )
    .replicate_seeds(vec![1, 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_matches_paper_scale() {
        let s = fig1a_scenario();
        assert_eq!(s.n_rsus, 4);
        assert_eq!(s.regions_per_rsu, 5);
        assert_eq!(s.n_contents(), 20);
        assert_eq!(s.horizon, 1000);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn fig1b_has_three_policies() {
        let s = fig1b_scenario();
        assert_eq!(s.horizon, 1000);
        assert!(s.validate().is_ok());
        let kinds = fig1b_policies();
        assert_eq!(kinds.len(), 3);
        assert_eq!(kinds[0].label(), "lyapunov");
    }

    #[test]
    fn joint_scenario_is_valid() {
        assert!(joint_scenario().validate().is_ok());
    }

    #[test]
    fn ensemble_presets_have_expected_shapes() {
        let a = fig1a_ensemble(5);
        assert_eq!(a.n_replicates(), 5);
        assert_eq!(a.n_cells(), 30);
        let b = fig1b_ensemble(3);
        assert_eq!(b.n_cells(), 9);
        // Degenerate requests still yield at least one replicate.
        assert_eq!(fig1a_ensemble(0).n_replicates(), 1);
        // The lean preset only changes trace retention.
        let lean = fig1a_ensemble_lean(5);
        assert_eq!(lean.recording, RecordingMode::SummaryOnly);
        assert_eq!(lean.n_cells(), fig1a_ensemble(5).n_cells());
    }

    #[test]
    fn smoke_grid_runs_quickly_and_deterministically() {
        let report = smoke_grid().run().unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.ensembles.len(), 2);
        let again = smoke_grid().run().unwrap();
        assert_eq!(report, again);
    }
}
