//! The paper's utility function (Eqs. 1–3).
//!
//! ```text
//! U(t)        = w · U^RSU_AoI(t) − U^MBS_cost(t)                   (1)
//! U^RSU_AoI   = Σ_k Σ_h (A^max_h / A^R_{k,h}(x^k_h(t))) · p^k_h(t) (2)
//! U^MBS_cost  = Σ_k Σ_h C^k_h(x^k_h(t))                            (3)
//! ```
//!
//! The AoI term is evaluated on the **post-action** age `A(x)`: when the
//! update action fires, the RSU already holds the fresh MBS copy in that
//! slot.

use crate::aoi::{Age, AgeVector};
use crate::AoiCacheError;
use serde::{Deserialize, Serialize};

/// The reward model of one RSU: weight `w`, per-update cost, and the
/// per-content freshness limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardModel {
    weight: f64,
    update_cost: f64,
    max_ages: Vec<Age>,
}

impl RewardModel {
    /// Creates a reward model.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] if `weight` or `update_cost`
    /// is negative/non-finite or `max_ages` is empty.
    pub fn new(weight: f64, update_cost: f64, max_ages: Vec<Age>) -> Result<Self, AoiCacheError> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(AoiCacheError::BadParameter {
                what: "weight",
                valid: ">= 0 and finite",
            });
        }
        if !update_cost.is_finite() || update_cost < 0.0 {
            return Err(AoiCacheError::BadParameter {
                what: "update_cost",
                valid: ">= 0 and finite",
            });
        }
        if max_ages.is_empty() {
            return Err(AoiCacheError::BadParameter {
                what: "max_ages",
                valid: "non-empty",
            });
        }
        Ok(RewardModel {
            weight,
            update_cost,
            max_ages,
        })
    }

    /// The AoI-utility weight `w`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The per-update communication cost `C^k_h`.
    pub fn update_cost(&self) -> f64 {
        self.update_cost
    }

    /// The freshness limits of the RSU's contents.
    pub fn max_ages(&self) -> &[Age] {
        &self.max_ages
    }

    /// Number of contents covered.
    pub fn n_contents(&self) -> usize {
        self.max_ages.len()
    }

    /// The Eq. 2 AoI utility of one RSU given post-action ages and
    /// popularity: `Σ_h (A^max_h / Ã_h) · p_h`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths of `ages`/`popularity` differ from the model.
    pub fn aoi_utility(&self, ages: &AgeVector, popularity: &[f64]) -> f64 {
        assert_eq!(ages.len(), self.max_ages.len(), "ages length mismatch");
        assert_eq!(
            popularity.len(),
            self.max_ages.len(),
            "popularity length mismatch"
        );
        ages.as_slice()
            .iter()
            .zip(&self.max_ages)
            .zip(popularity)
            .map(|((a, m), p)| a.utility(*m) * p)
            .sum()
    }

    /// The Eq. 3 cost of this slot's action (`updated` = whether the RSU
    /// pushed one content this slot).
    pub fn action_cost(&self, updated: bool) -> f64 {
        if updated {
            self.update_cost
        } else {
            0.0
        }
    }

    /// The Eq. 1 per-slot utility of this RSU:
    /// `w · aoi_utility − action_cost`.
    pub fn slot_utility(&self, ages: &AgeVector, popularity: &[f64], updated: bool) -> f64 {
        self.weight * self.aoi_utility(ages, popularity) - self.action_cost(updated)
    }

    /// The immediate utility *gain* of updating content `h` now versus not
    /// updating (used by the myopic policy):
    /// `w · p_h · (A^max_h/1 − A^max_h/age_h) − C`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range or lengths mismatch.
    pub fn update_gain(&self, ages: &AgeVector, popularity: &[f64], h: usize) -> f64 {
        assert!(h < self.max_ages.len(), "content index out of range");
        let max_age = self.max_ages[h];
        let current = ages.age(h);
        let fresh_utility = Age::ONE.utility(max_age);
        let stale_utility = current.utility(max_age);
        self.weight * popularity[h] * (fresh_utility - stale_utility) - self.update_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn age(v: u32) -> Age {
        Age::new(v).unwrap()
    }

    fn model() -> RewardModel {
        RewardModel::new(1.0, 2.0, vec![age(4), age(8)]).unwrap()
    }

    #[test]
    fn aoi_utility_matches_formula() {
        let m = model();
        let ages = AgeVector::from_ages(vec![age(2), age(4)], age(10)).unwrap();
        let p = [0.25, 0.75];
        // (4/2)*0.25 + (8/4)*0.75 = 0.5 + 1.5 = 2.0
        assert!((m.aoi_utility(&ages, &p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fresh_cache_maximizes_utility() {
        let m = model();
        let fresh = AgeVector::fresh(2, age(10));
        let p = [0.5, 0.5];
        // (4/1)*0.5 + (8/1)*0.5 = 6
        assert!((m.aoi_utility(&fresh, &p) - 6.0).abs() < 1e-12);
        let mut stale = fresh.clone();
        stale.advance();
        assert!(m.aoi_utility(&stale, &p) < 6.0);
    }

    #[test]
    fn slot_utility_subtracts_cost_only_when_updating() {
        let m = model();
        let ages = AgeVector::fresh(2, age(10));
        let p = [0.5, 0.5];
        let with = m.slot_utility(&ages, &p, true);
        let without = m.slot_utility(&ages, &p, false);
        assert!((without - with - 2.0).abs() < 1e-12);
        assert_eq!(m.action_cost(false), 0.0);
        assert_eq!(m.action_cost(true), 2.0);
    }

    #[test]
    fn weight_scales_aoi_term() {
        let heavy = RewardModel::new(3.0, 2.0, vec![age(4)]).unwrap();
        let ages = AgeVector::fresh(1, age(10));
        let p = [1.0];
        assert!((heavy.slot_utility(&ages, &p, false) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn update_gain_grows_with_age_and_popularity() {
        let m = model();
        let young = AgeVector::from_ages(vec![age(2), age(2)], age(10)).unwrap();
        let old = AgeVector::from_ages(vec![age(4), age(4)], age(10)).unwrap();
        let p = [0.5, 0.5];
        assert!(m.update_gain(&old, &p, 0) > m.update_gain(&young, &p, 0));
        let p_hot = [0.9, 0.1];
        assert!(m.update_gain(&old, &p_hot, 0) > m.update_gain(&old, &p_hot, 1));
    }

    #[test]
    fn update_gain_of_fresh_content_is_negative() {
        let m = model();
        let fresh = AgeVector::fresh(2, age(10));
        let p = [0.5, 0.5];
        // No utility gain, pure cost.
        assert!((m.update_gain(&fresh, &p, 0) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(RewardModel::new(-1.0, 0.0, vec![age(2)]).is_err());
        assert!(RewardModel::new(1.0, f64::NAN, vec![age(2)]).is_err());
        assert!(RewardModel::new(1.0, 1.0, vec![]).is_err());
        let m = model();
        assert_eq!(m.weight(), 1.0);
        assert_eq!(m.update_cost(), 2.0);
        assert_eq!(m.n_contents(), 2);
        assert_eq!(m.max_ages().len(), 2);
    }
}
