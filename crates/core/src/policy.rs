//! Cache-update policies: the paper's MDP-derived policy and the baselines
//! it is compared against.

use crate::aoi::{Age, AgeVector};
use crate::mdp_model::{PopularityModel, RsuCacheMdp};
use crate::reward::RewardModel;
use crate::AoiCacheError;
use mdp::solver::{
    BackwardInduction, PolicyIteration, QLearning, RelativeValueIteration, Sarsa, ValueIteration,
};
use mdp::{CompiledMdp, TabularPolicy};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use simkit::TimeSlot;

/// Everything a cache-update policy may inspect when deciding.
#[derive(Debug, Clone, Copy)]
pub struct CacheDecisionContext<'a> {
    /// Current slot.
    pub slot: TimeSlot,
    /// Start-of-slot ages of the RSU's cached contents.
    pub ages: &'a AgeVector,
    /// Per-content freshness limits.
    pub max_ages: &'a [Age],
    /// Current content popularity `p^k_h(t)` (sums to 1).
    pub popularity: &'a [f64],
    /// The Eq. 1 AoI weight `w`.
    pub weight: f64,
    /// Cost of pushing one update this slot.
    pub update_cost: f64,
}

/// A per-RSU cache-update decision rule.
///
/// Each slot the policy returns `Some(local content index)` to push a fresh
/// copy of that content, or `None` to skip the slot (the paper's binary
/// `x^k_h(t)` with the one-update-per-RSU constraint).
///
/// Policies are `Send` so per-RSU construction (MDP solves included) can
/// fan out across the shared executor.
pub trait CacheUpdatePolicy: Send {
    /// Short display name (used in experiment tables).
    fn name(&self) -> &str;

    /// Decides this slot's update.
    fn decide(&mut self, ctx: &CacheDecisionContext<'_>, rng: &mut dyn RngCore) -> Option<usize>;
}

/// Static description of one RSU's cache-control problem, used to build
/// policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RsuSpec {
    /// Freshness limits of the cached contents.
    pub max_ages: Vec<Age>,
    /// Popularity estimate at build time (sums to 1).
    pub popularity: Vec<f64>,
    /// Age cap `A_cap` of the state space.
    pub age_cap: Age,
    /// The Eq. 1 weight `w`.
    pub weight: f64,
    /// Per-update communication cost.
    pub update_cost: f64,
}

impl RsuSpec {
    /// Number of cached contents.
    pub fn n_contents(&self) -> usize {
        self.max_ages.len()
    }

    /// Builds the reward model for this RSU.
    ///
    /// # Errors
    ///
    /// Propagates [`RewardModel::new`] validation errors.
    pub fn reward_model(&self) -> Result<RewardModel, AoiCacheError> {
        RewardModel::new(self.weight, self.update_cost, self.max_ages.clone())
    }

    /// Builds the exact per-RSU MDP with static popularity.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn mdp(&self) -> Result<RsuCacheMdp, AoiCacheError> {
        RsuCacheMdp::new(
            self.reward_model()?,
            self.age_cap,
            PopularityModel::Static(self.popularity.clone()),
        )
    }
}

/// A per-RSU cache MDP paired with its compiled CSR solver kernel.
///
/// Simulators build one of these per RSU up front and hand it to every
/// policy construction ([`CachePolicyKind::build_with`]), so the model is
/// enumerated exactly once no matter how many solver families, discounts or
/// horizon steps run against it.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledRsuMdp {
    /// The exact per-RSU model (state encoding/decoding lives here).
    pub model: RsuCacheMdp,
    /// The flat CSR kernel the solvers sweep on.
    pub kernel: CompiledMdp,
}

impl CompiledRsuMdp {
    /// Builds and compiles the spec's MDP.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and compilation errors.
    pub fn from_spec(spec: &RsuSpec) -> Result<Self, AoiCacheError> {
        let model = spec.mdp()?;
        let kernel = model.compile()?;
        Ok(CompiledRsuMdp { model, kernel })
    }
}

/// A policy solved offline on the exact per-RSU MDP (value iteration,
/// policy iteration or Q-learning) and executed by table lookup.
#[derive(Debug, Clone)]
pub struct SolvedMdpPolicy {
    name: String,
    mdp: RsuCacheMdp,
    policy: TabularPolicy,
}

impl SolvedMdpPolicy {
    /// Solves the spec's MDP with value iteration.
    ///
    /// # Errors
    ///
    /// Propagates model/solver errors.
    pub fn value_iteration(spec: &RsuSpec, gamma: f64) -> Result<Self, AoiCacheError> {
        Self::value_iteration_on(&CompiledRsuMdp::from_spec(spec)?, gamma)
    }

    /// Value iteration on an already-compiled per-RSU MDP.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn value_iteration_on(
        compiled: &CompiledRsuMdp,
        gamma: f64,
    ) -> Result<Self, AoiCacheError> {
        let outcome = ValueIteration::new(gamma).solve_compiled(&compiled.kernel)?;
        Ok(SolvedMdpPolicy {
            name: "mdp-vi".to_string(),
            mdp: compiled.model.clone(),
            policy: outcome.policy,
        })
    }

    /// Solves the spec's MDP with policy iteration.
    ///
    /// # Errors
    ///
    /// Propagates model/solver errors.
    pub fn policy_iteration(spec: &RsuSpec, gamma: f64) -> Result<Self, AoiCacheError> {
        Self::policy_iteration_on(&CompiledRsuMdp::from_spec(spec)?, gamma)
    }

    /// Policy iteration on an already-compiled per-RSU MDP.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn policy_iteration_on(
        compiled: &CompiledRsuMdp,
        gamma: f64,
    ) -> Result<Self, AoiCacheError> {
        let outcome = PolicyIteration::new(gamma).solve_compiled(&compiled.kernel)?;
        Ok(SolvedMdpPolicy {
            name: "mdp-pi".to_string(),
            mdp: compiled.model.clone(),
            policy: outcome.policy,
        })
    }

    /// Learns a policy with tabular Q-learning on the spec's MDP.
    ///
    /// # Errors
    ///
    /// Propagates model/learner errors.
    pub fn q_learning(
        spec: &RsuSpec,
        gamma: f64,
        steps: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self, AoiCacheError> {
        Self::q_learning_on(&CompiledRsuMdp::from_spec(spec)?, gamma, steps, rng)
    }

    /// Q-learning on an already-compiled per-RSU MDP (the learner samples
    /// allocation-free from the kernel's CSR rows).
    ///
    /// # Errors
    ///
    /// Propagates learner errors.
    pub fn q_learning_on(
        compiled: &CompiledRsuMdp,
        gamma: f64,
        steps: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self, AoiCacheError> {
        let q = QLearning::new(gamma)
            .steps(steps)
            .learn(&compiled.kernel, rng)?;
        Ok(SolvedMdpPolicy {
            name: "mdp-ql".to_string(),
            mdp: compiled.model.clone(),
            policy: q.greedy_policy(),
        })
    }

    /// Learns a policy with tabular SARSA (on-policy TD) on the spec's MDP.
    ///
    /// # Errors
    ///
    /// Propagates model/learner errors.
    pub fn sarsa(
        spec: &RsuSpec,
        gamma: f64,
        steps: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self, AoiCacheError> {
        Self::sarsa_on(&CompiledRsuMdp::from_spec(spec)?, gamma, steps, rng)
    }

    /// SARSA on an already-compiled per-RSU MDP (allocation-free sampling
    /// from the kernel's CSR rows).
    ///
    /// # Errors
    ///
    /// Propagates learner errors.
    pub fn sarsa_on(
        compiled: &CompiledRsuMdp,
        gamma: f64,
        steps: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self, AoiCacheError> {
        let q = Sarsa::new(gamma)
            .steps(steps)
            .learn(&compiled.kernel, rng)?;
        Ok(SolvedMdpPolicy {
            name: "mdp-sarsa".to_string(),
            mdp: compiled.model.clone(),
            policy: q.greedy_policy(),
        })
    }

    /// Solves the spec's MDP for the **average-reward** criterion with
    /// relative value iteration — the exact match for the paper's long-run
    /// objective (the discounted solvers approximate it with γ → 1).
    ///
    /// # Errors
    ///
    /// Propagates model/solver errors.
    pub fn average_reward(spec: &RsuSpec) -> Result<Self, AoiCacheError> {
        Self::average_reward_on(&CompiledRsuMdp::from_spec(spec)?)
    }

    /// Relative value iteration on an already-compiled per-RSU MDP.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn average_reward_on(compiled: &CompiledRsuMdp) -> Result<Self, AoiCacheError> {
        let outcome = RelativeValueIteration::new()
            .tolerance(1e-10)
            .solve_compiled(&compiled.kernel)?;
        Ok(SolvedMdpPolicy {
            name: "mdp-avg".to_string(),
            mdp: compiled.model.clone(),
            policy: outcome.policy,
        })
    }

    /// Receding-horizon control: solves the spec's MDP over a finite
    /// lookahead of `horizon` slots (backward induction, undiscounted) and
    /// applies the first-stage decision rule every slot.
    ///
    /// # Errors
    ///
    /// Propagates model/solver errors.
    pub fn receding_horizon(spec: &RsuSpec, horizon: usize) -> Result<Self, AoiCacheError> {
        Self::receding_horizon_on(&CompiledRsuMdp::from_spec(spec)?, horizon)
    }

    /// Backward induction on an already-compiled per-RSU MDP.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn receding_horizon_on(
        compiled: &CompiledRsuMdp,
        horizon: usize,
    ) -> Result<Self, AoiCacheError> {
        let solution = BackwardInduction::new(horizon).solve_compiled(&compiled.kernel)?;
        Ok(SolvedMdpPolicy {
            name: "mdp-rh".to_string(),
            mdp: compiled.model.clone(),
            policy: solution.first_policy().clone(),
        })
    }

    /// The underlying tabular policy.
    pub fn tabular(&self) -> &TabularPolicy {
        &self.policy
    }
}

impl CacheUpdatePolicy for SolvedMdpPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, ctx: &CacheDecisionContext<'_>, _rng: &mut dyn RngCore) -> Option<usize> {
        // One table lookup per slot; `encode_state` streams the age
        // coordinates (no per-decision heap allocation — the simulators'
        // step loops rely on this, see `core/tests/alloc_free.rs`).
        let state = self.mdp.encode_state(ctx.ages, 0);
        self.mdp.decode_action(self.policy.action(state))
    }
}

/// One-step-greedy policy: update the content with the largest immediate
/// Eq. 1 gain, if that gain is positive (equivalently, the MDP policy at
/// `γ = 0`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MyopicPolicy;

impl CacheUpdatePolicy for MyopicPolicy {
    fn name(&self) -> &str {
        "myopic"
    }

    fn decide(&mut self, ctx: &CacheDecisionContext<'_>, _rng: &mut dyn RngCore) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for h in 0..ctx.ages.len() {
            let max_age = ctx.max_ages[h];
            let gain = ctx.weight
                * ctx.popularity[h]
                * (Age::ONE.utility(max_age) - ctx.ages.age(h).utility(max_age))
                - ctx.update_cost;
            if gain > 0.0 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((h, gain));
            }
        }
        best.map(|(h, _)| h)
    }
}

/// Freshness-pressure index policy: update the content with the largest
/// `p_h · age_h / A^max_h` once that index exceeds a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexPolicy {
    /// Minimum index value required to spend an update.
    pub threshold: f64,
}

impl CacheUpdatePolicy for IndexPolicy {
    fn name(&self) -> &str {
        "index"
    }

    fn decide(&mut self, ctx: &CacheDecisionContext<'_>, _rng: &mut dyn RngCore) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for h in 0..ctx.ages.len() {
            let index = ctx.popularity[h] * ctx.ages.age(h).ratio_to(ctx.max_ages[h]);
            if best.is_none_or(|(_, i)| index > i) {
                best = Some((h, index));
            }
        }
        best.filter(|(_, i)| *i >= self.threshold).map(|(h, _)| h)
    }
}

/// Deadline policy: update the content closest to (or past) its freshness
/// limit once it comes within `margin` slots of the limit; popularity
/// breaks ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgeThresholdPolicy {
    /// How many slots before the limit to refresh (0 = refresh only at the
    /// limit).
    pub margin: u32,
}

impl CacheUpdatePolicy for AgeThresholdPolicy {
    fn name(&self) -> &str {
        "threshold"
    }

    fn decide(&mut self, ctx: &CacheDecisionContext<'_>, _rng: &mut dyn RngCore) -> Option<usize> {
        let mut best: Option<(usize, u32, f64)> = None; // (h, slack, popularity)
        for h in 0..ctx.ages.len() {
            let age = ctx.ages.age(h).get();
            let limit = ctx.max_ages[h].get();
            let slack = limit.saturating_sub(age);
            if slack > self.margin {
                continue;
            }
            let p = ctx.popularity[h];
            let better = match best {
                None => true,
                Some((_, s, bp)) => slack < s || (slack == s && p > bp),
            };
            if better {
                best = Some((h, slack, p));
            }
        }
        best.map(|(h, _, _)| h)
    }
}

/// Blind periodic policy: every `period` slots, update the next content in
/// round-robin order (ignores ages, popularity and cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodicPolicy {
    period: u64,
    cursor: usize,
}

impl PeriodicPolicy {
    /// Creates a policy updating every `period ≥ 1` slots.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u64) -> Self {
        assert!(period >= 1, "period must be at least 1");
        PeriodicPolicy { period, cursor: 0 }
    }
}

impl CacheUpdatePolicy for PeriodicPolicy {
    fn name(&self) -> &str {
        "periodic"
    }

    fn decide(&mut self, ctx: &CacheDecisionContext<'_>, _rng: &mut dyn RngCore) -> Option<usize> {
        if !ctx.slot.index().is_multiple_of(self.period) {
            return None;
        }
        let h = self.cursor % ctx.ages.len();
        self.cursor = (self.cursor + 1) % ctx.ages.len();
        Some(h)
    }
}

/// Coin-flip policy: with probability `probability` update a uniformly
/// random content.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomPolicy {
    /// Per-slot update probability.
    pub probability: f64,
}

impl CacheUpdatePolicy for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }

    fn decide(&mut self, ctx: &CacheDecisionContext<'_>, rng: &mut dyn RngCore) -> Option<usize> {
        if rng.gen::<f64>() < self.probability {
            Some(rng.gen_range(0..ctx.ages.len()))
        } else {
            None
        }
    }
}

/// Never updates anything (lower bound on cost, upper bound on staleness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeverPolicy;

impl CacheUpdatePolicy for NeverPolicy {
    fn name(&self) -> &str {
        "never"
    }

    fn decide(&mut self, _ctx: &CacheDecisionContext<'_>, _rng: &mut dyn RngCore) -> Option<usize> {
        None
    }
}

/// Declarative policy selection, used by simulators and the benchmark
/// harness to build one policy instance per RSU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CachePolicyKind {
    /// Exact MDP policy via value iteration (the paper's approach).
    ValueIteration {
        /// Discount factor.
        gamma: f64,
    },
    /// Exact MDP policy via policy iteration.
    PolicyIteration {
        /// Discount factor.
        gamma: f64,
    },
    /// Model-free tabular Q-learning on the same MDP.
    QLearning {
        /// Discount factor.
        gamma: f64,
        /// Environment steps to learn for.
        steps: usize,
    },
    /// Model-free tabular SARSA (on-policy TD) on the same MDP.
    Sarsa {
        /// Discount factor.
        gamma: f64,
        /// Environment steps to learn for.
        steps: usize,
    },
    /// Exact average-reward policy via relative value iteration (the
    /// paper's long-run objective solved directly, no discounting).
    AverageReward,
    /// Receding-horizon control: undiscounted backward induction over a
    /// finite lookahead, first-stage rule applied every slot.
    RecedingHorizon {
        /// Lookahead depth in slots.
        horizon: usize,
    },
    /// One-step greedy on Eq. 1.
    Myopic,
    /// Freshness-pressure index rule.
    Index {
        /// Index threshold.
        threshold: f64,
    },
    /// Refresh within `margin` slots of the freshness limit.
    AgeThreshold {
        /// Slots of slack before the limit.
        margin: u32,
    },
    /// Blind round-robin refresh every `period` slots.
    Periodic {
        /// Slots between updates.
        period: u64,
    },
    /// Random refresh with the given per-slot probability.
    Random {
        /// Per-slot update probability.
        probability: f64,
    },
    /// Never refresh.
    Never,
}

impl CachePolicyKind {
    /// Short display label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            CachePolicyKind::ValueIteration { .. } => "mdp-vi",
            CachePolicyKind::PolicyIteration { .. } => "mdp-pi",
            CachePolicyKind::QLearning { .. } => "mdp-ql",
            CachePolicyKind::Sarsa { .. } => "mdp-sarsa",
            CachePolicyKind::AverageReward => "mdp-avg",
            CachePolicyKind::RecedingHorizon { .. } => "mdp-rh",
            CachePolicyKind::Myopic => "myopic",
            CachePolicyKind::Index { .. } => "index",
            CachePolicyKind::AgeThreshold { .. } => "threshold",
            CachePolicyKind::Periodic { .. } => "periodic",
            CachePolicyKind::Random { .. } => "random",
            CachePolicyKind::Never => "never",
        }
    }

    /// Whether this kind solves the per-RSU MDP (and therefore benefits
    /// from a pre-compiled kernel).
    pub fn uses_mdp(&self) -> bool {
        matches!(
            self,
            CachePolicyKind::ValueIteration { .. }
                | CachePolicyKind::PolicyIteration { .. }
                | CachePolicyKind::QLearning { .. }
                | CachePolicyKind::Sarsa { .. }
                | CachePolicyKind::AverageReward
                | CachePolicyKind::RecedingHorizon { .. }
        )
    }

    /// Builds a policy instance for one RSU, compiling the spec's MDP when
    /// the kind needs it. Callers holding several policy kinds (or running
    /// repeatedly) should compile once with [`CompiledRsuMdp::from_spec`]
    /// and use [`build_with`](CachePolicyKind::build_with).
    ///
    /// # Errors
    ///
    /// Propagates model/solver construction errors (only the MDP-based
    /// kinds can fail).
    pub fn build(
        &self,
        spec: &RsuSpec,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn CacheUpdatePolicy>, AoiCacheError> {
        let compiled = if self.uses_mdp() {
            Some(CompiledRsuMdp::from_spec(spec)?)
        } else {
            None
        };
        self.build_with(compiled.as_ref(), rng)
    }

    /// Builds a policy instance for one RSU against a pre-compiled kernel
    /// (which embeds the per-RSU model, so no spec is needed here).
    ///
    /// The MDP-based kinds solve on `compiled` (which therefore must be
    /// `Some` for them); the baselines ignore it.
    ///
    /// # Errors
    ///
    /// Propagates solver errors, and returns
    /// [`AoiCacheError::BadParameter`] when an MDP-based kind is built
    /// without a compiled model.
    pub fn build_with(
        &self,
        compiled: Option<&CompiledRsuMdp>,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn CacheUpdatePolicy>, AoiCacheError> {
        let need = || {
            compiled.ok_or(AoiCacheError::BadParameter {
                what: "compiled",
                valid: "Some(..) for MDP-based policy kinds",
            })
        };
        Ok(match *self {
            CachePolicyKind::ValueIteration { gamma } => {
                Box::new(SolvedMdpPolicy::value_iteration_on(need()?, gamma)?)
            }
            CachePolicyKind::PolicyIteration { gamma } => {
                Box::new(SolvedMdpPolicy::policy_iteration_on(need()?, gamma)?)
            }
            CachePolicyKind::QLearning { gamma, steps } => {
                Box::new(SolvedMdpPolicy::q_learning_on(need()?, gamma, steps, rng)?)
            }
            CachePolicyKind::Sarsa { gamma, steps } => {
                Box::new(SolvedMdpPolicy::sarsa_on(need()?, gamma, steps, rng)?)
            }
            CachePolicyKind::AverageReward => {
                Box::new(SolvedMdpPolicy::average_reward_on(need()?)?)
            }
            CachePolicyKind::RecedingHorizon { horizon } => {
                Box::new(SolvedMdpPolicy::receding_horizon_on(need()?, horizon)?)
            }
            CachePolicyKind::Myopic => Box::new(MyopicPolicy),
            CachePolicyKind::Index { threshold } => Box::new(IndexPolicy { threshold }),
            CachePolicyKind::AgeThreshold { margin } => Box::new(AgeThresholdPolicy { margin }),
            CachePolicyKind::Periodic { period } => Box::new(PeriodicPolicy::new(period)),
            CachePolicyKind::Random { probability } => Box::new(RandomPolicy { probability }),
            CachePolicyKind::Never => Box::new(NeverPolicy),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn age(v: u32) -> Age {
        Age::new(v).unwrap()
    }

    fn spec() -> RsuSpec {
        RsuSpec {
            max_ages: vec![age(3), age(5)],
            popularity: vec![0.7, 0.3],
            age_cap: age(6),
            weight: 1.0,
            update_cost: 0.5,
        }
    }

    fn ctx<'a>(slot: u64, ages: &'a AgeVector, spec: &'a RsuSpec) -> CacheDecisionContext<'a> {
        CacheDecisionContext {
            slot: TimeSlot::new(slot),
            ages,
            max_ages: &spec.max_ages,
            popularity: &spec.popularity,
            weight: spec.weight,
            update_cost: spec.update_cost,
        }
    }

    #[test]
    fn myopic_skips_fresh_and_updates_stale() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = MyopicPolicy;
        let fresh = AgeVector::fresh(2, spec.age_cap);
        assert_eq!(policy.decide(&ctx(0, &fresh, &spec), &mut rng), None);

        let stale = AgeVector::from_ages(vec![age(6), age(6)], spec.age_cap).unwrap();
        // Content 0: gain = 0.7*(3 - 0.5) - 0.5 = 1.25; content 1: 0.3*(5-5/6)-0.5 = 0.75.
        assert_eq!(policy.decide(&ctx(0, &stale, &spec), &mut rng), Some(0));
    }

    #[test]
    fn index_policy_honours_threshold() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(0);
        let mut low = IndexPolicy { threshold: 0.0 };
        let mut high = IndexPolicy { threshold: 10.0 };
        let ages = AgeVector::from_ages(vec![age(3), age(2)], spec.age_cap).unwrap();
        // index0 = 0.7*3/3 = 0.7; index1 = 0.3*2/5 = 0.12.
        assert_eq!(low.decide(&ctx(0, &ages, &spec), &mut rng), Some(0));
        assert_eq!(high.decide(&ctx(0, &ages, &spec), &mut rng), None);
    }

    #[test]
    fn threshold_policy_waits_for_deadline() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = AgeThresholdPolicy { margin: 0 };
        let young = AgeVector::from_ages(vec![age(2), age(2)], spec.age_cap).unwrap();
        assert_eq!(policy.decide(&ctx(0, &young, &spec), &mut rng), None);
        let deadline = AgeVector::from_ages(vec![age(3), age(2)], spec.age_cap).unwrap();
        assert_eq!(policy.decide(&ctx(0, &deadline, &spec), &mut rng), Some(0));
    }

    #[test]
    fn threshold_policy_prefers_tightest_deadline() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = AgeThresholdPolicy { margin: 2 };
        // slack0 = 3-1 = 2, slack1 = 5-5 = 0 -> content 1 is tighter.
        let ages = AgeVector::from_ages(vec![age(1), age(5)], spec.age_cap).unwrap();
        assert_eq!(policy.decide(&ctx(0, &ages, &spec), &mut rng), Some(1));
    }

    #[test]
    fn periodic_policy_cycles() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = PeriodicPolicy::new(2);
        let ages = AgeVector::fresh(2, spec.age_cap);
        assert_eq!(policy.decide(&ctx(0, &ages, &spec), &mut rng), Some(0));
        assert_eq!(policy.decide(&ctx(1, &ages, &spec), &mut rng), None);
        assert_eq!(policy.decide(&ctx(2, &ages, &spec), &mut rng), Some(1));
        assert_eq!(policy.decide(&ctx(4, &ages, &spec), &mut rng), Some(0));
    }

    #[test]
    fn random_policy_rate() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(7);
        let mut policy = RandomPolicy { probability: 0.25 };
        let ages = AgeVector::fresh(2, spec.age_cap);
        let n = 10_000;
        let updates = (0..n)
            .filter(|i| policy.decide(&ctx(*i, &ages, &spec), &mut rng).is_some())
            .count();
        let rate = updates as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn never_policy_never_updates() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = NeverPolicy;
        let stale = AgeVector::from_ages(vec![age(6), age(6)], spec.age_cap).unwrap();
        assert_eq!(policy.decide(&ctx(0, &stale, &spec), &mut rng), None);
    }

    #[test]
    fn solved_policy_refreshes_stale_popular_content() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = SolvedMdpPolicy::value_iteration(&spec, 0.95).unwrap();
        assert_eq!(policy.name(), "mdp-vi");
        let stale = AgeVector::from_ages(vec![age(6), age(6)], spec.age_cap).unwrap();
        let decision = policy.decide(&ctx(0, &stale, &spec), &mut rng);
        assert_eq!(decision, Some(0), "popular stale content first");
        let fresh = AgeVector::fresh(2, spec.age_cap);
        assert_eq!(policy.decide(&ctx(0, &fresh, &spec), &mut rng), None);
    }

    #[test]
    fn solvers_agree_on_small_spec() {
        let spec = spec();
        let vi = SolvedMdpPolicy::value_iteration(&spec, 0.9).unwrap();
        let pi = SolvedMdpPolicy::policy_iteration(&spec, 0.9).unwrap();
        assert_eq!(vi.tabular().actions(), pi.tabular().actions());
    }

    #[test]
    fn kind_builds_every_variant() {
        let spec = spec();
        let mut rng = StdRng::seed_from_u64(2);
        let kinds = [
            CachePolicyKind::ValueIteration { gamma: 0.9 },
            CachePolicyKind::PolicyIteration { gamma: 0.9 },
            CachePolicyKind::QLearning {
                gamma: 0.9,
                steps: 2_000,
            },
            CachePolicyKind::Sarsa {
                gamma: 0.9,
                steps: 2_000,
            },
            CachePolicyKind::AverageReward,
            CachePolicyKind::RecedingHorizon { horizon: 20 },
            CachePolicyKind::Myopic,
            CachePolicyKind::Index { threshold: 0.5 },
            CachePolicyKind::AgeThreshold { margin: 1 },
            CachePolicyKind::Periodic { period: 3 },
            CachePolicyKind::Random { probability: 0.3 },
            CachePolicyKind::Never,
        ];
        for kind in kinds {
            let policy = kind.build(&spec, &mut rng).unwrap();
            assert_eq!(policy.name(), kind.label());
        }
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        let _ = PeriodicPolicy::new(0);
    }
}
