//! AoI-constrained service control — the full Eq. 4 of the paper.
//!
//! The paper's stage-2 problem is
//!
//! ```text
//! min  lim (1/T) Σ C(α[t])
//! s.t. queue stability           (lim (1/T) Σ Q[t] < ∞)
//!      AoI requirement           (Σ_h A(α[t]) ≤ A^max_h)
//! ```
//!
//! Fig. 1b exercises the stability part; this module implements the AoI
//! requirement too, with the standard virtual-queue technique: a virtual
//! queue `Z[t]` accumulates the per-slot freshness violation
//! `y(α) = b(α)·(age(α) − A^target)` and joins the drift-plus-penalty
//! argmin, so the time-average served age provably meets the target
//! whenever it is feasible.
//!
//! Each slot the RSU chooses a service level **and a source**: the cached
//! copy (cheap, current cache age — a stage-1 sawtooth) or an MBS
//! fetch-through (surcharged, always fresh).

use crate::service::ServiceLevel;
use crate::AoiCacheError;
use lyapunov::analysis::{check_stability, StabilityVerdict};
use lyapunov::{DriftPlusPenalty, Queue, VirtualQueue, WeightedOption};
use serde::{Deserialize, Serialize};
use simkit::{sample_poisson, SeedSequence, SlotClock, TimeSeries};

/// Where a served request's content comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServingSource {
    /// The RSU's cached copy, at its current age.
    Cache,
    /// A fetch-through from the MBS: always age 1, surcharged.
    Mbs,
}

/// Configuration of an AoI-constrained service experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreshnessScenario {
    /// Mean request arrivals per slot (Poisson).
    pub arrival_rate: f64,
    /// Base service-level menu (must include an idle level).
    pub levels: Vec<ServiceLevel>,
    /// Multiplicative surcharge for MBS-fresh serving
    /// (`cost × (1 + surcharge)`).
    pub mbs_surcharge: f64,
    /// The AoI requirement `A^target`: the time-average served age must not
    /// exceed this.
    pub age_target: f64,
    /// The cached copy's age cycles `1..=period` (a stage-1 refresh
    /// sawtooth).
    pub cache_refresh_period: u32,
    /// Lyapunov tradeoff coefficient.
    pub v: f64,
    /// Slots simulated.
    pub horizon: usize,
    /// Root seed for the arrival trace.
    pub seed: u64,
}

impl Default for FreshnessScenario {
    fn default() -> Self {
        FreshnessScenario {
            arrival_rate: 0.9,
            levels: ServiceLevel::standard_menu(),
            mbs_surcharge: 1.0,
            age_target: 3.0,
            cache_refresh_period: 8,
            v: 20.0,
            horizon: 5000,
            seed: 31,
        }
    }
}

impl FreshnessScenario {
    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] for invalid settings.
    pub fn validate(&self) -> Result<(), AoiCacheError> {
        if !self.arrival_rate.is_finite() || self.arrival_rate < 0.0 {
            return Err(AoiCacheError::BadParameter {
                what: "arrival_rate",
                valid: ">= 0 and finite",
            });
        }
        if self.levels.is_empty() {
            return Err(AoiCacheError::BadParameter {
                what: "levels",
                valid: "non-empty",
            });
        }
        if !self.mbs_surcharge.is_finite() || self.mbs_surcharge < 0.0 {
            return Err(AoiCacheError::BadParameter {
                what: "mbs_surcharge",
                valid: ">= 0 and finite",
            });
        }
        if !self.age_target.is_finite() || self.age_target < 1.0 {
            return Err(AoiCacheError::BadParameter {
                what: "age_target",
                valid: ">= 1 (ages are >= 1)",
            });
        }
        if self.cache_refresh_period == 0 {
            return Err(AoiCacheError::BadParameter {
                what: "cache_refresh_period",
                valid: ">= 1",
            });
        }
        if self.horizon == 0 {
            return Err(AoiCacheError::BadParameter {
                what: "horizon",
                valid: ">= 1",
            });
        }
        Ok(())
    }

    /// Mean cache age over one refresh cycle: `(period + 1) / 2`.
    pub fn mean_cache_age(&self) -> f64 {
        f64::from(self.cache_refresh_period + 1) / 2.0
    }
}

/// How the controller is allowed to source content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourcingMode {
    /// Full menu: cache and MBS variants of every level (the proposed
    /// controller).
    Adaptive,
    /// Cache only (violates the age target when the cache cycle is long).
    CacheOnly,
    /// MBS only (always fresh, maximally expensive).
    MbsOnly,
}

impl SourcingMode {
    /// Short display label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            SourcingMode::Adaptive => "adaptive",
            SourcingMode::CacheOnly => "cache-only",
            SourcingMode::MbsOnly => "mbs-only",
        }
    }
}

/// Everything measured in one AoI-constrained run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreshnessReport {
    /// Sourcing mode of the run.
    pub mode: SourcingMode,
    /// Backlog trajectory.
    pub queue: TimeSeries,
    /// Virtual (freshness) queue trajectory.
    pub virtual_queue: TimeSeries,
    /// Time-average cost.
    pub mean_cost: f64,
    /// Time-average backlog.
    pub mean_queue: f64,
    /// Requests served from the cache.
    pub served_cache: f64,
    /// Requests served via MBS fetch-through.
    pub served_mbs: f64,
    /// Request-weighted mean served age.
    pub mean_served_age: f64,
    /// Rate-stability verdict of the backlog.
    pub stability: StabilityVerdict,
    /// Whether the freshness virtual queue is rate-stable (the constraint
    /// holds in time average).
    pub constraint_met: bool,
}

impl FreshnessReport {
    /// Fraction of served requests that needed an MBS fetch.
    pub fn mbs_fraction(&self) -> f64 {
        let total = self.served_cache + self.served_mbs;
        if total == 0.0 {
            0.0
        } else {
            self.served_mbs / total
        }
    }
}

/// Runs the AoI-constrained controller.
///
/// # Errors
///
/// Propagates scenario validation and controller errors.
pub fn run_freshness_service(
    scenario: &FreshnessScenario,
    mode: SourcingMode,
) -> Result<FreshnessReport, AoiCacheError> {
    scenario.validate()?;
    let dpp = DriftPlusPenalty::new(scenario.v)?;
    let mut seeds = SeedSequence::new(scenario.seed);
    let mut rng = seeds.rng("arrivals");

    let mut queue = Queue::new();
    let mut freshness = VirtualQueue::new();
    let mut clock = SlotClock::new();
    let mut queue_series = TimeSeries::with_capacity("queue", scenario.horizon);
    let mut z_series = TimeSeries::with_capacity("freshness debt", scenario.horizon);

    let mut cost_sum = 0.0;
    let mut queue_sum = 0.0;
    let mut served_cache = 0.0;
    let mut served_mbs = 0.0;
    let mut age_weighted = 0.0;

    // Candidate decisions rebuilt each slot (the cache age changes).
    #[derive(Clone, Copy)]
    struct Candidate {
        cost: f64,
        rate: f64,
        age: f64,
        source: ServingSource,
    }

    for t in 0..scenario.horizon {
        let now = clock.now();
        let cache_age = f64::from((t as u32 % scenario.cache_refresh_period) + 1);

        let mut candidates: Vec<Candidate> = Vec::new();
        for level in &scenario.levels {
            if level.rate == 0.0 {
                candidates.push(Candidate {
                    cost: level.cost,
                    rate: 0.0,
                    age: 0.0,
                    source: ServingSource::Cache,
                });
                continue;
            }
            if mode != SourcingMode::MbsOnly {
                candidates.push(Candidate {
                    cost: level.cost,
                    rate: level.rate,
                    age: cache_age,
                    source: ServingSource::Cache,
                });
            }
            if mode != SourcingMode::CacheOnly {
                candidates.push(Candidate {
                    cost: level.cost * (1.0 + scenario.mbs_surcharge),
                    rate: level.rate,
                    age: 1.0,
                    source: ServingSource::Mbs,
                });
            }
        }
        let options: Vec<WeightedOption> = candidates
            .iter()
            .map(|c| {
                // Price decisions by the *effective* drain min(b, Q): paying
                // for service capacity an empty queue cannot use would let
                // freshness pressure burn cost without reducing anything.
                let effective = c.rate.min(queue.backlog());
                WeightedOption {
                    cost: c.cost,
                    // Queue 0 (backlog): drained by the effective rate.
                    // Queue 1 (freshness): grown by b_eff·(age − target),
                    // i.e. "service" −y(α).
                    services: vec![effective, -(effective * (c.age - scenario.age_target))],
                }
            })
            .collect();

        // Only the adaptive controller sees the freshness debt; the
        // baselines run plain backlog-only drift-plus-penalty (they are
        // freshness-oblivious, which is the point of comparing them).
        let z_pressure = if mode == SourcingMode::Adaptive {
            freshness.value()
        } else {
            0.0
        };
        let chosen = candidates[dpp.decide_weighted(&[queue.backlog(), z_pressure], &options)?];

        let arrivals = sample_poisson(scenario.arrival_rate, &mut rng) as f64;
        let drained = queue.step(arrivals, chosen.rate);
        freshness.step(drained * (chosen.age - scenario.age_target));
        match chosen.source {
            ServingSource::Cache => served_cache += drained,
            ServingSource::Mbs => served_mbs += drained,
        }
        age_weighted += drained * chosen.age;
        cost_sum += chosen.cost;
        queue_sum += queue.backlog();
        queue_series.push(now, queue.backlog());
        z_series.push(now, freshness.value());
        clock.tick();
    }

    let horizon = scenario.horizon as f64;
    let total_served = served_cache + served_mbs;
    let backlogs: Vec<f64> = queue_series.values().collect();
    Ok(FreshnessReport {
        mode,
        stability: check_stability(&backlogs, 0.05),
        constraint_met: freshness.rate() < 0.05,
        queue: queue_series,
        virtual_queue: z_series,
        mean_cost: cost_sum / horizon,
        mean_queue: queue_sum / horizon,
        served_cache,
        served_mbs,
        mean_served_age: if total_served == 0.0 {
            0.0
        } else {
            age_weighted / total_served
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> FreshnessScenario {
        FreshnessScenario::default()
    }

    #[test]
    fn adaptive_controller_meets_age_target() {
        let s = scenario();
        // The cache cycle averages age 4.5 > target 3, so cache-only cannot
        // satisfy the requirement; the adaptive controller must mix MBS
        // fetches until the served-age average is at or under target.
        let report = run_freshness_service(&s, SourcingMode::Adaptive).unwrap();
        assert!(report.constraint_met, "virtual queue rate not vanishing");
        assert!(
            report.mean_served_age <= s.age_target + 0.25,
            "mean served age {} exceeds target {}",
            report.mean_served_age,
            s.age_target
        );
        assert_eq!(report.stability, StabilityVerdict::Stable);
        assert!(report.mbs_fraction() > 0.0, "must use some MBS fetches");
    }

    #[test]
    fn cache_only_violates_the_target() {
        let s = scenario();
        let report = run_freshness_service(&s, SourcingMode::CacheOnly).unwrap();
        assert!(
            report.mean_served_age > s.age_target,
            "cache-only mean age {} should exceed target {}",
            report.mean_served_age,
            s.age_target
        );
        assert!(!report.constraint_met);
        assert_eq!(report.mbs_fraction(), 0.0);
    }

    #[test]
    fn mbs_only_is_fresh_but_expensive() {
        let s = scenario();
        let adaptive = run_freshness_service(&s, SourcingMode::Adaptive).unwrap();
        let mbs = run_freshness_service(&s, SourcingMode::MbsOnly).unwrap();
        assert!((mbs.mean_served_age - 1.0).abs() < 1e-9);
        assert!(
            mbs.mean_cost >= adaptive.mean_cost,
            "mbs-only {} should cost at least adaptive {}",
            mbs.mean_cost,
            adaptive.mean_cost
        );
        assert_eq!(mbs.mbs_fraction(), 1.0);
    }

    #[test]
    fn freshness_premium_ordering() {
        // cache-only <= adaptive <= mbs-only on cost: freshness is paid for.
        let s = scenario();
        let cache = run_freshness_service(&s, SourcingMode::CacheOnly).unwrap();
        let adaptive = run_freshness_service(&s, SourcingMode::Adaptive).unwrap();
        let mbs = run_freshness_service(&s, SourcingMode::MbsOnly).unwrap();
        assert!(cache.mean_cost <= adaptive.mean_cost + 1e-9);
        assert!(adaptive.mean_cost <= mbs.mean_cost + 1e-9);
    }

    #[test]
    fn loose_target_needs_no_mbs() {
        let s = FreshnessScenario {
            age_target: 10.0, // above the worst cache age (period 8)
            ..scenario()
        };
        let report = run_freshness_service(&s, SourcingMode::Adaptive).unwrap();
        assert!(report.constraint_met);
        assert!(
            report.mbs_fraction() < 0.05,
            "no reason to pay the surcharge: {}",
            report.mbs_fraction()
        );
    }

    #[test]
    fn accounting_adds_up() {
        let s = scenario();
        let report = run_freshness_service(&s, SourcingMode::Adaptive).unwrap();
        let total = report.served_cache + report.served_mbs;
        // Everything served came out of the arrivals.
        assert!(total > 0.0);
        assert!(total <= s.arrival_rate * s.horizon as f64 * 1.2);
        assert_eq!(report.queue.len(), s.horizon);
        assert_eq!(report.virtual_queue.len(), s.horizon);
    }

    #[test]
    fn validation() {
        let mut s = scenario();
        s.age_target = 0.5;
        assert!(run_freshness_service(&s, SourcingMode::Adaptive).is_err());
        let mut s = scenario();
        s.cache_refresh_period = 0;
        assert!(run_freshness_service(&s, SourcingMode::Adaptive).is_err());
        let mut s = scenario();
        s.mbs_surcharge = -1.0;
        assert!(run_freshness_service(&s, SourcingMode::Adaptive).is_err());
        assert_eq!(scenario().mean_cache_age(), 4.5);
        assert_eq!(SourcingMode::Adaptive.label(), "adaptive");
    }
}
