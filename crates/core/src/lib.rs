//! # aoi-cache — AoI-aware Markov decision policies for caching
//!
//! Reproduction of *AoI-Aware Markov Decision Policies for Caching*
//! (S. Park, S. Jung, M. Choi, J. Kim — ICDCS 2022, arXiv:2204.13850): a
//! two-stage scheme for cache-assisted connected vehicles.
//!
//! * **Stage 1 — cache management (MDP).** The macro base station decides
//!   each slot which content of each road-side unit to refresh, maximizing
//!   `U(t) = w · Σ (A^max/A)·p − Σ C` (Eqs. 1–3). The per-RSU problem is the
//!   exact finite MDP [`RsuCacheMdp`]; [`CachePolicyKind`] offers the solved
//!   policy (value/policy iteration, Q-learning) plus myopic/index/
//!   threshold/periodic/random/never baselines.
//! * **Stage 2 — content service (Lyapunov).** Each RSU drains its request
//!   queue with the drift-plus-penalty rule
//!   `α* = argmin V·C(α) − Q[t]·b(α)` (Eq. 5); [`ServicePolicyKind`] offers
//!   the rule plus latency-greedy / cost-greedy / duty-cycle baselines.
//!
//! Three simulators regenerate the paper's evaluation:
//! [`CacheSimulation`] (Fig. 1a), [`run_service`]/[`compare_service`]
//! (Fig. 1b) and [`run_joint`] (both stages on the `vanet` substrate).
//! The paper's *ensemble* figures — curves averaged over many seeded
//! runs and compared across policy menus — come from the
//! [`experiment`] engine: an [`ExperimentPlan`] grid over scenarios ×
//! policies × seed replicates whose cells run concurrently on the shared
//! executor and aggregate into mean/CI summary curves. With
//! [`ExperimentPlan::artifact_dir`] a grid **persists its artifacts**:
//! cells spill their traces to disk as they run (no full trace stays
//! resident, even in [`RecordingMode::Full`]) and each group's ensemble
//! curve lands in its own [`simkit::persist`] file, re-readable
//! bit-identically.
//!
//! ## Quickstart
//!
//! ```
//! use aoi_cache::{CacheScenario, CacheSimulation, CachePolicyKind};
//!
//! // A small instance of the paper's Fig. 1a experiment.
//! let scenario = CacheScenario {
//!     n_rsus: 2,
//!     regions_per_rsu: 3,
//!     age_cap: 6,
//!     max_age_min: 3,
//!     max_age_max: 5,
//!     horizon: 200,
//!     ..CacheScenario::default()
//! };
//! let sim = CacheSimulation::new(scenario)?;
//! let report = sim.run(CachePolicyKind::ValueIteration { gamma: 0.9 })?;
//! assert!(report.final_cumulative_reward() > 0.0);
//! println!(
//!     "{}: violation rate {:.3}, {:.2} updates/slot",
//!     report.policy,
//!     report.violation_rate(),
//!     report.updates_per_slot()
//! );
//! # Ok::<(), aoi_cache::AoiCacheError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aoi;
mod cache_sim;
mod catalog;
mod engine;
mod error;
pub mod experiment;
mod freshness_service;
mod joint_sim;
mod mdp_model;
mod policy;
pub mod presets;
mod reward;
mod service;
mod service_sim;

pub use aoi::{Age, AgeVector};
pub use cache_sim::{
    run_batch, run_batch_artifacts, CacheRunReport, CacheScenario, CacheSimulation,
};
pub use catalog::{Catalog, ContentSpec};
pub use engine::{RsuCacheEngine, RsuServiceEngine};
pub use error::AoiCacheError;
pub use experiment::{
    ensemble_manifest_hash, group_curve_name, headline_channel_for, parse_cell_coords,
    write_service_artifact, write_service_artifact_with, CellId, CellOutcome, CellReport,
    EnsembleSummary, ExperimentGrid, ExperimentPlan, ExperimentReport, ResumeReport,
    DEFAULT_LEASE_TTL_MS, DEFAULT_MAX_ATTEMPTS,
};
pub use freshness_service::{
    run_freshness_service, FreshnessReport, FreshnessScenario, ServingSource, SourcingMode,
};
pub use joint_sim::{
    run_joint, run_joint_artifact, run_joint_artifact_with, run_joint_recorded, JointReport,
    JointScenario,
};
pub use mdp_model::{PopularityModel, RsuCacheMdp};
pub use policy::{
    AgeThresholdPolicy, CacheDecisionContext, CachePolicyKind, CacheUpdatePolicy, CompiledRsuMdp,
    IndexPolicy, MyopicPolicy, NeverPolicy, PeriodicPolicy, RandomPolicy, RsuSpec, SolvedMdpPolicy,
};
pub use reward::RewardModel;
pub use service::{
    AlwaysServePolicy, CostGreedyPolicy, LyapunovServicePolicy, PeriodicServePolicy,
    ServiceDecisionContext, ServiceLevel, ServicePolicy, ServicePolicyKind,
};
pub use service_sim::{
    compare_service, run_service, run_service_with, ServiceRunReport, ServiceScenario,
};
// Trace-retention and artifact vocabulary, re-exported so simulator
// callers need not depend on simkit directly.
pub use simkit::persist;
pub use simkit::persist::Compression;
pub use simkit::{RecordingMode, Summary, TraceRecorder, TraceSink};
