//! Stage-1 simulator: AoI-aware cache management (the paper's Fig. 1a).
//!
//! `N_R` RSUs each cache `L′` contents; every slot the MBS (via a
//! [`CacheUpdatePolicy`] per RSU) decides which content, if any, to refresh.
//! The simulator records the post-action AoI trace of every content, the
//! per-slot Eq. 1 reward, and the cumulative reward curve the paper plots.

use crate::aoi::{Age, AgeVector};
use crate::catalog::Catalog;
use crate::engine::RsuCacheEngine;
use crate::policy::{
    CacheDecisionContext, CachePolicyKind, CacheUpdatePolicy, CompiledRsuMdp, RsuSpec,
};
use crate::AoiCacheError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simkit::persist::{
    self, ArtifactKind, ArtifactWriter, Compression, Manifest, SharedArtifactWriter,
};
use simkit::{
    executor, RecordingMode, SeedSequence, SlotClock, Summary, TimeSeries, TraceRecorder,
};
use std::path::Path;
use vanet::Zipf;

/// Configuration of a stage-1 cache-management experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheScenario {
    /// Number of RSUs `N_R`.
    pub n_rsus: usize,
    /// Contents cached per RSU `L′`.
    pub regions_per_rsu: usize,
    /// Age cap `A_cap` of the MDP state space (must be ≥ `max_age_max`).
    pub age_cap: u32,
    /// Lower bound of the per-content freshness limit `A^max_h`.
    pub max_age_min: u32,
    /// Upper bound of the per-content freshness limit `A^max_h`.
    pub max_age_max: u32,
    /// The Eq. 1 AoI weight `w`.
    pub weight: f64,
    /// Per-update MBS→RSU communication cost.
    pub update_cost: f64,
    /// Zipf exponent of the static per-RSU content popularity.
    pub zipf_exponent: f64,
    /// Simulation length in slots (the paper runs 1000).
    pub horizon: usize,
    /// Root seed; everything (catalog, initial ages, policy learning, run)
    /// derives from it.
    pub seed: u64,
}

impl Default for CacheScenario {
    /// The paper's Fig. 1a setup: 4 RSUs × 5 contents = 20 contents managed
    /// by the MBS, 1000 slots, randomized per-content `A^max`.
    fn default() -> Self {
        CacheScenario {
            n_rsus: 4,
            regions_per_rsu: 5,
            age_cap: 9,
            max_age_min: 4,
            max_age_max: 8,
            // The cost is calibrated so that refreshing even the least
            // popular content near its limit is marginally profitable —
            // matching the paper's observation that "each content is updated
            // before the AoI value exceeds the maximum".
            weight: 1.0,
            update_cost: 0.25,
            zipf_exponent: 0.8,
            horizon: 1000,
            seed: 7,
        }
    }
}

impl CacheScenario {
    /// Validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] /
    /// [`AoiCacheError::BadScenario`] for inconsistent settings.
    pub fn validate(&self) -> Result<(), AoiCacheError> {
        if self.n_rsus == 0 || self.regions_per_rsu == 0 {
            return Err(AoiCacheError::BadParameter {
                what: "n_rsus/regions_per_rsu",
                valid: ">= 1",
            });
        }
        if self.max_age_min == 0 || self.max_age_max < self.max_age_min {
            return Err(AoiCacheError::BadParameter {
                what: "max-age bounds",
                valid: "1 <= min <= max",
            });
        }
        if self.age_cap < self.max_age_max {
            return Err(AoiCacheError::BadScenario {
                why: "age cap must be at least the largest max age",
            });
        }
        if self.horizon == 0 {
            return Err(AoiCacheError::BadParameter {
                what: "horizon",
                valid: ">= 1",
            });
        }
        Ok(())
    }

    /// Total number of contents `L = N_R · L′`.
    pub fn n_contents(&self) -> usize {
        self.n_rsus * self.regions_per_rsu
    }
}

/// A fully instantiated stage-1 experiment: catalog, per-RSU specs and
/// initial ages, all derived deterministically from the scenario seed so
/// that every policy faces the identical problem.
///
/// Each RSU's exact MDP is compiled into its CSR solver kernel at most
/// once — lazily, on the first run of an MDP-based policy kind — and then
/// shared by every subsequent [`run`](CacheSimulation::run): comparing five
/// MDP policy kinds against one simulation enumerates each model a single
/// time, while baseline-only experiments never build the models at all.
#[derive(Debug, Clone)]
pub struct CacheSimulation {
    scenario: CacheScenario,
    catalog: Catalog,
    specs: Vec<RsuSpec>,
    compiled: std::sync::OnceLock<Vec<CompiledRsuMdp>>,
    initial_ages: Vec<AgeVector>,
    recording: RecordingMode,
}

impl CacheSimulation {
    /// Instantiates the experiment (draws the catalog, popularity and
    /// initial ages from the scenario seed).
    ///
    /// # Errors
    ///
    /// Propagates scenario validation errors.
    pub fn new(scenario: CacheScenario) -> Result<Self, AoiCacheError> {
        scenario.validate()?;
        let mut seeds = SeedSequence::new(scenario.seed);
        let mut rng = seeds.rng("catalog");
        let catalog = Catalog::random(
            scenario.n_contents(),
            scenario.max_age_min,
            scenario.max_age_max,
            &mut rng,
        )?;
        // lint:allow(panic-hygiene): Scenario::validate already rejected a zero cap.
        let cap = Age::new(scenario.age_cap).expect("validated >= 1");

        // Popularity: Zipf weights with a per-RSU random rank permutation so
        // the hot content is not always local index 0.
        let zipf = Zipf::new(scenario.regions_per_rsu, scenario.zipf_exponent)
            .map_err(AoiCacheError::from)?;
        let base_pmf = zipf.pmf();
        let mut pop_rng = seeds.rng("popularity");
        let mut init_rng = seeds.rng("init-ages");

        let mut specs = Vec::with_capacity(scenario.n_rsus);
        let mut initial_ages = Vec::with_capacity(scenario.n_rsus);
        for k in 0..scenario.n_rsus {
            let lo = k * scenario.regions_per_rsu;
            let hi = lo + scenario.regions_per_rsu;
            // Random permutation of the Zipf ranks (Fisher–Yates).
            let mut popularity = base_pmf.clone();
            for i in (1..popularity.len()).rev() {
                let j = pop_rng.gen_range(0..=i);
                popularity.swap(i, j);
            }
            specs.push(RsuSpec {
                max_ages: catalog.max_ages(lo..hi),
                popularity,
                age_cap: cap,
                weight: scenario.weight,
                update_cost: scenario.update_cost,
            });
            // Paper: initial AoI values are random.
            let ages: Vec<Age> = (0..scenario.regions_per_rsu)
                // lint:allow(panic-hygiene): gen_range(1..=cap) draws are >= 1.
                .map(|_| Age::new(init_rng.gen_range(1..=scenario.age_cap)).expect(">= 1"))
                .collect();
            initial_ages.push(AgeVector::from_ages(ages, cap)?);
        }
        Ok(CacheSimulation {
            scenario,
            catalog,
            specs,
            compiled: std::sync::OnceLock::new(),
            initial_ages,
            recording: RecordingMode::Full,
        })
    }

    /// The scenario this experiment was built from.
    pub fn scenario(&self) -> &CacheScenario {
        &self.scenario
    }

    /// How much of the per-content AoI traces runs of this experiment
    /// retain (default: [`RecordingMode::Full`]).
    pub fn recording(&self) -> RecordingMode {
        self.recording
    }

    /// Sets the AoI-trace retention policy of subsequent runs.
    ///
    /// The retention policy is a *measurement* knob, not part of the
    /// experiment identity: every scalar statistic, the per-slot reward
    /// series and the cumulative-reward curve are identical in every mode —
    /// only how much of the `O(horizon × contents)` per-content trace data
    /// is kept changes ([`RecordingMode::SummaryOnly`] keeps none, shrinking
    /// a run's trace memory to O(contents)).
    pub fn set_recording(&mut self, mode: RecordingMode) {
        self.recording = mode;
    }

    /// Builder-style [`set_recording`](CacheSimulation::set_recording).
    #[must_use]
    pub fn with_recording(mut self, mode: RecordingMode) -> Self {
        self.recording = mode;
        self
    }

    /// The drawn content catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The per-RSU problem specs (inputs to policy construction).
    pub fn specs(&self) -> &[RsuSpec] {
        &self.specs
    }

    /// The per-RSU compiled MDPs shared by every run of this experiment,
    /// built (and cached) on first use. The per-RSU compiles are
    /// independent and deterministic, so they fan out across the shared
    /// executor — one job per RSU.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and compilation errors.
    pub fn compiled(&self) -> Result<&[CompiledRsuMdp], AoiCacheError> {
        if self.compiled.get().is_none() {
            let workers = executor::worker_count(self.specs.len(), true, 1);
            let built = executor::parallel_map(workers, &self.specs, |_, spec| {
                CompiledRsuMdp::from_spec(spec)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
            // A concurrent caller may have won the race; either value is
            // identical (deterministic construction), so the loser is
            // simply dropped.
            let _ = self.compiled.set(built);
        }
        self.compiled
            .get()
            .map(Vec::as_slice)
            .ok_or(AoiCacheError::Internal {
                what: "compiled kernels missing right after initialization",
            })
    }

    /// Builds one policy of the given kind per RSU (solving on the shared,
    /// lazily compiled kernels for the MDP-based kinds) and runs the
    /// experiment. This is exactly the cell body a grid
    /// [`ExperimentPlan`](crate::ExperimentPlan) executes, so a single run
    /// and the corresponding grid cell produce equal reports.
    ///
    /// Each RSU's policy is built from its own deterministic RNG stream
    /// (derived up front, in RSU order), so the per-RSU solves fan out
    /// across the shared executor without changing results.
    ///
    /// # Errors
    ///
    /// Propagates policy-construction errors.
    pub fn run(&self, kind: CachePolicyKind) -> Result<CacheRunReport, AoiCacheError> {
        let policies = self.build_policies(kind)?;
        self.run_with(policies, kind.label().to_string())
    }

    /// [`run`](CacheSimulation::run), but **spilling** every retained
    /// trace sample to the artifact file at `path` slot by slot instead of
    /// holding it in memory: the returned report's
    /// [`aoi_traces`](CacheRunReport::aoi_traces) are empty (the samples
    /// live on disk) while every other field — summaries, reward curves,
    /// scalar statistics — is identical to an in-memory run's. Re-reading
    /// the artifact ([`simkit::persist::read_artifact`]) reconstructs the
    /// traces bit-identically to what an in-memory run would have
    /// retained; the artifact also carries the reward and
    /// cumulative-reward series, so it is self-contained.
    ///
    /// # Errors
    ///
    /// Propagates policy-construction errors and artifact write failures
    /// ([`AoiCacheError::Persist`]).
    pub fn run_artifact(
        &self,
        kind: CachePolicyKind,
        path: &Path,
    ) -> Result<CacheRunReport, AoiCacheError> {
        self.run_artifact_with(kind, path, Compression::None)
    }

    /// [`run_artifact`](CacheSimulation::run_artifact) under an explicit
    /// artifact encoding. With [`Compression::Deflate`] the samples stream
    /// through the codec of [`simkit::persist::compress`] (the caller
    /// picks the path — conventionally with the `.z` suffix, see
    /// [`Compression::apply_to`]); the per-sample write path stays
    /// allocation-free and [`simkit::persist::read_artifact`] reads both
    /// encodings transparently.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_artifact`](CacheSimulation::run_artifact).
    pub fn run_artifact_with(
        &self,
        kind: CachePolicyKind,
        path: &Path,
        compression: Compression,
    ) -> Result<CacheRunReport, AoiCacheError> {
        let policies = self.build_policies(kind)?;
        let manifest = Manifest {
            artifact: ArtifactKind::Trace,
            scenario: "cache".to_string(),
            policy: kind.label().to_string(),
            seed: Some(self.scenario.seed),
            recording: self.recording,
            config_hash: persist::config_hash(&self.scenario),
        };
        let writer = ArtifactWriter::create_with(path, &manifest, compression)
            .map_err(AoiCacheError::from)?
            .shared();
        let report = self.run_with_sink(policies, kind.label().to_string(), Some(&writer))?;
        ArtifactWriter::finish_shared(writer).map_err(AoiCacheError::from)?;
        Ok(report)
    }

    /// The per-RSU initial AoI vectors drawn from the scenario seed (the
    /// state every run — simulated or served — starts from).
    pub fn initial_ages(&self) -> &[AgeVector] {
        &self.initial_ages
    }

    /// Builds one policy of `kind` per RSU from per-RSU deterministic RNG
    /// streams (solving on the shared compiled kernels for MDP kinds).
    /// The same policy tables drive simulator runs and the online
    /// `aoi-serve` engine.
    ///
    /// # Errors
    ///
    /// Propagates policy-construction errors.
    pub fn build_policies(
        &self,
        kind: CachePolicyKind,
    ) -> Result<Vec<Box<dyn CacheUpdatePolicy>>, AoiCacheError> {
        let compiled = if kind.uses_mdp() {
            Some(self.compiled()?)
        } else {
            None
        };
        let mut seeds = SeedSequence::new(self.scenario.seed);
        let _ = seeds.rng("catalog");
        let _ = seeds.rng("popularity");
        let _ = seeds.rng("init-ages");
        let build_seeds: Vec<u64> = (0..self.specs.len())
            .map(|_| seeds.derive("policy-build"))
            .collect();
        let workers = executor::worker_count(self.specs.len(), kind.uses_mdp(), 1);
        executor::parallel_map(workers, &build_seeds, |k, seed| {
            let mut rng = StdRng::seed_from_u64(*seed);
            kind.build_with(compiled.map(|c| &c[k]), &mut rng)
        })
        .into_iter()
        .collect::<Result<_, _>>()
    }

    /// Builds the per-RSU clock-agnostic stage-1 cores for `kind`: one
    /// [`RsuCacheEngine`] per RSU, loaded with this experiment's solved
    /// policy table, reward model, freshness limits and seed-derived
    /// initial ages. [`run`](CacheSimulation::run) drives exactly these
    /// cores through its slot loop; the online `aoi-serve` layer drives
    /// the same cores from an external request stream.
    ///
    /// # Errors
    ///
    /// Propagates policy-construction errors.
    pub fn cache_engines(
        &self,
        kind: CachePolicyKind,
    ) -> Result<Vec<RsuCacheEngine>, AoiCacheError> {
        let policies = self.build_policies(kind)?;
        self.assemble_engines(policies)
    }

    /// Wraps caller-supplied policies into per-RSU engine cores (the
    /// shared assembly step of [`cache_engines`](Self::cache_engines) and
    /// every run entry point).
    fn assemble_engines(
        &self,
        policies: Vec<Box<dyn CacheUpdatePolicy>>,
    ) -> Result<Vec<RsuCacheEngine>, AoiCacheError> {
        if policies.len() != self.specs.len() {
            return Err(AoiCacheError::BadParameter {
                what: "policies",
                valid: "one per RSU",
            });
        }
        let mut engines = Vec::with_capacity(self.specs.len());
        for (k, policy) in policies.into_iter().enumerate() {
            let spec = &self.specs[k];
            engines.push(RsuCacheEngine::new(
                policy,
                spec.reward_model()?,
                self.initial_ages[k].clone(),
                spec.max_ages.clone(),
                spec.weight,
                spec.update_cost,
            )?);
        }
        Ok(engines)
    }

    /// Runs the experiment with caller-supplied per-RSU policies.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] if the policy count does not
    /// match the RSU count.
    pub fn run_with(
        &self,
        policies: Vec<Box<dyn CacheUpdatePolicy>>,
        label: String,
    ) -> Result<CacheRunReport, AoiCacheError> {
        self.run_with_sink(policies, label, None)
    }

    /// The shared run body: an in-memory run when `artifact` is `None`,
    /// a spilling run streaming into the artifact's channels otherwise.
    /// Exactly `CacheRunState::new` + `horizon ×` step + finish — the same
    /// machine the lockstep batch engine ([`run_batch`]) interleaves.
    fn run_with_sink(
        &self,
        policies: Vec<Box<dyn CacheUpdatePolicy>>,
        label: String,
        artifact: Option<&SharedArtifactWriter>,
    ) -> Result<CacheRunReport, AoiCacheError> {
        let mut state = CacheRunState::new(self, policies, label, artifact)?;
        for _ in 0..self.scenario.horizon {
            state.step()?;
        }
        state.finish()
    }
}

/// The in-flight state of one cache run, advanced one slot at a time.
///
/// [`CacheSimulation::run_with`] is `new` + `horizon ×` [`step`] +
/// [`finish`]; the batch engine ([`run_batch`]) instead interleaves the
/// `step` calls of many replicate states slot by slot. A state only ever
/// touches its own fields — its own RNG stream, ages, recorders and
/// accumulators — so *any* interleaving across states produces reports
/// (and, in artifact mode, artifact bytes) identical to running each
/// replicate alone.
///
/// [`step`]: CacheRunState::step
/// [`finish`]: CacheRunState::finish
struct CacheRunState<'a> {
    sim: &'a CacheSimulation,
    engines: Vec<RsuCacheEngine>,
    label: String,
    artifact: Option<&'a SharedArtifactWriter>,
    rng: StdRng,
    clock: SlotClock,
    aoi_recorders: Vec<TraceRecorder>,
    reward_series: TimeSeries,
    updates: u64,
    violation_content_slots: u64,
    aoi_ratio_sum: f64,
    utility_sum: f64,
    cost_sum: f64,
}

impl<'a> CacheRunState<'a> {
    /// Allocates everything the slot loop touches up front (the recorders
    /// pre-size their retained buffers to the exact retained length, or
    /// register their artifact channel); [`step`](CacheRunState::step)
    /// itself performs zero heap allocation per slot — see
    /// `core/tests/alloc_free.rs`, which covers the spilling and batched
    /// paths too.
    fn new(
        sim: &'a CacheSimulation,
        policies: Vec<Box<dyn CacheUpdatePolicy>>,
        label: String,
        artifact: Option<&'a SharedArtifactWriter>,
    ) -> Result<Self, AoiCacheError> {
        if policies.len() != sim.specs.len() {
            return Err(AoiCacheError::BadParameter {
                what: "policies",
                valid: "one per RSU",
            });
        }
        let mut seeds = SeedSequence::new(sim.scenario.seed);
        let rng = seeds.rng("run");
        let n_rsus = sim.scenario.n_rsus;
        let per_rsu = sim.scenario.regions_per_rsu;
        let horizon = sim.scenario.horizon;
        let engines = sim.assemble_engines(policies)?;
        let mut aoi_recorders: Vec<TraceRecorder> = Vec::with_capacity(n_rsus * per_rsu);
        for k in 0..n_rsus {
            for h in 0..per_rsu {
                let name = format!("rsu{k}/content{h}");
                aoi_recorders.push(match artifact {
                    Some(writer) => TraceRecorder::to_artifact(name, sim.recording, writer)?,
                    None => TraceRecorder::new(name, sim.recording, horizon),
                });
            }
        }
        Ok(CacheRunState {
            sim,
            engines,
            label,
            artifact,
            rng,
            clock: SlotClock::new(),
            aoi_recorders,
            reward_series: TimeSeries::with_capacity("reward", horizon),
            updates: 0,
            violation_content_slots: 0,
            aoi_ratio_sum: 0.0,
            utility_sum: 0.0,
            cost_sum: 0.0,
        })
    }

    /// Advances the run by one slot: per-RSU decisions, refreshes, Eq. 1
    /// reward accounting, per-content recording, and aging — each RSU's
    /// state transition delegated to its [`RsuCacheEngine`] core, in the
    /// exact legacy statement order (bit-identity is pinned by
    /// `core/tests/engine_identity.rs`).
    fn step(&mut self) -> Result<(), AoiCacheError> {
        let n_rsus = self.sim.scenario.n_rsus;
        let per_rsu = self.sim.scenario.regions_per_rsu;
        let now = self.clock.now();
        let mut slot_reward = 0.0;
        for k in 0..n_rsus {
            let spec = &self.sim.specs[k];
            let engine = &mut self.engines[k];
            let decision = engine.decide_static(now, &spec.popularity, &mut self.rng);
            if let Some(h) = decision {
                engine.apply_refresh(h)?;
                self.updates += 1;
            }
            // Post-action bookkeeping.
            let updated = decision.is_some();
            let utility = engine.aoi_utility(&spec.popularity);
            let cost = engine.action_cost(updated);
            slot_reward += spec.weight * utility - cost;
            self.utility_sum += spec.weight * utility;
            self.cost_sum += cost;
            for h in 0..per_rsu {
                let age = engine.age(h);
                let max_age = spec.max_ages[h];
                self.aoi_recorders[k * per_rsu + h].record(now, f64::from(age.get()));
                self.aoi_ratio_sum += age.ratio_to(max_age);
                if age.exceeds(max_age) {
                    self.violation_content_slots += 1;
                }
            }
        }
        self.reward_series.push(now, slot_reward);
        for engine in &mut self.engines {
            engine.advance();
        }
        self.clock.tick();
        Ok(())
    }

    /// Drains the recorders into the run report (and, in artifact mode,
    /// appends the headline curves so the artifact is self-contained).
    fn finish(mut self) -> Result<CacheRunReport, AoiCacheError> {
        let n_rsus = self.sim.scenario.n_rsus;
        let per_rsu = self.sim.scenario.regions_per_rsu;
        let horizon = self.sim.scenario.horizon;
        let mut aoi_traces = Vec::with_capacity(self.aoi_recorders.len());
        let mut aoi_summaries = Vec::with_capacity(self.aoi_recorders.len());
        for recorder in self.aoi_recorders.drain(..) {
            let (series, summary) = recorder.into_parts();
            aoi_traces.push(series);
            aoi_summaries.push(summary);
        }
        let content_slots = (horizon * n_rsus * per_rsu) as u64;
        let cumulative_reward = self.reward_series.cumulative();
        if let Some(writer) = self.artifact {
            // The headline curves stay in the report either way (they are
            // O(horizon)); writing them too makes the artifact
            // self-contained.
            let mut writer = writer.borrow_mut();
            writer.series(&self.reward_series)?;
            writer.series(&cumulative_reward)?;
        }
        Ok(CacheRunReport {
            policy: self.label,
            recording: self.sim.recording,
            aoi_traces,
            aoi_summaries,
            cumulative_reward,
            reward: self.reward_series,
            updates: self.updates,
            violation_content_slots: self.violation_content_slots,
            content_slots,
            mean_aoi_ratio: self.aoi_ratio_sum / content_slots as f64,
            mean_utility: self.utility_sum / horizon as f64,
            mean_cost: self.cost_sum / horizon as f64,
            horizon: horizon as u64,
            n_rsus,
            regions_per_rsu: per_rsu,
        })
    }
}

/// Runs `sims.len()` independent replicates of one policy kind **in
/// lockstep**: all replicates advance through slot `t` before any enters
/// slot `t + 1`. Reports are bit-identical to calling
/// [`CacheSimulation::run`] on each simulation alone, for every batch
/// size — each replicate derives all randomness from its own scenario
/// seed (one [`simkit::rng_lanes`] stream per replicate), so lockstep
/// only changes *when* each replicate's work happens, never what it
/// computes.
///
/// When every simulation records [`RecordingMode::SummaryOnly`] and the
/// batch shares one scenario shape (RSUs, contents per RSU, horizon, age
/// cap — the invariant of seed-replicate grids), the batch runs on a
/// structure-of-arrays fast path: per-replicate age/statistics state is
/// laid out replicate-contiguous so the hot per-slot division chains
/// (hyperbolic utilities, AoI ratios, Welford mean updates) vectorize
/// across replicate lanes. The lane arithmetic performs the exact
/// per-replicate operations in the exact serial order, so the fast path is
/// bit-identical too (`core/tests/batch_identity.rs` proves both paths).
///
/// # Errors
///
/// Propagates the first policy-construction or simulation error; the
/// whole batch is abandoned on error.
pub fn run_batch(
    sims: &[&CacheSimulation],
    kind: CachePolicyKind,
) -> Result<Vec<CacheRunReport>, AoiCacheError> {
    if sims.is_empty() {
        return Ok(Vec::new());
    }
    let policies = sims
        .iter()
        .map(|sim| sim.build_policies(kind))
        .collect::<Result<Vec<_>, _>>()?;
    if summary_lanes_eligible(sims) {
        return run_batch_summary_lanes(sims, policies, kind);
    }
    let artifacts = vec![None; sims.len()];
    run_batch_interleaved(sims, policies, kind.label(), &artifacts)
}

/// [`run_batch`], but **spilling** each replicate's retained traces into
/// its own artifact file (`paths[i]` for `sims[i]`), exactly like
/// [`CacheSimulation::run_artifact_with`] would. Artifact bytes are
/// identical to serial runs for every batch size: each replicate owns its
/// writer, and its channel declarations, samples and headline curves are
/// produced in the same per-replicate order lockstep or not.
///
/// # Errors
///
/// Propagates policy-construction errors and artifact write failures; the
/// whole batch is abandoned on the first error.
pub fn run_batch_artifacts(
    sims: &[&CacheSimulation],
    kind: CachePolicyKind,
    paths: &[std::path::PathBuf],
    compression: Compression,
) -> Result<Vec<CacheRunReport>, AoiCacheError> {
    if paths.len() != sims.len() {
        return Err(AoiCacheError::BadParameter {
            what: "artifact paths",
            valid: "one per simulation",
        });
    }
    let policies = sims
        .iter()
        .map(|sim| sim.build_policies(kind))
        .collect::<Result<Vec<_>, _>>()?;
    let writers = sims
        .iter()
        .zip(paths)
        .map(|(sim, path)| {
            let manifest = Manifest {
                artifact: ArtifactKind::Trace,
                scenario: "cache".to_string(),
                policy: kind.label().to_string(),
                seed: Some(sim.scenario.seed),
                recording: sim.recording,
                config_hash: persist::config_hash(&sim.scenario),
            };
            ArtifactWriter::create_with(path, &manifest, compression).map(ArtifactWriter::shared)
        })
        .collect::<Result<Vec<_>, _>>()
        .map_err(AoiCacheError::from)?;
    let artifacts: Vec<Option<&SharedArtifactWriter>> = writers.iter().map(Some).collect();
    let reports = run_batch_interleaved(sims, policies, kind.label(), &artifacts)?;
    for writer in writers {
        ArtifactWriter::finish_shared(writer).map_err(AoiCacheError::from)?;
    }
    Ok(reports)
}

/// Whether a batch can take the structure-of-arrays summary fast path:
/// summary-only recording everywhere and one shared scenario shape. Seed
/// replicates of a grid cell always qualify; heterogeneous batches fall
/// back to the (equally exact) interleaved state machine.
fn summary_lanes_eligible(sims: &[&CacheSimulation]) -> bool {
    let first = sims[0].scenario;
    sims.iter().all(|sim| {
        sim.recording == RecordingMode::SummaryOnly
            && sim.scenario.n_rsus == first.n_rsus
            && sim.scenario.regions_per_rsu == first.regions_per_rsu
            && sim.scenario.horizon == first.horizon
            && sim.scenario.age_cap == first.age_cap
    })
}

/// How the summary fast path runs its decision phase: the data-parallel
/// policy kinds decide straight off the age plane (or off nothing at
/// all), everything else goes through the boxed policy against the
/// canonical per-replicate ages.
#[derive(Clone, Copy)]
enum LaneDecider {
    /// `NeverPolicy`: no decisions, no age reads.
    Never,
    /// `RandomPolicy`: per-lane RNG draws in the serial order; never
    /// reads ages.
    Random {
        /// Per-slot update probability.
        probability: f64,
    },
    /// `MyopicPolicy`: the Eq. 1 gain argmax, vectorized across lanes
    /// with the exact serial operation order.
    Myopic,
    /// Any other kind: the boxed policy decides on the canonical ages.
    Generic,
}

/// The general lockstep engine: one [`CacheRunState`] per replicate,
/// `step` interleaved slot by slot. Handles every recording mode and
/// per-replicate artifact sinks; trivially bit-identical to serial runs
/// because each state is self-contained.
fn run_batch_interleaved(
    sims: &[&CacheSimulation],
    policies: Vec<Vec<Box<dyn CacheUpdatePolicy>>>,
    label: &str,
    artifacts: &[Option<&SharedArtifactWriter>],
) -> Result<Vec<CacheRunReport>, AoiCacheError> {
    let mut states = Vec::with_capacity(sims.len());
    for ((sim, policy_set), artifact) in sims.iter().zip(policies).zip(artifacts) {
        states.push(CacheRunState::new(
            sim,
            policy_set,
            label.to_string(),
            *artifact,
        )?);
    }
    let max_horizon = sims.iter().map(|s| s.scenario.horizon).max().unwrap_or(0);
    for slot in 0..max_horizon {
        for state in &mut states {
            if slot < state.sim.scenario.horizon {
                state.step()?;
            }
        }
    }
    states.into_iter().map(CacheRunState::finish).collect()
}

/// The structure-of-arrays lockstep fast path for summary-only batches.
///
/// Per-replicate state is split into two synchronized views: the canonical
/// per-replicate [`AgeVector`]s (what policies decide on and refreshes
/// mutate — never reimplemented) and replicate-contiguous `f64` planes
/// indexed `[(rsu · L′ + content) · lanes + replicate]` that the per-slot
/// arithmetic streams over. Each slot runs four phases:
///
/// 1. **Decide** — per replicate, in RSU order (the serial order), against
///    the replicate's own RNG lane and canonical ages;
/// 2. **Reward + statistics**, fused into one pass with the content loop
///    outer and the replicate lane inner: the Eq. 2 hyperbolic utilities
///    `Σ_h (A^max/Ã)·p` (every lane accumulates its terms in exactly the
///    serial content order while the divisions vectorize across lanes),
///    and the Welford update, AoI ratio and violation test of every
///    `(content, lane)` pair (`RunningStats::push` unrolled across lanes:
///    every sample here is finite by construction, and per-lane operation
///    order is exactly the serial push order — accumulators are mutually
///    independent, so fusing the passes reorders nothing within any one
///    of them);
/// 3. **Advance** — per-slot reward rows, canonical aging, and the vector
///    `min(age + 1, cap)` on the age plane.
///
/// Per-lane f64 division, min and comparison are bitwise equal to their
/// scalar counterparts (IEEE 754 is lane-invariant), so the whole path is
/// bit-identical to serial — no tolerance needed anywhere.
///
/// Phase 1 itself is lane-batched for the policy kinds whose decision rule
/// is data-parallel (`LaneDecider`): myopic gains vectorize across
/// replicates with the same operation order as `MyopicPolicy::decide`,
/// never/random never read ages at all — and those kinds then skip the
/// canonical [`AgeVector`] bookkeeping entirely (the plane is the only
/// age state the remaining phases touch). Every other kind decides
/// through its boxed policy against the canonical ages, exactly like the
/// interleaved engine.
fn run_batch_summary_lanes(
    sims: &[&CacheSimulation],
    mut policies: Vec<Vec<Box<dyn CacheUpdatePolicy>>>,
    kind: CachePolicyKind,
) -> Result<Vec<CacheRunReport>, AoiCacheError> {
    let label = kind.label();
    let lanes = sims.len();
    let scenario = sims[0].scenario;
    let (n_rsus, per_rsu, horizon) = (scenario.n_rsus, scenario.regions_per_rsu, scenario.horizon);
    let channels = n_rsus * per_rsu;
    let cap = f64::from(scenario.age_cap);
    for policy_set in &policies {
        if policy_set.len() != n_rsus {
            return Err(AoiCacheError::BadParameter {
                what: "policies",
                valid: "one per RSU",
            });
        }
    }

    // Canonical per-replicate state (exactly what a serial run holds).
    let roots: Vec<u64> = sims.iter().map(|s| s.scenario.seed).collect();
    let mut rngs = simkit::rng_lanes(&roots, "run");
    let mut ages: Vec<Vec<AgeVector>> = sims.iter().map(|s| s.initial_ages.clone()).collect();
    let mut reward_series: Vec<TimeSeries> = (0..lanes)
        .map(|_| TimeSeries::with_capacity("reward", horizon))
        .collect();

    let decider = match kind {
        CachePolicyKind::Never => LaneDecider::Never,
        CachePolicyKind::Random { probability } => LaneDecider::Random { probability },
        CachePolicyKind::Myopic => LaneDecider::Myopic,
        _ => LaneDecider::Generic,
    };
    let generic = matches!(decider, LaneDecider::Generic);

    // Replicate-contiguous planes mirroring the canonical ages plus the
    // per-(replicate, content) constants the inner loops read. The myopic
    // planes hold the decision rule's per-content constants: `w · p_h`
    // (the serial rule's first product, precomputed once — same two
    // factors, same rounding) and the fresh utility `A^max/1`.
    let mut age_plane = vec![0.0f64; channels * lanes];
    let mut max_plane = vec![0.0f64; channels * lanes];
    let mut pop_plane = vec![0.0f64; channels * lanes];
    let mut wp_plane = vec![0.0f64; channels * lanes];
    let mut u1_plane = vec![0.0f64; channels * lanes];
    let mut weight_rk = vec![0.0f64; n_rsus * lanes];
    let mut cost_rk = vec![0.0f64; n_rsus * lanes];
    let mut dcost_rk = vec![0.0f64; n_rsus * lanes];
    for (r, sim) in sims.iter().enumerate() {
        for (k, spec) in sim.specs.iter().enumerate() {
            // Build (and validate) the reward model exactly like a serial
            // run would; only its two scalars feed the lane loops.
            let reward = spec.reward_model()?;
            weight_rk[k * lanes + r] = reward.weight();
            cost_rk[k * lanes + r] = reward.update_cost();
            // The myopic rule reads the spec's scalars directly (what its
            // decision context carries), not the reward model's.
            dcost_rk[k * lanes + r] = spec.update_cost;
            for h in 0..per_rsu {
                let i = (k * per_rsu + h) * lanes + r;
                age_plane[i] = f64::from(ages[r][k].age(h).get());
                max_plane[i] = f64::from(spec.max_ages[h].get());
                pop_plane[i] = spec.popularity[h];
                wp_plane[i] = spec.weight * spec.popularity[h];
                u1_plane[i] = Age::ONE.utility(spec.max_ages[h]);
            }
        }
    }

    // Welford lanes (RunningStats fields, replicate-contiguous). The
    // shared sample count is implicit: every lane pushes one finite sample
    // per (content, slot), so after slot `t` every accumulator holds
    // exactly `t + 1` samples.
    let mut w_sum = vec![0.0f64; channels * lanes];
    let mut w_mean = vec![0.0f64; channels * lanes];
    let mut w_m2 = vec![0.0f64; channels * lanes];
    let mut w_min = vec![f64::INFINITY; channels * lanes];
    let mut w_max = vec![f64::NEG_INFINITY; channels * lanes];

    let mut updates = vec![0u64; lanes];
    let mut violations = vec![0u64; lanes];
    let mut ratio_sum = vec![0.0f64; lanes];
    let mut utility_sum = vec![0.0f64; lanes];
    let mut cost_sum = vec![0.0f64; lanes];
    let mut slot_reward = vec![0.0f64; lanes];
    let mut acc = vec![0.0f64; lanes];
    let mut updated = vec![false; n_rsus * lanes];
    let mut best_gain = vec![0.0f64; lanes];
    let mut best_h = vec![usize::MAX; lanes];

    let mut clock = SlotClock::new();
    for slot in 0..horizon {
        let now = clock.now();
        // Phase 1: decisions, per replicate in RSU order. Each replicate
        // consumes only its own RNG lane, in the serial (slot, rsu) order.
        match decider {
            LaneDecider::Never => updated.fill(false),
            LaneDecider::Random { probability } => {
                for (r, rng) in rngs.iter_mut().enumerate() {
                    for k in 0..n_rsus {
                        // The exact draws RandomPolicy::decide makes, in
                        // the serial per-replicate RSU order.
                        let hit = rng.gen::<f64>() < probability;
                        if hit {
                            let h = rng.gen_range(0..per_rsu);
                            age_plane[(k * per_rsu + h) * lanes + r] = 1.0;
                            updates[r] += 1;
                        }
                        updated[k * lanes + r] = hit;
                    }
                }
            }
            LaneDecider::Myopic => {
                for k in 0..n_rsus {
                    let wbase = k * lanes;
                    // MyopicPolicy takes a content only when its gain is
                    // strictly positive and beats every earlier taken
                    // gain, ties to the lowest index — starting `best`
                    // at 0.0 with a strict test encodes both conditions.
                    best_gain.fill(0.0);
                    best_h.fill(usize::MAX);
                    for h in 0..per_rsu {
                        let base = (k * per_rsu + h) * lanes;
                        let (wps, u1s, ms, xs) = (
                            &wp_plane[base..base + lanes],
                            &u1_plane[base..base + lanes],
                            &max_plane[base..base + lanes],
                            &age_plane[base..base + lanes],
                        );
                        let costs = &dcost_rk[wbase..wbase + lanes];
                        let (bg, bh) = (&mut best_gain[..lanes], &mut best_h[..lanes]);
                        for r in 0..lanes {
                            let gain = wps[r] * (u1s[r] - ms[r] / xs[r]) - costs[r];
                            if gain > bg[r] {
                                bg[r] = gain;
                                bh[r] = h;
                            }
                        }
                    }
                    for r in 0..lanes {
                        if best_h[r] == usize::MAX {
                            updated[wbase + r] = false;
                        } else {
                            age_plane[(k * per_rsu + best_h[r]) * lanes + r] = 1.0;
                            updates[r] += 1;
                            updated[wbase + r] = true;
                        }
                    }
                }
            }
            LaneDecider::Generic => {
                for (r, sim) in sims.iter().enumerate() {
                    for (k, spec) in sim.specs.iter().enumerate() {
                        let decision = {
                            let ctx = CacheDecisionContext {
                                slot: now,
                                ages: &ages[r][k],
                                max_ages: &spec.max_ages,
                                popularity: &spec.popularity,
                                weight: spec.weight,
                                update_cost: spec.update_cost,
                            };
                            policies[r][k].decide(&ctx, &mut rngs[r])
                        };
                        match decision {
                            Some(h) if h >= per_rsu => {
                                return Err(AoiCacheError::BadParameter {
                                    what: "policy decision",
                                    valid: "local content index",
                                });
                            }
                            Some(h) => {
                                ages[r][k].refresh(h);
                                age_plane[(k * per_rsu + h) * lanes + r] = 1.0;
                                updates[r] += 1;
                                updated[k * lanes + r] = true;
                            }
                            None => updated[k * lanes + r] = false,
                        }
                    }
                }
            }
        }
        // Phases 2+3 in one pass: Eq. 1 reward plus per-content statistics
        // (Welford push, AoI ratio, violation test), content outer and
        // lanes inner. Every accumulator is independent and every lane
        // consumes its samples in the serial content order, so fusing the
        // passes changes nothing about any individual accumulator's
        // floating-point op sequence.
        let count = (slot + 1) as f64;
        for k in 0..n_rsus {
            acc.fill(0.0);
            for h in 0..per_rsu {
                let base = (k * per_rsu + h) * lanes;
                let (xs, ms, ps) = (
                    &age_plane[base..base + lanes],
                    &max_plane[base..base + lanes],
                    &pop_plane[base..base + lanes],
                );
                let (sums, means, m2s) = (
                    &mut w_sum[base..base + lanes],
                    &mut w_mean[base..base + lanes],
                    &mut w_m2[base..base + lanes],
                );
                let (mins, maxs) = (
                    &mut w_min[base..base + lanes],
                    &mut w_max[base..base + lanes],
                );
                for r in 0..lanes {
                    let x = xs[r];
                    acc[r] += ms[r] / x * ps[r];
                    sums[r] += x;
                    let delta = x - means[r];
                    means[r] += delta / count;
                    m2s[r] += delta * (x - means[r]);
                    if x < mins[r] {
                        mins[r] = x;
                    }
                    if x > maxs[r] {
                        maxs[r] = x;
                    }
                    ratio_sum[r] += x / ms[r];
                    violations[r] += u64::from(x > ms[r]);
                }
            }
            let wbase = k * lanes;
            for r in 0..lanes {
                let utility = acc[r];
                let cost = if updated[wbase + r] {
                    cost_rk[wbase + r]
                } else {
                    0.0
                };
                slot_reward[r] += weight_rk[wbase + r] * utility - cost;
                utility_sum[r] += weight_rk[wbase + r] * utility;
                cost_sum[r] += cost;
            }
        }
        // Phase 4: reward rows, canonical aging, and the plane mirror of
        // `Age::aged` (`min(age + 1, cap)` is exact in f64 for ages this
        // small).
        for r in 0..lanes {
            reward_series[r].push(now, slot_reward[r]);
            slot_reward[r] = 0.0;
        }
        // The canonical ages only feed generic deciders; the lane-batched
        // kinds read ages exclusively from the plane, so the mirror can
        // go stale for them.
        if generic {
            for replicate_ages in &mut ages {
                for a in replicate_ages.iter_mut() {
                    a.advance();
                }
            }
        }
        for x in &mut age_plane {
            *x = (*x + 1.0).min(cap);
        }
        clock.tick();
    }

    let content_slots = (horizon * channels) as u64;
    let mut reports = Vec::with_capacity(lanes);
    for (r, (sim, series)) in sims.iter().zip(reward_series).enumerate() {
        let mut aoi_traces = Vec::with_capacity(channels);
        let mut aoi_summaries = Vec::with_capacity(channels);
        for k in 0..n_rsus {
            for h in 0..per_rsu {
                let i = (k * per_rsu + h) * lanes + r;
                // What a SummaryOnly TraceRecorder's into_parts returns:
                // an empty named series and the exact streamed summary.
                aoi_traces.push(TimeSeries::with_capacity(format!("rsu{k}/content{h}"), 0));
                aoi_summaries.push(Summary {
                    count: horizon as u64,
                    mean: w_mean[i],
                    std_dev: (w_m2[i] / horizon as f64).sqrt(),
                    min: Some(w_min[i]),
                    max: Some(w_max[i]),
                    sum: w_sum[i],
                });
            }
        }
        let cumulative_reward = series.cumulative();
        reports.push(CacheRunReport {
            policy: label.to_string(),
            recording: sim.recording,
            aoi_traces,
            aoi_summaries,
            cumulative_reward,
            reward: series,
            updates: updates[r],
            violation_content_slots: violations[r],
            content_slots,
            mean_aoi_ratio: ratio_sum[r] / content_slots as f64,
            mean_utility: utility_sum[r] / horizon as f64,
            mean_cost: cost_sum[r] / horizon as f64,
            horizon: horizon as u64,
            n_rsus,
            regions_per_rsu: per_rsu,
        });
    }
    Ok(reports)
}

/// Everything measured in one stage-1 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheRunReport {
    /// Label of the policy that produced this run.
    pub policy: String,
    /// How much of the per-content AoI traces this run retained.
    pub recording: RecordingMode,
    /// Post-action AoI trace per content, indexed `rsu · L′ + content` —
    /// complete under [`RecordingMode::Full`], strided under
    /// [`RecordingMode::Decimate`], empty under
    /// [`RecordingMode::SummaryOnly`].
    pub aoi_traces: Vec<TimeSeries>,
    /// Exact per-content summary statistics (Welford mean/variance and
    /// min/max over **every** post-action age, regardless of `recording`),
    /// indexed like `aoi_traces`.
    pub aoi_summaries: Vec<Summary>,
    /// Per-slot Eq. 1 reward (summed over RSUs).
    pub reward: TimeSeries,
    /// Cumulative reward curve (the paper's rising curve in Fig. 1a).
    pub cumulative_reward: TimeSeries,
    /// Total updates pushed.
    pub updates: u64,
    /// `(content, slot)` pairs whose post-action age exceeded `A^max`.
    pub violation_content_slots: u64,
    /// Total `(content, slot)` pairs observed.
    pub content_slots: u64,
    /// Mean post-action `age / A^max` over all content-slots.
    pub mean_aoi_ratio: f64,
    /// Mean per-slot weighted AoI utility (Eq. 2 × w, summed over RSUs).
    pub mean_utility: f64,
    /// Mean per-slot update cost (Eq. 3, summed over RSUs).
    pub mean_cost: f64,
    /// Slots simulated.
    pub horizon: u64,
    /// RSUs simulated.
    pub n_rsus: usize,
    /// Contents per RSU.
    pub regions_per_rsu: usize,
}

impl CacheRunReport {
    /// The AoI trace of one content.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn aoi_trace(&self, rsu: usize, content: usize) -> &TimeSeries {
        assert!(rsu < self.n_rsus && content < self.regions_per_rsu);
        &self.aoi_traces[rsu * self.regions_per_rsu + content]
    }

    /// The exact AoI summary statistics of one content (available in every
    /// [`RecordingMode`], including `SummaryOnly`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn aoi_summary(&self, rsu: usize, content: usize) -> Summary {
        assert!(rsu < self.n_rsus && content < self.regions_per_rsu);
        self.aoi_summaries[rsu * self.regions_per_rsu + content]
    }

    /// Fraction of content-slots in violation of their freshness limit.
    pub fn violation_rate(&self) -> f64 {
        self.violation_content_slots as f64 / self.content_slots as f64
    }

    /// Mean updates pushed per slot (across all RSUs).
    pub fn updates_per_slot(&self) -> f64 {
        self.updates as f64 / self.horizon as f64
    }

    /// Final value of the cumulative reward curve.
    pub fn final_cumulative_reward(&self) -> f64 {
        self.cumulative_reward.last().map_or(0.0, |p| p.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scenario small enough for exact solvers in debug builds.
    fn tiny() -> CacheScenario {
        CacheScenario {
            n_rsus: 2,
            regions_per_rsu: 3,
            age_cap: 6,
            max_age_min: 3,
            max_age_max: 5,
            weight: 1.0,
            update_cost: 0.2,
            zipf_exponent: 0.8,
            horizon: 300,
            seed: 42,
        }
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut s = tiny();
        s.age_cap = 3;
        assert!(CacheSimulation::new(s).is_err());
        let mut s = tiny();
        s.n_rsus = 0;
        assert!(CacheSimulation::new(s).is_err());
        let mut s = tiny();
        s.horizon = 0;
        assert!(CacheSimulation::new(s).is_err());
        let mut s = tiny();
        s.max_age_min = 0;
        assert!(CacheSimulation::new(s).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = CacheSimulation::new(tiny())
            .unwrap()
            .run(CachePolicyKind::Myopic)
            .unwrap();
        let b = CacheSimulation::new(tiny())
            .unwrap()
            .run(CachePolicyKind::Myopic)
            .unwrap();
        assert_eq!(a.final_cumulative_reward(), b.final_cumulative_reward());
        assert_eq!(a.updates, b.updates);
    }

    #[test]
    fn report_shapes() {
        let report = CacheSimulation::new(tiny())
            .unwrap()
            .run(CachePolicyKind::Myopic)
            .unwrap();
        assert_eq!(report.aoi_traces.len(), 6);
        assert_eq!(report.reward.len(), 300);
        assert_eq!(report.cumulative_reward.len(), 300);
        assert_eq!(report.content_slots, 300 * 6);
        let trace = report.aoi_trace(1, 2);
        assert_eq!(trace.len(), 300);
        // Post-action ages are always within [1, cap].
        for p in trace.iter() {
            assert!(p.value >= 1.0 && p.value <= 6.0);
        }
    }

    #[test]
    fn never_policy_costs_nothing_and_violates() {
        let report = CacheSimulation::new(tiny())
            .unwrap()
            .run(CachePolicyKind::Never)
            .unwrap();
        assert_eq!(report.updates, 0);
        assert_eq!(report.mean_cost, 0.0);
        // All ages saturate at the cap > max ages: violations everywhere in
        // steady state.
        assert!(report.violation_rate() > 0.5, "{}", report.violation_rate());
    }

    #[test]
    fn vi_policy_keeps_popular_contents_fresh() {
        // The optimal policy under Eq. 2's hyperbolic utility concentrates
        // updates on the popular contents (the paper's Fig. 1a accordingly
        // plots two *selected* contents of one RSU): after a warm-up, the
        // most popular content of every RSU must stay within its freshness
        // limit, tracing the sawtooth the paper shows.
        let sim = CacheSimulation::new(tiny()).unwrap();
        let report = sim
            .run(CachePolicyKind::ValueIteration { gamma: 0.9 })
            .unwrap();
        assert!(report.updates > 0);
        let warmup = 50;
        for (k, spec) in sim.specs().iter().enumerate() {
            let hot = spec
                .popularity
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(h, _)| h)
                .unwrap();
            let limit = f64::from(spec.max_ages[hot].get());
            for p in report.aoi_trace(k, hot).iter().skip(warmup) {
                assert!(
                    p.value <= limit,
                    "rsu{k} hot content {hot} violated: age {} > {limit} at {}",
                    p.value,
                    p.slot
                );
            }
        }
        // And the optimal policy must never violate *more* than never-update.
        let never = sim.run(CachePolicyKind::Never).unwrap();
        assert!(report.violation_rate() < never.violation_rate());
    }

    #[test]
    fn vi_beats_baselines_on_reward() {
        let sim = CacheSimulation::new(tiny()).unwrap();
        let vi = sim
            .run(CachePolicyKind::ValueIteration { gamma: 0.9 })
            .unwrap();
        let never = sim.run(CachePolicyKind::Never).unwrap();
        let random = sim
            .run(CachePolicyKind::Random { probability: 0.5 })
            .unwrap();
        assert!(
            vi.final_cumulative_reward() > never.final_cumulative_reward(),
            "vi {} vs never {}",
            vi.final_cumulative_reward(),
            never.final_cumulative_reward()
        );
        assert!(
            vi.final_cumulative_reward() > random.final_cumulative_reward(),
            "vi {} vs random {}",
            vi.final_cumulative_reward(),
            random.final_cumulative_reward()
        );
    }

    #[test]
    fn cumulative_reward_rises_under_vi() {
        // The paper's Fig. 1a observation: cumulative MBS reward keeps
        // rising under the proposed policy.
        let report = CacheSimulation::new(tiny())
            .unwrap()
            .run(CachePolicyKind::ValueIteration { gamma: 0.9 })
            .unwrap();
        let curve: Vec<f64> = report.cumulative_reward.values().collect();
        let quarter = curve.len() / 4;
        assert!(curve[2 * quarter] > curve[quarter]);
        assert!(curve[3 * quarter] > curve[2 * quarter]);
    }

    #[test]
    fn updates_per_slot_respects_constraint() {
        // At most one update per RSU per slot.
        let report = CacheSimulation::new(tiny())
            .unwrap()
            .run(CachePolicyKind::Periodic { period: 1 })
            .unwrap();
        assert!(report.updates_per_slot() <= 2.0 + 1e-12);
        assert!((report.updates_per_slot() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn average_reward_policy_matches_discounted_long_run() {
        // RVI solves the long-run criterion the paper actually states; its
        // realized reward must be at least the discounted policy's (up to
        // simulation noise from the shared random initial ages).
        let sim = CacheSimulation::new(tiny()).unwrap();
        let avg = sim.run(CachePolicyKind::AverageReward).unwrap();
        let vi = sim
            .run(CachePolicyKind::ValueIteration { gamma: 0.95 })
            .unwrap();
        let gap = (avg.final_cumulative_reward() - vi.final_cumulative_reward()).abs();
        assert!(
            gap / vi.final_cumulative_reward() < 0.05,
            "avg-reward {} vs discounted {}",
            avg.final_cumulative_reward(),
            vi.final_cumulative_reward()
        );
    }

    #[test]
    fn receding_horizon_approaches_vi_with_depth() {
        let sim = CacheSimulation::new(tiny()).unwrap();
        let vi = sim
            .run(CachePolicyKind::ValueIteration { gamma: 0.95 })
            .unwrap();
        let shallow = sim
            .run(CachePolicyKind::RecedingHorizon { horizon: 2 })
            .unwrap();
        let deep = sim
            .run(CachePolicyKind::RecedingHorizon { horizon: 40 })
            .unwrap();
        // Trajectory rewards are not exactly monotone in depth (different
        // tie-breaks), but both lookaheads must land within a few percent
        // of the infinite-horizon optimum, and beat a blind baseline.
        let gap_shallow = (vi.final_cumulative_reward() - shallow.final_cumulative_reward()).abs();
        let gap_deep = (vi.final_cumulative_reward() - deep.final_cumulative_reward()).abs();
        assert!(gap_shallow / vi.final_cumulative_reward() < 0.05);
        assert!(gap_deep / vi.final_cumulative_reward() < 0.05);
        let random = sim
            .run(CachePolicyKind::Random { probability: 0.5 })
            .unwrap();
        assert!(deep.final_cumulative_reward() > random.final_cumulative_reward());
    }

    #[test]
    fn sarsa_policy_is_competent() {
        let sim = CacheSimulation::new(tiny()).unwrap();
        let sarsa = sim
            .run(CachePolicyKind::Sarsa {
                gamma: 0.9,
                steps: 60_000,
            })
            .unwrap();
        let never = sim.run(CachePolicyKind::Never).unwrap();
        assert!(sarsa.final_cumulative_reward() > 1.5 * never.final_cumulative_reward());
    }

    #[test]
    fn specs_accessors() {
        let sim = CacheSimulation::new(tiny()).unwrap();
        assert_eq!(sim.specs().len(), 2);
        assert_eq!(sim.catalog().len(), 6);
        assert_eq!(sim.scenario().n_contents(), 6);
        for spec in sim.specs() {
            assert!((spec.popularity.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn baseline_runs_do_not_compile_mdps() {
        let sim = CacheSimulation::new(tiny()).unwrap();
        let _ = sim.run(CachePolicyKind::Never).unwrap();
        let _ = sim.run(CachePolicyKind::Myopic).unwrap();
        assert!(
            sim.compiled.get().is_none(),
            "baselines must not trigger MDP compilation"
        );
        let _ = sim
            .run(CachePolicyKind::ValueIteration { gamma: 0.9 })
            .unwrap();
        assert!(sim.compiled.get().is_some(), "MDP kinds compile lazily");
    }

    #[test]
    fn run_with_validates_policy_count() {
        let sim = CacheSimulation::new(tiny()).unwrap();
        let err = sim.run_with(vec![], "empty".to_string());
        assert!(err.is_err());
    }

    #[test]
    fn decimate_one_reports_equal_full() {
        let sim = CacheSimulation::new(tiny()).unwrap();
        assert_eq!(sim.recording(), RecordingMode::Full);
        let full = sim.run(CachePolicyKind::Myopic).unwrap();
        let dec = sim
            .clone()
            .with_recording(RecordingMode::Decimate(1))
            .run(CachePolicyKind::Myopic)
            .unwrap();
        // Everything except the mode tag itself must be identical.
        assert_eq!(dec.recording, RecordingMode::Decimate(1));
        let relabeled = CacheRunReport {
            recording: RecordingMode::Full,
            ..dec
        };
        assert_eq!(relabeled, full, "Decimate(1) must reproduce Full exactly");
    }

    #[test]
    fn summary_only_matches_post_hoc_summaries_of_full_traces() {
        let sim = CacheSimulation::new(tiny()).unwrap();
        let full = sim.run(CachePolicyKind::Myopic).unwrap();
        let summary = sim
            .clone()
            .with_recording(RecordingMode::SummaryOnly)
            .run(CachePolicyKind::Myopic)
            .unwrap();
        // Traces are dropped, one (empty) slot per content remains.
        assert_eq!(summary.aoi_traces.len(), 6);
        assert!(summary.aoi_traces.iter().all(|t| t.is_empty()));
        // The streamed statistics equal a post-hoc pass over the full
        // traces to well below 1e-12 (same accumulator, same sample order
        // — bitwise equal in fact).
        for (k, trace) in full.aoi_traces.iter().enumerate() {
            let post_hoc: simkit::RunningStats = trace.values().collect();
            let want = post_hoc.summary();
            let got = summary.aoi_summaries[k];
            assert_eq!(got.count, want.count, "content {k}");
            assert!((got.mean - want.mean).abs() < 1e-12, "content {k}");
            assert!((got.std_dev - want.std_dev).abs() < 1e-12, "content {k}");
            assert_eq!(got.min, want.min, "content {k}");
            assert_eq!(got.max, want.max, "content {k}");
        }
        // Every scalar statistic and the headline curves are unaffected.
        assert_eq!(summary.cumulative_reward, full.cumulative_reward);
        assert_eq!(summary.reward, full.reward);
        assert_eq!(summary.updates, full.updates);
        assert_eq!(summary.mean_aoi_ratio, full.mean_aoi_ratio);
        assert_eq!(summary.aoi_summaries, full.aoi_summaries);
    }

    #[test]
    fn decimated_traces_stride_and_keep_exact_summaries() {
        let sim = CacheSimulation::new(tiny())
            .unwrap()
            .with_recording(RecordingMode::Decimate(10));
        let report = sim.run(CachePolicyKind::Never).unwrap();
        for trace in &report.aoi_traces {
            assert_eq!(trace.len(), 30, "300 slots / 10");
        }
        for summary in &report.aoi_summaries {
            assert_eq!(summary.count, 300, "stats must see every slot");
        }
    }

    /// Seed replicates of one scenario, as the ensemble driver batches them.
    fn replicates(mode: RecordingMode, seeds: &[u64]) -> Vec<CacheSimulation> {
        seeds
            .iter()
            .map(|&seed| {
                let mut s = tiny();
                s.seed = seed;
                CacheSimulation::new(s).unwrap().with_recording(mode)
            })
            .collect()
    }

    /// The SoA fast path (summary-only seed replicates) must reproduce the
    /// serial reports bit for bit, for every batch size and for both a
    /// deterministic and an RNG-consuming policy.
    #[test]
    fn batched_summary_lanes_match_serial_bitwise() {
        for kind in [
            CachePolicyKind::Myopic,
            CachePolicyKind::Random { probability: 0.3 },
        ] {
            let sims = replicates(RecordingMode::SummaryOnly, &[42, 43, 44, 45, 46]);
            let serial: Vec<CacheRunReport> = sims.iter().map(|s| s.run(kind).unwrap()).collect();
            for batch in [1usize, 2, 5] {
                for (chunk, want) in sims.chunks(batch).zip(serial.chunks(batch)) {
                    let refs: Vec<&CacheSimulation> = chunk.iter().collect();
                    let got = run_batch(&refs, kind).unwrap();
                    assert_eq!(got, want, "{kind:?} batch {batch}");
                }
            }
        }
    }

    /// Full-trace batches take the interleaved state-machine path; it must
    /// be exactly serial too.
    #[test]
    fn batched_interleave_matches_serial_with_full_traces() {
        let sims = replicates(RecordingMode::Full, &[7, 9, 11]);
        let serial: Vec<CacheRunReport> = sims
            .iter()
            .map(|s| s.run(CachePolicyKind::Random { probability: 0.3 }).unwrap())
            .collect();
        let refs: Vec<&CacheSimulation> = sims.iter().collect();
        let got = run_batch(&refs, CachePolicyKind::Random { probability: 0.3 }).unwrap();
        assert_eq!(got, serial);
    }

    /// Heterogeneous batches (different horizons here) fall back to the
    /// interleaved path and still reproduce serial runs exactly.
    #[test]
    fn batched_mixed_shapes_fall_back_and_match_serial() {
        let mut short = tiny();
        short.horizon = 120;
        short.seed = 3;
        let sims = [
            CacheSimulation::new(tiny())
                .unwrap()
                .with_recording(RecordingMode::SummaryOnly),
            CacheSimulation::new(short)
                .unwrap()
                .with_recording(RecordingMode::SummaryOnly),
        ];
        let serial: Vec<CacheRunReport> = sims
            .iter()
            .map(|s| s.run(CachePolicyKind::Myopic).unwrap())
            .collect();
        let refs: Vec<&CacheSimulation> = sims.iter().collect();
        let got = run_batch(&refs, CachePolicyKind::Myopic).unwrap();
        assert_eq!(got, serial);
    }

    #[test]
    fn batched_empty_input_is_empty() {
        assert_eq!(run_batch(&[], CachePolicyKind::Myopic).unwrap().len(), 0);
    }

    /// Batched artifact runs must produce byte-identical files to serial
    /// artifact runs (each replicate owns its writer, so interleaving the
    /// slots cannot reorder any replicate's stream).
    #[test]
    fn batched_artifacts_are_byte_identical_to_serial() {
        let dir = std::env::temp_dir().join(format!("aoi-batch-artifacts-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sims = replicates(RecordingMode::Decimate(5), &[5, 6, 7]);
        let refs: Vec<&CacheSimulation> = sims.iter().collect();
        let batch_paths: Vec<std::path::PathBuf> = (0..sims.len())
            .map(|i| dir.join(format!("batch-{i}.trace.jsonl")))
            .collect();
        let reports = run_batch_artifacts(
            &refs,
            CachePolicyKind::Random { probability: 0.3 },
            &batch_paths,
            Compression::None,
        )
        .unwrap();
        for (i, sim) in sims.iter().enumerate() {
            let serial_path = dir.join(format!("serial-{i}.trace.jsonl"));
            let serial = sim
                .run_artifact_with(
                    CachePolicyKind::Random { probability: 0.3 },
                    &serial_path,
                    Compression::None,
                )
                .unwrap();
            assert_eq!(reports[i], serial, "report {i}");
            let batch_bytes = std::fs::read(&batch_paths[i]).unwrap();
            let serial_bytes = std::fs::read(&serial_path).unwrap();
            assert_eq!(batch_bytes, serial_bytes, "artifact bytes {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
