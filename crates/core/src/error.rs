//! Error type for the AoI-caching core.

use std::error::Error;
use std::fmt;

/// Errors produced by the AoI-caching core.
#[derive(Debug, Clone, PartialEq)]
pub enum AoiCacheError {
    /// A parameter was outside its valid range.
    BadParameter {
        /// Parameter name.
        what: &'static str,
        /// Human-readable valid range.
        valid: &'static str,
    },
    /// A scenario is internally inconsistent (e.g. max age above the cap).
    BadScenario {
        /// Human-readable description of the inconsistency.
        why: &'static str,
    },
    /// An error bubbled up from the MDP solver.
    Solver(mdp::MdpError),
    /// An error bubbled up from the Lyapunov controller.
    Controller(lyapunov::LyapunovError),
    /// An error bubbled up from the network substrate.
    Network(vanet::VanetError),
    /// An error while writing or reading a run artifact.
    Persist(simkit::persist::PersistError),
    /// An error in the lease protocol of a claim-mode campaign.
    Lease(simkit::lease::LeaseError),
    /// An internal bookkeeping invariant was broken.
    ///
    /// These replace panics on worker-executed paths: under a supervised
    /// campaign a structured error costs one cell a retry/quarantine with
    /// a precise message, where a panic would burn the cell with only a
    /// backtrace.
    Internal {
        /// Which invariant failed.
        what: &'static str,
    },
}

impl fmt::Display for AoiCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AoiCacheError::BadParameter { what, valid } => {
                write!(f, "{what} out of range (expected {valid})")
            }
            AoiCacheError::BadScenario { why } => write!(f, "inconsistent scenario: {why}"),
            AoiCacheError::Solver(e) => write!(f, "mdp solver: {e}"),
            AoiCacheError::Controller(e) => write!(f, "lyapunov controller: {e}"),
            AoiCacheError::Network(e) => write!(f, "network model: {e}"),
            AoiCacheError::Persist(e) => write!(f, "run artifact: {e}"),
            AoiCacheError::Lease(e) => write!(f, "cell lease: {e}"),
            AoiCacheError::Internal { what } => {
                write!(f, "internal invariant broken: {what}")
            }
        }
    }
}

impl Error for AoiCacheError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AoiCacheError::Solver(e) => Some(e),
            AoiCacheError::Controller(e) => Some(e),
            AoiCacheError::Network(e) => Some(e),
            AoiCacheError::Persist(e) => Some(e),
            AoiCacheError::Lease(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mdp::MdpError> for AoiCacheError {
    fn from(e: mdp::MdpError) -> Self {
        AoiCacheError::Solver(e)
    }
}

impl From<lyapunov::LyapunovError> for AoiCacheError {
    fn from(e: lyapunov::LyapunovError) -> Self {
        AoiCacheError::Controller(e)
    }
}

impl From<vanet::VanetError> for AoiCacheError {
    fn from(e: vanet::VanetError) -> Self {
        AoiCacheError::Network(e)
    }
}

impl From<simkit::persist::PersistError> for AoiCacheError {
    fn from(e: simkit::persist::PersistError) -> Self {
        AoiCacheError::Persist(e)
    }
}

impl From<simkit::lease::LeaseError> for AoiCacheError {
    fn from(e: simkit::lease::LeaseError) -> Self {
        AoiCacheError::Lease(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AoiCacheError::from(mdp::MdpError::EmptyModel);
        assert!(e.to_string().contains("mdp solver"));
        assert!(e.source().is_some());
        let e = AoiCacheError::BadScenario { why: "cap too low" };
        assert!(e.to_string().contains("cap too low"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AoiCacheError>();
    }
}
