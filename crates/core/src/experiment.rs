//! The multi-run experiment engine: grids over scenarios × policies × seed
//! replicates, executed in parallel on the shared executor.
//!
//! The paper's headline figures are *ensembles* — cumulative-reward and
//! AoI/backlog curves averaged over many seeded runs and compared across a
//! policy menu. An [`ExperimentPlan`] expresses such a grid declaratively;
//! [`ExperimentPlan::run`] expands it into cells (one `(scenario, seed,
//! policy)` triple each), runs the cells concurrently on
//! [`simkit::executor`], and aggregates each `(scenario, policy)` group's
//! replicate curves into mean/95%-CI [`CurveSummary`] bands.
//!
//! Three properties make the engine safe to scale:
//!
//! * **Work sharing** — cells of the same `(scenario, seed)` share one
//!   [`CacheSimulation`], so each RSU's exact MDP is enumerated and
//!   compiled once per simulation instance no matter how many policy kinds
//!   run against it (and those per-RSU compiles themselves fan out across
//!   the executor).
//! * **Determinism** — every cell derives all randomness from its own
//!   scenario seed, so a grid run is bit-for-bit identical to running each
//!   cell alone, for *any* worker count (including the serial fallback
//!   without the `parallel` feature).
//! * **Single-run compatibility** — the single-run APIs
//!   ([`CacheSimulation::run`], [`run_service`], [`crate::run_joint`]) are
//!   exactly
//!   the cell bodies the engine calls, so a one-cell plan and a direct call
//!   produce equal reports.
//!
//! ```
//! use aoi_cache::{CachePolicyKind, CacheScenario, ExperimentGrid, ExperimentPlan};
//!
//! let scenario = CacheScenario {
//!     n_rsus: 2,
//!     regions_per_rsu: 2,
//!     age_cap: 5,
//!     max_age_min: 3,
//!     max_age_max: 4,
//!     horizon: 60,
//!     ..CacheScenario::default()
//! };
//! let plan = ExperimentPlan::cache(
//!     vec![scenario],
//!     vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
//! )
//! .replicate_seeds(vec![1, 2, 3]);
//! let report = plan.run()?;
//! assert_eq!(report.cells.len(), 6); // 1 scenario × 3 seeds × 2 policies
//! assert_eq!(report.ensembles.len(), 2); // one summary curve per policy
//! # Ok::<(), aoi_cache::AoiCacheError>(())
//! ```

use crate::cache_sim::{CacheRunReport, CacheScenario, CacheSimulation};
use crate::joint_sim::{run_joint_artifact_with, run_joint_recorded, JointReport, JointScenario};
use crate::policy::CachePolicyKind;
use crate::service::ServicePolicyKind;
use crate::service_sim::{run_service, ServiceRunReport, ServiceScenario};
use crate::AoiCacheError;
use serde::{Deserialize, Serialize};
use simkit::executor;
use simkit::lease;
use simkit::persist::{self, ArtifactKind, ArtifactWriter, Compression, Manifest};
use simkit::supervise;
use simkit::{CurveAccumulator, CurveSummary, RecordingMode, TimeSeries};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The policy/scenario axes of an experiment grid.
///
/// Joint scenarios embed their policy pair, so the joint grid has no
/// separate policy axis (each scenario is its own policy cell).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentGrid {
    /// Stage-1 cache management: scenarios × cache-policy menu.
    Cache {
        /// Base scenarios (their `seed` field is replaced by replicates).
        scenarios: Vec<CacheScenario>,
        /// The policy menu every scenario runs under.
        policies: Vec<CachePolicyKind>,
    },
    /// Stage-2 content service: scenarios × service-policy menu.
    Service {
        /// Base scenarios (their `seed` field is replaced by replicates).
        scenarios: Vec<ServiceScenario>,
        /// The policy menu every scenario runs under.
        policies: Vec<ServicePolicyKind>,
    },
    /// The full two-stage scheme on the vehicular substrate.
    Joint {
        /// Base scenarios, each carrying its own policy pair.
        scenarios: Vec<JointScenario>,
    },
}

impl ExperimentGrid {
    fn n_scenarios(&self) -> usize {
        match self {
            ExperimentGrid::Cache { scenarios, .. } => scenarios.len(),
            ExperimentGrid::Service { scenarios, .. } => scenarios.len(),
            ExperimentGrid::Joint { scenarios } => scenarios.len(),
        }
    }

    fn n_policies(&self) -> usize {
        match self {
            ExperimentGrid::Cache { policies, .. } => policies.len(),
            ExperimentGrid::Service { policies, .. } => policies.len(),
            ExperimentGrid::Joint { .. } => 1,
        }
    }

    fn base_seed(&self, scenario: usize) -> u64 {
        match self {
            ExperimentGrid::Cache { scenarios, .. } => scenarios[scenario].seed,
            ExperimentGrid::Service { scenarios, .. } => scenarios[scenario].seed,
            ExperimentGrid::Joint { scenarios } => scenarios[scenario].seed,
        }
    }

    fn policy_label(&self, scenario: usize, policy: usize) -> String {
        match self {
            ExperimentGrid::Cache { policies, .. } => policies[policy].label().to_string(),
            ExperimentGrid::Service { policies, .. } => policies[policy].label().to_string(),
            ExperimentGrid::Joint { scenarios } => format!(
                "{}+{}",
                scenarios[scenario].cache_policy.label(),
                scenarios[scenario].service_policy.label()
            ),
        }
    }
}

/// A declarative multi-run experiment: a grid plus seed replicates and an
/// optional worker-count override.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentPlan {
    /// The scenario × policy axes.
    pub grid: ExperimentGrid,
    /// Seed replicates substituted into every scenario's `seed` field.
    /// Empty means "one replicate per scenario, using its embedded seed".
    pub seeds: Vec<u64>,
    /// Worker-count override for the cell fan-out (`None` sizes
    /// automatically from the host; results are identical either way).
    pub workers: Option<usize>,
    /// Per-cell trace retention (AoI traces of cache cells, backlog traces
    /// of joint cells). Scalar statistics and every headline/ensemble curve
    /// are identical in all modes; [`RecordingMode::SummaryOnly`] shrinks
    /// each cell report from `O(horizon × contents)` to `O(horizon)`.
    pub recording: RecordingMode,
    /// When set, the grid **persists its run artifacts** into this
    /// directory: every cell spills its retained traces to
    /// `cell-s<scenario>-r<replicate>-p<policy>.trace.jsonl` as they are
    /// produced (so even [`RecordingMode::Full`] cells retain no trace in
    /// memory), and each `(scenario, policy)` group writes its mean/CI
    /// curve to `ensemble-s<scenario>-p<policy>.jsonl`. Every statistic
    /// and ensemble curve is identical with or without artifacts; re-read
    /// artifacts reconstruct the spilled traces bit-identically (see
    /// [`simkit::persist`]).
    ///
    /// Artifacts appear under their final names only when complete: every
    /// writer streams to a writer-unique `*.tmp-<pid>-<seq>` file and renames
    /// it into place on finish, so an interrupted run never leaves a
    /// half-written file where the resume pass (or another worker) would
    /// find it.
    pub artifacts: Option<PathBuf>,
    /// The encoding artifacts are written under. With
    /// [`Compression::Deflate`] every artifact streams through the codec
    /// of [`simkit::persist::compress`] and file names gain a `.z` suffix;
    /// results and re-read bit-identity are unaffected.
    pub compression: Compression,
    /// When `true` (and [`artifacts`](ExperimentPlan::artifacts) is set),
    /// [`run_ensembles`](ExperimentPlan::run_ensembles) **resumes** a
    /// previous run of the same plan from its artifact directory: any cell
    /// whose artifact already exists and verifies — intact footer,
    /// matching config hash and seed — is *skipped*, its headline curve
    /// re-read from disk instead of recomputed; every other cell
    /// (missing, truncated, corrupt, foreign or stale artifact) is re-run
    /// and its artifact rewritten. Because re-read curves are bit-identical
    /// to computed ones, the final ensembles are bit-identical whether the
    /// grid ran cold, warm, or half-interrupted.
    pub resume: bool,
    /// When `true` (requires [`resume`](ExperimentPlan::resume) and an
    /// artifact directory), the run becomes one **worker of a distributed
    /// campaign**: before recomputing a cell it claims the cell's lease
    /// file ([`simkit::lease`]) and skips cells whose lease another live
    /// worker holds, so K independent processes sharing one directory
    /// partition the grid with no coordinator. A crashed worker's leases
    /// expire after [`lease_ttl_ms`](ExperimentPlan::lease_ttl_ms) and its
    /// cells are taken over. The final ensembles are folded from the
    /// on-disk cell artifacts and are bit-identical to a cold
    /// single-process run.
    pub claim: bool,
    /// Owner id this worker claims leases under. `None` derives a
    /// process-unique id (`w<pid>-<hex wall-clock>`); set it explicitly to
    /// make crash-safety tests and logs deterministic.
    pub worker_id: Option<String>,
    /// Lease time-to-live in milliseconds for claim mode. A worker
    /// heartbeats each held lease every `lease_ttl_ms / 3`, so a lease
    /// only expires when its worker has been dead (or stalled) for a full
    /// TTL. Lower values recover crashed cells faster; higher values
    /// tolerate longer stalls without duplicated work.
    pub lease_ttl_ms: u64,
    /// Lockstep batch width for cache-grid cells: up to this many seed
    /// replicates of one `(scenario, policy)` cell advance through their
    /// slots together ([`crate::run_batch`]), amortizing the per-slot
    /// arithmetic across replicate lanes. `1` (the default) runs every
    /// cell alone. Reports, ensemble curves and artifact bytes are
    /// **bit-identical** for every width — batching only reorders when
    /// each replicate's work happens, never what it computes. Service and
    /// joint grids currently ignore this knob (their cells run one at a
    /// time).
    pub batch: usize,
    /// Claim mode only: how many times a failing cell (a returned error
    /// *or* a panic — claim-mode cells run under
    /// [`executor::parallel_map_supervised`] panic isolation) is attempted
    /// before the worker gives up and **quarantines** it. A quarantined
    /// cell leaves a `cell-s<scenario>-r<replicate>-p<policy>.quarantine.jsonl`
    /// diagnostic marker ([`simkit::supervise::Quarantine`]) beside its
    /// missing artifact, is excluded from the rest of this worker's
    /// campaign, and the final ensembles fold over the surviving cells —
    /// the gap is accounted in [`ResumeReport::quarantined`] and
    /// [`EnsembleSummary::quarantined`], never papered over. Retries wait
    /// on the worker's deterministic jittered backoff schedule
    /// ([`simkit::supervise::Backoff`]). Must be at least 1 in claim
    /// mode; the non-claim engines abort on the first cell error exactly
    /// as before.
    pub max_attempts: u32,
}

/// Default claim-mode lease TTL (30 s — generous against slow cells, yet
/// quick enough that a crashed worker's cells are recovered promptly).
pub const DEFAULT_LEASE_TTL_MS: u64 = 30_000;

/// Default claim-mode retry budget per failing cell (see
/// [`ExperimentPlan::max_attempts`]).
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

impl ExperimentPlan {
    /// A stage-1 cache-management grid.
    pub fn cache(scenarios: Vec<CacheScenario>, policies: Vec<CachePolicyKind>) -> Self {
        ExperimentPlan {
            grid: ExperimentGrid::Cache {
                scenarios,
                policies,
            },
            seeds: Vec::new(),
            workers: None,
            recording: RecordingMode::Full,
            artifacts: None,
            compression: Compression::None,
            resume: false,
            claim: false,
            worker_id: None,
            lease_ttl_ms: DEFAULT_LEASE_TTL_MS,
            batch: 1,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        }
    }

    /// A stage-2 content-service grid.
    pub fn service(scenarios: Vec<ServiceScenario>, policies: Vec<ServicePolicyKind>) -> Self {
        ExperimentPlan {
            grid: ExperimentGrid::Service {
                scenarios,
                policies,
            },
            seeds: Vec::new(),
            workers: None,
            recording: RecordingMode::Full,
            artifacts: None,
            compression: Compression::None,
            resume: false,
            claim: false,
            worker_id: None,
            lease_ttl_ms: DEFAULT_LEASE_TTL_MS,
            batch: 1,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        }
    }

    /// A joint two-stage grid (each scenario embeds its policy pair).
    pub fn joint(scenarios: Vec<JointScenario>) -> Self {
        ExperimentPlan {
            grid: ExperimentGrid::Joint { scenarios },
            seeds: Vec::new(),
            workers: None,
            recording: RecordingMode::Full,
            artifacts: None,
            compression: Compression::None,
            resume: false,
            claim: false,
            worker_id: None,
            lease_ttl_ms: DEFAULT_LEASE_TTL_MS,
            batch: 1,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        }
    }

    /// Replaces the seed replicates (each scenario runs once per seed).
    #[must_use]
    pub fn replicate_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the per-cell trace retention policy. Reports, scalar statistics
    /// and ensemble curves are identical in every mode; only the per-cell
    /// trace bulk ([`CacheRunReport::aoi_traces`], [`JointReport::queues`])
    /// changes. Large grids should run [`RecordingMode::SummaryOnly`] so a
    /// cell costs `O(horizon)`, not `O(horizon × contents)`.
    #[must_use]
    pub fn recording(mut self, recording: RecordingMode) -> Self {
        self.recording = recording;
        self
    }

    /// Persists run artifacts into `dir` (created on demand): per-cell
    /// trace artifacts, written **as the cells run** so no full trace is
    /// ever resident, plus one ensemble artifact per `(scenario, policy)`
    /// group. See [`artifacts`](ExperimentPlan::artifacts) for the layout.
    #[must_use]
    pub fn artifact_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifacts = Some(dir.into());
        self
    }

    /// Sets the artifact encoding (see
    /// [`compression`](ExperimentPlan::compression)). A `Full`-mode figure
    /// grid typically shrinks 3–6× under [`Compression::Deflate`]; every
    /// result and re-read series is identical under either encoding.
    #[must_use]
    pub fn compress(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Enables resuming from an existing artifact directory (see
    /// [`resume`](ExperimentPlan::resume)). Honored by
    /// [`run_ensembles`](ExperimentPlan::run_ensembles) /
    /// [`run_ensembles_resumable`](ExperimentPlan::run_ensembles_resumable);
    /// the batch engine ([`run`](ExperimentPlan::run)) rejects it, because
    /// its full per-cell reports cannot be reconstructed from artifacts.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Enables claim mode (see [`claim`](ExperimentPlan::claim)): this run
    /// becomes one worker of a multi-process campaign, claiming cells via
    /// lease files before recomputing them. Requires
    /// [`resume`](ExperimentPlan::resume) and an artifact directory.
    #[must_use]
    pub fn claim(mut self, claim: bool) -> Self {
        self.claim = claim;
        self
    }

    /// Sets the owner id this worker claims leases under (see
    /// [`worker_id`](ExperimentPlan::worker_id)).
    #[must_use]
    pub fn worker_id(mut self, id: impl Into<String>) -> Self {
        self.worker_id = Some(id.into());
        self
    }

    /// Sets the claim-mode lease TTL (see
    /// [`lease_ttl_ms`](ExperimentPlan::lease_ttl_ms)).
    #[must_use]
    pub fn lease_ttl_ms(mut self, ttl_ms: u64) -> Self {
        self.lease_ttl_ms = ttl_ms;
        self
    }

    /// Sets the claim-mode retry budget per failing cell (see
    /// [`max_attempts`](ExperimentPlan::max_attempts)).
    #[must_use]
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Overrides the horizon of **every** scenario in the grid — the knob
    /// CI smokes and quick local runs use to shrink a preset plan without
    /// redefining it.
    #[must_use]
    pub fn horizon(mut self, horizon: usize) -> Self {
        match &mut self.grid {
            ExperimentGrid::Cache { scenarios, .. } => {
                for s in scenarios {
                    s.horizon = horizon;
                }
            }
            ExperimentGrid::Service { scenarios, .. } => {
                for s in scenarios {
                    s.horizon = horizon;
                }
            }
            ExperimentGrid::Joint { scenarios } => {
                for s in scenarios {
                    s.horizon = horizon;
                }
            }
        }
        self
    }

    /// The artifact file of one cell under `dir` (plain encoding).
    pub fn cell_artifact_path(dir: &Path, id: CellId) -> PathBuf {
        Self::cell_artifact_path_with(dir, id, Compression::None)
    }

    /// The artifact file of one cell under `dir`, with the encoding's
    /// conventional suffix (`.z` under [`Compression::Deflate`]).
    pub fn cell_artifact_path_with(dir: &Path, id: CellId, compression: Compression) -> PathBuf {
        compression.apply_to(&dir.join(format!(
            "cell-s{}-r{}-p{}.trace.jsonl",
            id.scenario, id.replicate, id.policy
        )))
    }

    /// The lease file a claim-mode worker writes beside the artifact of
    /// cell `id` while computing it (see [`simkit::lease`]). The name is
    /// compression-independent: workers agree on the claim regardless of
    /// their artifact encoding.
    pub fn cell_lease_path(dir: &Path, id: CellId) -> PathBuf {
        dir.join(format!(
            "cell-s{}-r{}-p{}.lease",
            id.scenario, id.replicate, id.policy
        ))
    }

    /// The quarantine marker a claim-mode worker writes beside the
    /// artifact of a cell that exhausted its retry budget (see
    /// [`max_attempts`](ExperimentPlan::max_attempts)). Like the lease
    /// path, the name is compression-independent.
    pub fn cell_quarantine_path(dir: &Path, id: CellId) -> PathBuf {
        dir.join(format!("cell-{}.quarantine.jsonl", id.coords()))
    }

    /// The artifact file of one `(scenario, policy)` ensemble under `dir`
    /// (plain encoding).
    pub fn ensemble_artifact_path(dir: &Path, scenario: usize, policy: usize) -> PathBuf {
        Self::ensemble_artifact_path_with(dir, scenario, policy, Compression::None)
    }

    /// The artifact file of one `(scenario, policy)` ensemble under `dir`,
    /// with the encoding's conventional suffix.
    pub fn ensemble_artifact_path_with(
        dir: &Path,
        scenario: usize,
        policy: usize,
        compression: Compression,
    ) -> PathBuf {
        compression.apply_to(&dir.join(format!("ensemble-s{scenario}-p{policy}.jsonl")))
    }

    /// Forces the cell fan-out to exactly `workers` workers. `1` means
    /// **fully serial**: the whole run — nested per-RSU compiles, solves
    /// and sweep pools included — stays on the calling thread. Reports are
    /// bit-for-bit identical for every choice; this only pins scheduling
    /// (tests use it to prove exactly that).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the lockstep batch width for cache cells (see
    /// [`batch`](ExperimentPlan::batch); `0` is treated as `1`). Results
    /// are bit-identical for every width.
    #[must_use]
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Number of seed replicates per scenario (at least 1).
    pub fn n_replicates(&self) -> usize {
        self.seeds.len().max(1)
    }

    /// Total number of cells the plan expands to.
    pub fn n_cells(&self) -> usize {
        self.grid.n_scenarios() * self.n_replicates() * self.grid.n_policies()
    }

    /// The seed of replicate `rep` of `scenario`.
    fn seed_of(&self, scenario: usize, rep: usize) -> u64 {
        if self.seeds.is_empty() {
            self.grid.base_seed(scenario)
        } else {
            self.seeds[rep]
        }
    }

    /// Expands the grid into cell identities, in report order (scenario ▸
    /// seed replicate ▸ policy).
    pub fn cell_ids(&self) -> Vec<CellId> {
        let mut ids = Vec::with_capacity(self.n_cells());
        for scenario in 0..self.grid.n_scenarios() {
            for rep in 0..self.n_replicates() {
                for policy in 0..self.grid.n_policies() {
                    ids.push(CellId {
                        scenario,
                        replicate: rep,
                        seed: self.seed_of(scenario, rep),
                        policy,
                    });
                }
            }
        }
        ids
    }

    fn validate(&self) -> Result<(), AoiCacheError> {
        if self.grid.n_scenarios() == 0 {
            return Err(AoiCacheError::BadParameter {
                what: "scenarios",
                valid: "non-empty",
            });
        }
        match &self.grid {
            ExperimentGrid::Cache { policies, .. } if policies.is_empty() => {
                Err(AoiCacheError::BadParameter {
                    what: "policies",
                    valid: "non-empty",
                })
            }
            ExperimentGrid::Service { policies, .. } if policies.is_empty() => {
                Err(AoiCacheError::BadParameter {
                    what: "policies",
                    valid: "non-empty",
                })
            }
            _ => Ok(()),
        }?;
        if self.claim && !(self.resume && self.artifacts.is_some()) {
            return Err(AoiCacheError::BadParameter {
                what: "claim",
                valid: "a plan with resume and an artifact directory",
            });
        }
        if self.claim && self.lease_ttl_ms == 0 {
            return Err(AoiCacheError::BadParameter {
                what: "lease_ttl_ms",
                valid: "a positive lease time-to-live",
            });
        }
        if self.claim && self.max_attempts == 0 {
            return Err(AoiCacheError::BadParameter {
                what: "max_attempts",
                valid: "a retry budget of at least 1",
            });
        }
        if let Some(dir) = &self.artifacts {
            std::fs::create_dir_all(dir).map_err(|e| {
                AoiCacheError::Persist(persist::PersistError::Io {
                    op: "create artifact directory",
                    path: dir.display().to_string(),
                    message: e.to_string(),
                })
            })?;
        }
        Ok(())
    }

    /// Runs every cell of the grid — concurrently on the shared executor
    /// when the `parallel` feature is on — and aggregates the replicate
    /// curves of each `(scenario, policy)` group.
    ///
    /// # Errors
    ///
    /// Returns [`AoiCacheError::BadParameter`] for an empty grid or a plan
    /// with [`resume`](ExperimentPlan::resume) set (the batch engine
    /// materializes full per-cell reports, which artifacts do not carry —
    /// resume via [`run_ensembles`](ExperimentPlan::run_ensembles)), and
    /// propagates the first scenario/solver error any cell hits.
    pub fn run(&self) -> Result<ExperimentReport, AoiCacheError> {
        self.validate()?;
        if self.resume {
            return Err(AoiCacheError::BadParameter {
                what: "resume",
                valid: "the streamed engine (run_ensembles) with an artifact directory",
            });
        }
        if self.workers == Some(1) {
            // A 1-worker plan promises fully serial execution: suppress
            // the nested automatic fan-outs (per-RSU compiles/solves,
            // sweep pools) too, not just the cell loop.
            executor::serialized(|| self.run_cells())
        } else {
            self.run_cells()
        }
    }

    fn run_cells(&self) -> Result<ExperimentReport, AoiCacheError> {
        let ids = self.cell_ids();
        let outcomes = self.run_cell_batch(&ids)?;
        let mut cells = Vec::with_capacity(ids.len());
        for (id, outcome) in ids.into_iter().zip(outcomes) {
            cells.push(CellReport {
                label: self.grid.policy_label(id.scenario, id.policy),
                id,
                outcome,
            });
        }
        let ensembles = self.summarize(&cells)?;
        Ok(ExperimentReport { cells, ensembles })
    }

    /// Runs the grid **streamed**: one seed-replicate wave at a time, each
    /// cell's headline curve folded into its `(scenario, policy)` group's
    /// [`CurveAccumulator`] and the cell report dropped immediately, so the
    /// engine never holds more than one wave of reports (combine with
    /// [`RecordingMode::SummaryOnly`] to make each of those cells
    /// `O(horizon)`). Peak memory is `O(cells-per-wave × horizon + groups ×
    /// horizon)` instead of [`run`](ExperimentPlan::run)'s whole-grid
    /// report.
    ///
    /// The returned ensembles are bit-identical to
    /// [`run`](ExperimentPlan::run)`()?.ensembles` for any worker count —
    /// waves only bound memory, never change results.
    ///
    /// With [`resume`](ExperimentPlan::resume) set, cells whose artifact
    /// already verifies are skipped (their headline curves load from
    /// disk); use
    /// [`run_ensembles_resumable`](ExperimentPlan::run_ensembles_resumable)
    /// to also learn which cells were skipped, recomputed or invalidated.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`run_ensembles_resumable`](ExperimentPlan::run_ensembles_resumable).
    pub fn run_ensembles(&self) -> Result<Vec<EnsembleSummary>, AoiCacheError> {
        Ok(self.run_ensembles_resumable()?.0)
    }

    /// [`run_ensembles`](ExperimentPlan::run_ensembles), also returning
    /// the [`ResumeReport`] describing what the [`resume`] flag did: which
    /// cells were skipped (artifact existed and verified), which were
    /// recomputed cold (no artifact), and which were invalidated (an
    /// artifact existed but failed verification — truncated, corrupt,
    /// foreign format or mismatched configuration — and was re-run).
    /// Without [`resume`] every cell is recomputed and the report lists
    /// all of them as such.
    ///
    /// Every invalidation re-runs the cell; a cell is **never** silently
    /// skipped on a bad artifact. The resumed ensembles are bit-identical
    /// to a cold run's.
    ///
    /// [`resume`]: ExperimentPlan::resume
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](ExperimentPlan::run), plus
    /// [`AoiCacheError::BadParameter`] when [`resume`] is set without an
    /// artifact directory.
    pub fn run_ensembles_resumable(
        &self,
    ) -> Result<(Vec<EnsembleSummary>, ResumeReport), AoiCacheError> {
        self.validate()?;
        if self.resume && self.artifacts.is_none() {
            return Err(AoiCacheError::BadParameter {
                what: "resume",
                valid: "a plan with an artifact directory (artifact_dir)",
            });
        }
        if self.claim {
            return if self.workers == Some(1) {
                executor::serialized(|| self.run_claimed())
            } else {
                self.run_claimed()
            };
        }
        if self.workers == Some(1) {
            executor::serialized(|| self.run_ensemble_waves())
        } else {
            self.run_ensemble_waves()
        }
    }

    fn run_ensemble_waves(&self) -> Result<(Vec<EnsembleSummary>, ResumeReport), AoiCacheError> {
        let mut groups = self.group_accumulators();
        let mut resume = ResumeReport::default();
        let n_policies = self.grid.n_policies();
        let all_ids = self.cell_ids();
        let resume_dir = self.artifacts.as_deref().filter(|_| self.resume);
        // Waves span `batch` replicates so lockstep groups can form within
        // a wave (`batch == 1` reproduces the one-replicate schedule
        // exactly). A wave keeps cell-id order (scenario ▸ replicate ▸
        // policy), so each group's curves still fold in ascending-replicate
        // order and the ensembles stay bit-identical for every width.
        let width = self.batch.max(1);
        for wave_start in (0..self.n_replicates()).step_by(width) {
            let wave: Vec<CellId> = all_ids
                .iter()
                .filter(|id| (wave_start..wave_start + width).contains(&id.replicate))
                .copied()
                .collect();
            // Partition the wave: cells whose artifact verifies are
            // *skipped* (their headline curve loads from disk), the rest
            // run. The per-cell verifications are independent reads, so
            // they fan out on the executor like the cells themselves; the
            // results come back in wave order, and curves are folded into
            // the groups in wave order either way, so the accumulation —
            // and with it every ensemble — is bit-identical to a cold run.
            let checks: Vec<Option<CellResume>> = match resume_dir {
                Some(dir) => {
                    let workers = self
                        .workers
                        .unwrap_or_else(|| executor::worker_count(wave.len(), true, 1));
                    executor::parallel_map(workers, &wave, |_, id| {
                        Some(self.check_cell_artifact(dir, *id))
                    })
                }
                None => (0..wave.len()).map(|_| None).collect(),
            };
            let mut loaded: Vec<Option<TimeSeries>> = vec![None; wave.len()];
            let mut to_run: Vec<CellId> = Vec::with_capacity(wave.len());
            let mut run_slots: Vec<usize> = Vec::with_capacity(wave.len());
            for (slot, (id, check)) in wave.iter().zip(checks).enumerate() {
                match check {
                    Some(CellResume::Valid(curve)) => {
                        loaded[slot] = Some(curve);
                        resume.skipped.push(*id);
                    }
                    Some(CellResume::Invalid(why)) => {
                        to_run.push(*id);
                        run_slots.push(slot);
                        resume.invalidated.push((*id, why));
                    }
                    Some(CellResume::Missing) | None => {
                        to_run.push(*id);
                        run_slots.push(slot);
                        resume.recomputed.push(*id);
                    }
                }
            }
            if let Some(dir) = resume_dir {
                // Clear whatever sits where the recomputed artifacts will
                // land (an unreadable file, even a directory) and sweep
                // orphaned `*.tmp-<pid>-<seq>` files a crashed writer left for
                // these cells, so the rewrite cannot fail on debris.
                self.prepare_recompute(dir, &to_run)?;
            }
            let outcomes = self.run_cell_batch(&to_run)?;
            let mut computed: Vec<Option<CellOutcome>> = vec![None; wave.len()];
            for (slot, outcome) in run_slots.into_iter().zip(outcomes) {
                computed[slot] = Some(outcome);
            }
            for (slot, id) in wave.iter().enumerate() {
                let group = &mut groups[id.scenario * n_policies + id.policy];
                match (&loaded[slot], &computed[slot]) {
                    (Some(curve), _) => group.push_curve(curve),
                    (None, Some(outcome)) => group.push_curve(outcome.headline_curve()),
                    (None, None) => unreachable!("every wave cell is loaded or computed"),
                }
            }
            // The wave's outcomes drop here: only the per-group slot
            // statistics remain.
        }
        Ok((self.finish_groups(groups, &[])?, resume))
    }

    /// The artifact channel holding a cell's headline curve (what
    /// [`CellOutcome::headline_curve`] returns for the grid's workload).
    fn headline_channel(&self) -> &'static str {
        let family = match &self.grid {
            ExperimentGrid::Cache { .. } => "cache",
            ExperimentGrid::Service { .. } => "service",
            ExperimentGrid::Joint { .. } => "joint",
        };
        // lint:allow(panic-hygiene): the three grid families are enumerated one
        // match above; a gap is a compile-time-visible programming error.
        headline_channel_for(family).expect("every grid family has a headline channel")
    }

    /// The `config_hash` a fresh artifact of cell `id` would be written
    /// under — must replicate exactly what the cell runners hash.
    fn expected_cell_hash(&self, id: CellId) -> u64 {
        match &self.grid {
            ExperimentGrid::Cache { scenarios, .. } => {
                let mut scenario = scenarios[id.scenario];
                scenario.seed = id.seed;
                persist::config_hash(&scenario)
            }
            ExperimentGrid::Service { scenarios, .. } => {
                let mut scenario = scenarios[id.scenario].clone();
                scenario.seed = id.seed;
                persist::config_hash(&scenario)
            }
            ExperimentGrid::Joint { scenarios } => {
                let mut scenario = scenarios[id.scenario].clone();
                scenario.seed = id.seed;
                persist::config_hash(&scenario)
            }
        }
    }

    /// Verifies one cell's on-disk artifact for resume: it must read back
    /// completely (intact footer / compressed end marker), carry the exact
    /// configuration hash and seed this plan would write, and hold the
    /// headline curve. Anything less forces a recompute — a bad artifact
    /// is never silently skipped.
    fn check_cell_artifact(&self, dir: &Path, id: CellId) -> CellResume {
        let path = Self::cell_artifact_path_with(dir, id, self.compression);
        if !path.exists() {
            return CellResume::Missing;
        }
        let artifact = match persist::read_artifact(&path) {
            Ok(artifact) => artifact,
            Err(e) => return CellResume::Invalid(e.to_string()),
        };
        if artifact.manifest.artifact != ArtifactKind::Trace {
            return CellResume::Invalid("not a trace artifact".to_string());
        }
        if artifact.manifest.seed != Some(id.seed) {
            return CellResume::Invalid(format!(
                "seed mismatch (artifact {:?}, cell {})",
                artifact.manifest.seed, id.seed
            ));
        }
        let want = self.expected_cell_hash(id);
        if artifact.manifest.config_hash != want {
            return CellResume::Invalid(format!(
                "config hash mismatch (artifact {:016x}, plan {want:016x}) — \
                 the scenario changed since the artifact was written",
                artifact.manifest.config_hash
            ));
        }
        match artifact.channel(self.headline_channel()) {
            Some(channel) if !channel.series.is_empty() => {
                CellResume::Valid(channel.series.clone())
            }
            _ => CellResume::Invalid(format!(
                "missing headline channel \"{}\"",
                self.headline_channel()
            )),
        }
    }

    /// The claim-mode engine: one worker of a distributed campaign (see
    /// [`claim`](ExperimentPlan::claim)), **supervised**.
    ///
    /// Loops over the grid until every cell's artifact verifies or is
    /// quarantined: each pass re-checks the unfinished cells in parallel,
    /// claims the lease of every cell that needs recomputing, runs each
    /// claimed cell in its own panic-isolated compute
    /// ([`executor::parallel_map_supervised`]) under a heartbeat keeper,
    /// releases the leases, and sleeps a deterministic jittered backoff
    /// ([`supervise::Backoff`]) when the only cells left are held by other
    /// live workers or a failed cell awaits its retry. A cell that fails
    /// [`max_attempts`](ExperimentPlan::max_attempts) times is quarantined
    /// — a diagnostic marker lands beside its missing artifact and the
    /// campaign continues without it. Expired leases (dead workers) are
    /// taken over; cells another worker completes while this one waits
    /// are counted as stolen and skipped. Every claim, steal, release,
    /// retry, backoff, quarantine and lost heartbeat is appended to this
    /// worker's health journal (`events-<worker>.jsonl`).
    fn run_claimed(&self) -> Result<(Vec<EnsembleSummary>, ResumeReport), AoiCacheError> {
        let Some(dir) = self.artifacts.clone() else {
            return Err(AoiCacheError::Internal {
                what: "claim mode reached run_claimed without an artifact directory",
            });
        };
        let dir = dir.as_path();
        let owner = self.effective_worker_id();
        let ttl = std::time::Duration::from_millis(self.lease_ttl_ms);
        let heartbeat_every = std::time::Duration::from_millis((self.lease_ttl_ms / 3).max(1));
        // Waiting (on foreign leases) and retrying (after a failure) share
        // one worker-seeded backoff schedule: it starts near-instant and
        // grows toward the old fixed quarter-TTL poll, with enough jitter
        // to de-synchronize workers that fail or block in lockstep.
        let backoff_base = std::time::Duration::from_millis((self.lease_ttl_ms / 16).clamp(2, 250));
        let backoff_cap = std::time::Duration::from_millis((self.lease_ttl_ms / 4).clamp(5, 1_000));
        let mut backoff = supervise::Backoff::for_worker(&owner, backoff_base, backoff_cap);
        let journal_path = dir.join(supervise::journal_file_name(&owner));
        let mut journal = supervise::EventJournal::open(&journal_path, &owner).map_err(|e| {
            AoiCacheError::Persist(persist::PersistError::Io {
                op: "open health journal",
                path: journal_path.display().to_string(),
                message: e.to_string(),
            })
        })?;
        // Test-only poison hook (see the crash-safety suites): the cell
        // matching `AOI_POISON_CELL=s<S>-r<R>-p<P>` panics inside its
        // supervised compute, exercising retry and quarantine end-to-end.
        let poison = std::env::var("AOI_POISON_CELL")
            .ok()
            .and_then(|spec| parse_cell_coords(&spec));
        let all_ids = self.cell_ids();
        let mut resume = ResumeReport::default();
        let mut done = vec![false; all_ids.len()];
        let mut accounted = vec![false; all_ids.len()];
        let mut saw_foreign_lease = vec![false; all_ids.len()];
        let mut attempts_made = vec![0u32; all_ids.len()];
        let mut quarantined = vec![false; all_ids.len()];
        loop {
            let pending: Vec<usize> = (0..all_ids.len())
                .filter(|&i| !done[i] && !quarantined[i])
                .collect();
            if pending.is_empty() {
                break;
            }
            let pending_ids: Vec<CellId> = pending.iter().map(|&i| all_ids[i]).collect();
            let workers = self
                .workers
                .unwrap_or_else(|| executor::worker_count(pending_ids.len(), true, 1));
            let checks: Vec<CellResume> = executor::parallel_map(workers, &pending_ids, |_, id| {
                self.check_cell_artifact(dir, *id)
            });
            let mut claimed: Vec<(usize, lease::LeaseGuard)> = Vec::new();
            let mut blocked = 0usize;
            let mut progress = false;
            for (&i, check) in pending.iter().zip(checks) {
                let id = all_ids[i];
                match check {
                    CellResume::Valid(_) => {
                        done[i] = true;
                        progress = true;
                        if !accounted[i] {
                            accounted[i] = true;
                            resume.skipped.push(id);
                            if saw_foreign_lease[i] {
                                resume.stolen.push(id);
                            }
                        }
                    }
                    needs_run => {
                        let lease_path = Self::cell_lease_path(dir, id);
                        let was_expired = lease::inspect(&lease_path)?
                            .map(|info| info.expired_at(lease::wall_ms()))
                            .unwrap_or(false);
                        match lease::claim(&lease_path, &owner, ttl) {
                            Ok(lease::Claim::Acquired(guard)) => {
                                if !accounted[i] {
                                    accounted[i] = true;
                                    match needs_run {
                                        CellResume::Invalid(why) => {
                                            resume.invalidated.push((id, why))
                                        }
                                        _ => resume.recomputed.push(id),
                                    }
                                }
                                resume.claimed.push(id);
                                if was_expired {
                                    resume.expired.push(id);
                                }
                                attempts_made[i] += 1;
                                // Journal writes are advisory telemetry:
                                // they never fail the campaign.
                                let kind = if was_expired {
                                    supervise::EventKind::Steal
                                } else {
                                    supervise::EventKind::Claim
                                };
                                let _ = journal.record(kind, &id.coords(), attempts_made[i], "");
                                claimed.push((i, guard));
                            }
                            Ok(lease::Claim::Held { .. }) => {
                                saw_foreign_lease[i] = true;
                                blocked += 1;
                            }
                            Err(lease::LeaseError::Contended) => {
                                saw_foreign_lease[i] = true;
                                blocked += 1;
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                }
            }
            let claimed_any = !claimed.is_empty();
            let mut retries_pending = false;
            if claimed_any {
                let batch: Vec<CellId> = claimed.iter().map(|&(i, _)| all_ids[i]).collect();
                self.prepare_recompute(dir, &batch)?;
                let (slots, guards): (Vec<usize>, Vec<lease::LeaseGuard>) =
                    claimed.into_iter().unzip();
                let lease_paths: Vec<PathBuf> = batch
                    .iter()
                    .map(|id| Self::cell_lease_path(dir, *id))
                    .collect();
                let keeper = lease::Heartbeat::keep(guards, heartbeat_every);
                // Each claimed cell computes as its own single-cell batch
                // with a panic fence around it: one poisoned or buggy cell
                // yields a structured failure for that cell only, and the
                // rest of the batch still lands its artifacts. (Claim mode
                // trades the batch's shared-simulation reuse for this
                // isolation; artifact bytes are identical either way.)
                let workers = self
                    .workers
                    .unwrap_or_else(|| executor::worker_count(batch.len(), true, 1));
                let results = executor::parallel_map_supervised(workers, &batch, |_, id| {
                    if poison == Some((id.scenario, id.replicate, id.policy)) {
                        // lint:allow(panic-hygiene): deliberate test hook — the panic is
                        // the supervised-campaign fault being injected.
                        panic!("poisoned by AOI_POISON_CELL={}", id.coords());
                    }
                    self.run_cell_batch(std::slice::from_ref(id))
                });
                let survivors = keeper.stop();
                let mut kept = std::collections::BTreeSet::new();
                for guard in survivors {
                    // A lost lease means another worker took the cell over
                    // after a stall; its (bit-identical) artifact stands.
                    kept.insert(guard.path().to_path_buf());
                    match guard.release() {
                        Ok(()) | Err(lease::LeaseError::Lost { .. }) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                for ((slot, result), lease_path) in slots.into_iter().zip(results).zip(&lease_paths)
                {
                    let id = all_ids[slot];
                    let item = id.coords();
                    if kept.contains(lease_path.as_path()) {
                        let _ = journal.record(
                            supervise::EventKind::Release,
                            &item,
                            attempts_made[slot],
                            "",
                        );
                    } else {
                        let _ = journal.record(
                            supervise::EventKind::HeartbeatLost,
                            &item,
                            attempts_made[slot],
                            "lease taken over mid-compute",
                        );
                    }
                    let failure = match result {
                        Ok(Ok(_outcomes)) => None,
                        Ok(Err(e)) => Some(e.to_string()),
                        Err(panic) => Some(format!("panic: {}", panic.message)),
                    };
                    match failure {
                        None => {
                            done[slot] = true;
                            progress = true;
                        }
                        Some(message) if attempts_made[slot] < self.max_attempts => {
                            // Budget left: leave the cell pending — a later
                            // pass re-claims and re-runs it.
                            retries_pending = true;
                            let _ = journal.record(
                                supervise::EventKind::Retry,
                                &item,
                                attempts_made[slot],
                                &message,
                            );
                        }
                        Some(message) => {
                            let marker = supervise::Quarantine {
                                item: item.clone(),
                                worker: owner.clone(),
                                attempts: attempts_made[slot],
                                error: message.clone(),
                                wall_ms: lease::wall_ms(),
                            };
                            let marker_path = Self::cell_quarantine_path(dir, id);
                            marker.write(&marker_path).map_err(|e| {
                                AoiCacheError::Persist(persist::PersistError::Io {
                                    op: "write quarantine marker",
                                    path: marker_path.display().to_string(),
                                    message: e.to_string(),
                                })
                            })?;
                            let _ = journal.record(
                                supervise::EventKind::Quarantine,
                                &item,
                                attempts_made[slot],
                                &message,
                            );
                            quarantined[slot] = true;
                            resume.quarantined.push((id, message));
                        }
                    }
                }
            }
            if retries_pending || (!claimed_any && blocked > 0) {
                // Wait for foreign artifacts to land, foreign leases to
                // expire, or our own retry turn — with exponential jitter
                // so stuck workers don't hammer the directory in lockstep.
                let delay = backoff.next_delay();
                let _ = journal.record(
                    supervise::EventKind::Backoff,
                    "",
                    0,
                    &format!("{} ms", delay.as_millis()),
                );
                std::thread::sleep(delay);
            } else if progress {
                backoff.reset();
            }
        }
        for (i, id) in all_ids.iter().enumerate() {
            if attempts_made[i] > 1 {
                resume.attempts.push((*id, attempts_made[i]));
            }
        }
        // A worker that dies between landing a cell's artifact and
        // releasing its lease leaves a lease no claimant would ever look
        // at again — the valid artifact means the cell is skipped forever,
        // so nothing would clear the file. Sweep those up before
        // declaring the campaign complete: a live holder releases on its
        // own (wait it out); an expired lease is taken over and released.
        backoff.reset();
        for id in &all_ids {
            let lease_path = Self::cell_lease_path(dir, *id);
            loop {
                match lease::inspect(&lease_path)? {
                    None => break,
                    Some(info) if info.expired_at(lease::wall_ms()) => {
                        match lease::claim(&lease_path, &owner, ttl) {
                            Ok(lease::Claim::Acquired(guard)) => {
                                match guard.release() {
                                    Ok(()) | Err(lease::LeaseError::Lost { .. }) => {}
                                    Err(e) => return Err(e.into()),
                                }
                                let _ = journal.record(
                                    supervise::EventKind::Release,
                                    &id.coords(),
                                    0,
                                    "cleared a dead worker's lease beside a finished cell",
                                );
                                break;
                            }
                            // Lost the cleanup race: the winner clears it.
                            Ok(lease::Claim::Held { .. }) | Err(lease::LeaseError::Contended) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                    // Live holder mid-release (or re-verifying a cell that
                    // already landed): it deletes its own lease shortly.
                    Some(_) => {}
                }
                std::thread::sleep(backoff.next_delay());
            }
        }
        // Fold the ensembles from the on-disk cell artifacts, one
        // replicate wave at a time. Within each (scenario, policy) group
        // the curves arrive in replicate order — the same sequence a cold
        // single-process run folds — and re-read curves are bit-identical
        // to computed ones, so on a healthy campaign the ensembles (and
        // their artifacts) are bit-identical to a cold run's no matter how
        // the cells were partitioned across workers. Quarantined cells are
        // the one exception: their artifact is allowed to be missing, and
        // the gap is counted per group instead of erroring — unless
        // another worker landed the artifact anyway, in which case its
        // (bit-identical) curve folds in and there is no gap.
        let quarantined_ids: std::collections::BTreeSet<(usize, usize, usize)> = all_ids
            .iter()
            .zip(&quarantined)
            .filter(|&(_, &q)| q)
            .map(|(id, _)| (id.scenario, id.replicate, id.policy))
            .collect();
        let mut groups = self.group_accumulators();
        let n_policies = self.grid.n_policies();
        let mut gaps = vec![0usize; groups.len()];
        for rep in 0..self.n_replicates() {
            let wave: Vec<CellId> = all_ids
                .iter()
                .filter(|id| id.replicate == rep)
                .copied()
                .collect();
            let workers = self
                .workers
                .unwrap_or_else(|| executor::worker_count(wave.len(), true, 1));
            let checks: Vec<CellResume> =
                executor::parallel_map(workers, &wave, |_, id| self.check_cell_artifact(dir, *id));
            for (id, check) in wave.iter().zip(checks) {
                match check {
                    CellResume::Valid(curve) => {
                        groups[id.scenario * n_policies + id.policy].push_curve(&curve);
                    }
                    _ if quarantined_ids.contains(&(id.scenario, id.replicate, id.policy)) => {
                        gaps[id.scenario * n_policies + id.policy] += 1;
                    }
                    _ => {
                        return Err(AoiCacheError::Persist(persist::PersistError::Io {
                            op: "reload cell artifact",
                            path: Self::cell_artifact_path_with(dir, *id, self.compression)
                                .display()
                                .to_string(),
                            message: "cell artifact vanished or failed verification after \
                                      the campaign completed"
                                .to_string(),
                        }));
                    }
                }
            }
        }
        Ok((self.finish_groups(groups, &gaps)?, resume))
    }

    /// The owner id leases are claimed under: the explicit
    /// [`worker_id`](ExperimentPlan::worker_id) or a process-unique
    /// default.
    fn effective_worker_id(&self) -> String {
        self.worker_id
            .clone()
            .unwrap_or_else(|| format!("w{}-{:x}", std::process::id(), lease::wall_ms()))
    }

    /// Clears the landing zone for cells about to be recomputed: removes
    /// whatever sits at each cell's final artifact path (an invalidated
    /// file — or even a directory, which would make the finalizing rename
    /// fail) and sweeps orphaned in-flight `*.tmp-<pid>-<seq>` temporaries left
    /// for those cells by crashed writers. Temporaries of cells *not*
    /// being recomputed are left alone — a live worker may be streaming
    /// to them.
    fn prepare_recompute(&self, dir: &Path, ids: &[CellId]) -> Result<(), AoiCacheError> {
        if ids.is_empty() {
            return Ok(());
        }
        let mut finals = std::collections::BTreeSet::new();
        for id in ids {
            let path = Self::cell_artifact_path_with(dir, *id, self.compression);
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(_) => {
                    std::fs::remove_dir_all(&path).map_err(|e| {
                        AoiCacheError::Persist(persist::PersistError::Io {
                            op: "clear stale artifact",
                            path: path.display().to_string(),
                            message: e.to_string(),
                        })
                    })?;
                }
            }
            if let Some(name) = path.file_name() {
                finals.insert(name.to_string_lossy().into_owned());
            }
            // A stale quarantine marker would contradict the artifact about
            // to be recomputed (and give the retried cell a spent budget's
            // worth of bad press) — clear it with the debris.
            let _ = std::fs::remove_file(Self::cell_quarantine_path(dir, *id));
        }
        let entries = std::fs::read_dir(dir).map_err(|e| {
            AoiCacheError::Persist(persist::PersistError::Io {
                op: "sweep stale temporaries",
                path: dir.display().to_string(),
                message: e.to_string(),
            })
        })?;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(pos) = name.rfind(".tmp-") {
                let base = &name[..pos];
                if finals.contains(base) && persist::is_tmp_for(&name, base) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    /// Runs one batch of cells (the whole grid for
    /// [`run`](ExperimentPlan::run), one replicate wave for
    /// [`run_ensembles`](ExperimentPlan::run_ensembles)) on the shared
    /// executor; outcomes return in `ids` order.
    fn run_cell_batch(&self, ids: &[CellId]) -> Result<Vec<CellOutcome>, AoiCacheError> {
        let workers = self
            .workers
            .unwrap_or_else(|| executor::worker_count(ids.len(), true, 1));
        let artifacts = self.artifacts.as_deref();

        let outcomes: Vec<Result<CellOutcome, AoiCacheError>> = match &self.grid {
            ExperimentGrid::Cache {
                scenarios,
                policies,
            } => {
                // One shared simulation per distinct (scenario, replicate)
                // in the batch: every policy cell reuses its catalog,
                // initial ages and compiled per-RSU MDP kernels. `ids` is
                // scenario-major then replicate-major, so the distinct keys
                // are consecutive and sorted.
                let mut keys: Vec<(usize, usize)> =
                    ids.iter().map(|id| (id.scenario, id.replicate)).collect();
                keys.dedup();
                let mut sims = Vec::with_capacity(keys.len());
                for &(si, rep) in &keys {
                    let mut scenario = scenarios[si];
                    scenario.seed = self.seed_of(si, rep);
                    sims.push(CacheSimulation::new(scenario)?.with_recording(self.recording));
                }
                if ids.iter().any(|id| policies[id.policy].uses_mdp()) {
                    // Compile ahead of the fan-out so cells never race the
                    // lazy kernel cache (the per-RSU compiles themselves run
                    // on the executor). Gated on the batch's *own* cells so
                    // the single-cell batches of supervised claim mode
                    // don't compile kernels for policies they never run.
                    for sim in &sims {
                        sim.compiled()?;
                    }
                }
                if self.batch > 1 {
                    return self.run_cache_cells_lockstep(ids, policies, &keys, &sims, workers);
                }
                executor::parallel_map(workers, ids, |_, id| {
                    let sim = keys
                        .binary_search(&(id.scenario, id.replicate))
                        .map_err(|_| AoiCacheError::Internal {
                            what: "batch is missing this cell's shared simulation",
                        })?;
                    match artifacts {
                        Some(dir) => sims[sim].run_artifact_with(
                            policies[id.policy],
                            &Self::cell_artifact_path_with(dir, *id, self.compression),
                            self.compression,
                        ),
                        None => sims[sim].run(policies[id.policy]),
                    }
                    .map(CellOutcome::Cache)
                })
            }
            ExperimentGrid::Service {
                scenarios,
                policies,
            } => executor::parallel_map(workers, ids, |_, id| {
                let mut scenario = scenarios[id.scenario].clone();
                scenario.seed = id.seed;
                let report = run_service(&scenario, policies[id.policy])?;
                if let Some(dir) = artifacts {
                    write_service_artifact_with(
                        &scenario,
                        &report,
                        &Self::cell_artifact_path_with(dir, *id, self.compression),
                        self.compression,
                    )?;
                }
                Ok(CellOutcome::Service(report))
            }),
            ExperimentGrid::Joint { scenarios } => executor::parallel_map(workers, ids, |_, id| {
                let mut scenario = scenarios[id.scenario].clone();
                scenario.seed = id.seed;
                match artifacts {
                    Some(dir) => run_joint_artifact_with(
                        &scenario,
                        self.recording,
                        &Self::cell_artifact_path_with(dir, *id, self.compression),
                        self.compression,
                    ),
                    None => run_joint_recorded(&scenario, self.recording),
                }
                .map(CellOutcome::Joint)
            }),
        };
        outcomes.into_iter().collect()
    }

    /// The batched cache fan-out: cells are grouped by `(scenario, policy)`
    /// — so a group is the seed replicates of one logical cell — and each
    /// group runs in lockstep chunks of up to [`batch`](ExperimentPlan::batch)
    /// replicates via [`crate::run_batch`] /
    /// [`crate::run_batch_artifacts`]. Outcomes return in `ids` order and
    /// are bit-identical (artifacts byte-identical) to the unbatched path.
    fn run_cache_cells_lockstep(
        &self,
        ids: &[CellId],
        policies: &[CachePolicyKind],
        keys: &[(usize, usize)],
        sims: &[CacheSimulation],
        workers: usize,
    ) -> Result<Vec<CellOutcome>, AoiCacheError> {
        // Group the cell indices by (scenario, policy); `ids` is in cell-id
        // order, so each group collects its replicates ascending.
        let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (i, id) in ids.iter().enumerate() {
            groups.entry((id.scenario, id.policy)).or_default().push(i);
        }
        let jobs: Vec<Vec<usize>> = groups
            .into_values()
            .flat_map(|members| {
                members
                    .chunks(self.batch)
                    .map(<[usize]>::to_vec)
                    .collect::<Vec<_>>()
            })
            .collect();
        let artifacts = self.artifacts.as_deref();
        let results: Vec<Result<Vec<CellOutcome>, AoiCacheError>> =
            executor::parallel_map(workers, &jobs, |_, job| {
                let sim_refs: Vec<&CacheSimulation> = job
                    .iter()
                    .map(|&i| {
                        let id = ids[i];
                        keys.binary_search(&(id.scenario, id.replicate))
                            .map(|sim| &sims[sim])
                            .map_err(|_| AoiCacheError::Internal {
                                what: "batch is missing a lockstep cell's shared simulation",
                            })
                    })
                    .collect::<Result<_, _>>()?;
                let kind = policies[ids[job[0]].policy];
                match artifacts {
                    Some(dir) => {
                        let paths: Vec<PathBuf> = job
                            .iter()
                            .map(|&i| Self::cell_artifact_path_with(dir, ids[i], self.compression))
                            .collect();
                        crate::run_batch_artifacts(&sim_refs, kind, &paths, self.compression)
                    }
                    None => crate::run_batch(&sim_refs, kind),
                }
                .map(|reports| reports.into_iter().map(CellOutcome::Cache).collect())
            });
        let mut outcomes: Vec<Option<CellOutcome>> = (0..ids.len()).map(|_| None).collect();
        for (job, result) in jobs.iter().zip(results) {
            for (&i, outcome) in job.iter().zip(result?) {
                outcomes[i] = Some(outcome);
            }
        }
        Ok(outcomes
            .into_iter()
            // lint:allow(panic-hygiene): the jobs vector is a partition of
            // 0..ids.len() by construction directly above.
            .map(|o| o.expect("every cell belongs to exactly one lockstep job"))
            .collect())
    }

    /// Aggregates each `(scenario, policy)` group's headline curves across
    /// seed replicates, streaming one curve at a time into the group's
    /// [`CurveAccumulator`] (no side-by-side curve matrix).
    fn summarize(&self, cells: &[CellReport]) -> Result<Vec<EnsembleSummary>, AoiCacheError> {
        let mut groups = self.group_accumulators();
        let n_policies = self.grid.n_policies();
        for cell in cells {
            groups[cell.id.scenario * n_policies + cell.id.policy]
                .push_curve(cell.outcome.headline_curve());
        }
        self.finish_groups(groups, &[])
    }

    /// One empty curve accumulator per `(scenario, policy)` group, in
    /// ensemble-report order (scenario-major).
    fn group_accumulators(&self) -> Vec<CurveAccumulator> {
        let mut groups = Vec::with_capacity(self.grid.n_scenarios() * self.grid.n_policies());
        for scenario in 0..self.grid.n_scenarios() {
            for policy in 0..self.grid.n_policies() {
                let label = self.grid.policy_label(scenario, policy);
                groups.push(CurveAccumulator::new(group_curve_name(scenario, &label)));
            }
        }
        groups
    }

    /// `gaps` is the per-group count of replicates missing because a
    /// claim-mode campaign quarantined their cells (empty for the
    /// non-claim engines — every group then folds its full complement).
    fn finish_groups(
        &self,
        groups: Vec<CurveAccumulator>,
        gaps: &[usize],
    ) -> Result<Vec<EnsembleSummary>, AoiCacheError> {
        let n_policies = self.grid.n_policies();
        let mut ensembles = Vec::with_capacity(groups.len());
        for (i, group) in groups.into_iter().enumerate() {
            let (scenario, policy) = (i / n_policies, i % n_policies);
            let quarantined = gaps.get(i).copied().unwrap_or(0);
            let curve = if quarantined > 0 {
                match group.finish() {
                    Ok(curve) => curve,
                    // Every replicate of the group was quarantined: there
                    // is nothing to fold, so the group gets no ensemble
                    // (the gap stays visible in the resume report).
                    Err(_) => continue,
                }
            } else {
                group.finish().map_err(|_| AoiCacheError::Internal {
                    what: "a group with zero quarantined cells is missing a replicate curve",
                })?
            };
            let ensemble = EnsembleSummary {
                scenario,
                policy,
                label: self.grid.policy_label(scenario, policy),
                curve,
                quarantined,
            };
            if let Some(dir) = &self.artifacts {
                self.write_ensemble_artifact(dir, &ensemble)?;
            }
            ensembles.push(ensemble);
        }
        Ok(ensembles)
    }

    /// Writes one `(scenario, policy)` group's mean/CI curve as its own
    /// ensemble artifact.
    fn write_ensemble_artifact(
        &self,
        dir: &Path,
        ensemble: &EnsembleSummary,
    ) -> Result<(), AoiCacheError> {
        let manifest = Manifest {
            artifact: ArtifactKind::Ensemble,
            scenario: format!("s{}", ensemble.scenario),
            policy: ensemble.label.clone(),
            seed: None,
            recording: self.recording,
            config_hash: self.ensemble_config_hash(ensemble.scenario, ensemble.policy),
        };
        let path = Self::ensemble_artifact_path_with(
            dir,
            ensemble.scenario,
            ensemble.policy,
            self.compression,
        );
        let mut writer = ArtifactWriter::create_with(&path, &manifest, self.compression)
            .map_err(AoiCacheError::from)?;
        writer
            .curve(
                &ensemble.label,
                ensemble.scenario,
                ensemble.policy,
                &ensemble.curve,
            )
            .map_err(AoiCacheError::from)?;
        writer.finish().map_err(AoiCacheError::from)
    }

    /// The `config_hash` of one `(scenario, policy)` ensemble artifact: a
    /// fold over the group's per-cell config hashes in replicate order
    /// (see [`ensemble_manifest_hash`]). Defined bottom-up — cells first —
    /// so `aoi-artifacts merge` can reproduce an engine-written ensemble
    /// manifest from the cell artifacts alone.
    fn ensemble_config_hash(&self, scenario: usize, policy: usize) -> u64 {
        let hashes: Vec<u64> = (0..self.n_replicates())
            .map(|rep| {
                self.expected_cell_hash(CellId {
                    scenario,
                    replicate: rep,
                    seed: self.seed_of(scenario, rep),
                    policy,
                })
            })
            .collect();
        ensemble_manifest_hash(&hashes)
    }
}

/// The headline trace channel of a cell artifact, keyed by the manifest's
/// scenario family (`"cache"`, `"service"` or `"joint"`) — the channel
/// ensemble curves are folded from. `None` for an unknown family.
pub fn headline_channel_for(scenario_kind: &str) -> Option<&'static str> {
    match scenario_kind {
        "cache" => Some("reward (cumulative)"),
        "service" => Some("queue"),
        "joint" => Some("cache reward (cumulative)"),
        _ => None,
    }
}

/// The accumulator (and curve-label) name of one `(scenario, policy)`
/// ensemble group: `s<scenario>/<label>`.
pub fn group_curve_name(scenario: usize, label: &str) -> String {
    format!("s{scenario}/{label}")
}

/// The `config_hash` an ensemble artifact is written under: an FNV-1a
/// fold ([`simkit::persist::config_hash`]) over the group's per-cell
/// config hashes in replicate order. Defined bottom-up so a merge tool
/// can recompute it from cell manifests alone and reproduce
/// engine-written ensemble artifacts byte-identically.
pub fn ensemble_manifest_hash(cell_hashes: &[u64]) -> u64 {
    persist::config_hash(&cell_hashes)
}

/// Writes one service run's report as a trace artifact (the queue and
/// cost series a service run holds are already `O(horizon)`, so they are
/// written after the run rather than streamed through a recorder sink).
/// Used for every service cell of a grid with an artifact directory;
/// public so standalone Fig. 1b-style runs persist the identical layout.
///
/// # Errors
///
/// Propagates artifact write failures ([`AoiCacheError::Persist`]).
pub fn write_service_artifact(
    scenario: &ServiceScenario,
    report: &ServiceRunReport,
    path: &Path,
) -> Result<(), AoiCacheError> {
    write_service_artifact_with(scenario, report, path, Compression::None)
}

/// [`write_service_artifact`] under an explicit artifact encoding (see
/// [`simkit::persist::compress`]).
///
/// # Errors
///
/// Same conditions as [`write_service_artifact`].
pub fn write_service_artifact_with(
    scenario: &ServiceScenario,
    report: &ServiceRunReport,
    path: &Path,
    compression: Compression,
) -> Result<(), AoiCacheError> {
    let manifest = Manifest {
        artifact: ArtifactKind::Trace,
        scenario: "service".to_string(),
        policy: report.policy.clone(),
        seed: Some(scenario.seed),
        recording: RecordingMode::Full,
        config_hash: persist::config_hash(scenario),
    };
    let mut writer =
        ArtifactWriter::create_with(path, &manifest, compression).map_err(AoiCacheError::from)?;
    writer.series(&report.queue).map_err(AoiCacheError::from)?;
    writer.series(&report.cost).map_err(AoiCacheError::from)?;
    writer.finish().map_err(AoiCacheError::from)
}

/// What the resume check decided about one cell's on-disk artifact.
enum CellResume {
    /// No artifact at the cell's path: compute it cold.
    Missing,
    /// The artifact verified; its headline curve, re-read bit-identically.
    Valid(TimeSeries),
    /// An artifact exists but failed verification (the reason is the
    /// human-readable `why`): recompute and rewrite it.
    Invalid(String),
}

/// What a resumed run did with each cell (see
/// [`ExperimentPlan::run_ensembles_resumable`]): skipped cells reused
/// their verified artifacts; recomputed cells had none; invalidated cells
/// had an artifact that failed verification and were re-run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResumeReport {
    /// Cells whose artifact existed and verified — not re-run.
    pub skipped: Vec<CellId>,
    /// Cells with no artifact — run cold.
    pub recomputed: Vec<CellId>,
    /// Cells whose artifact failed verification (with the reason) — re-run
    /// and rewritten, never silently skipped.
    pub invalidated: Vec<(CellId, String)>,
    /// Claim mode only: cells this worker claimed (lease acquired) and
    /// computed. Every claimed cell also appears in
    /// [`recomputed`](ResumeReport::recomputed) or
    /// [`invalidated`](ResumeReport::invalidated).
    pub claimed: Vec<CellId>,
    /// Claim mode only: claimed cells whose previous lease had expired —
    /// work taken over from a dead (or stalled) worker. A subset of
    /// [`claimed`](ResumeReport::claimed).
    pub expired: Vec<CellId>,
    /// Claim mode only: cells another worker completed while this one
    /// waited on their leases — skipped without computing. A subset of
    /// [`skipped`](ResumeReport::skipped).
    pub stolen: Vec<CellId>,
    /// Claim mode only: cells this worker gave up on after exhausting the
    /// retry budget ([`ExperimentPlan::max_attempts`]), with the final
    /// failure. Each left a `cell-….quarantine.jsonl` marker beside its
    /// missing artifact; the folded ensembles account the gap in
    /// [`EnsembleSummary::quarantined`]. Quarantined cells were claimed,
    /// so they also appear in [`recomputed`](ResumeReport::recomputed) or
    /// [`invalidated`](ResumeReport::invalidated).
    pub quarantined: Vec<(CellId, String)>,
    /// Claim mode only: cells that needed more than one compute attempt,
    /// with the total attempts this worker made (a quarantined cell shows
    /// the whole budget).
    pub attempts: Vec<(CellId, u32)>,
}

impl ResumeReport {
    /// Total cells the report accounts for. The claim-mode annotations
    /// ([`claimed`](ResumeReport::claimed), [`expired`](ResumeReport::expired),
    /// [`stolen`](ResumeReport::stolen)) overlap the three partitions and
    /// are not counted again.
    pub fn n_cells(&self) -> usize {
        self.skipped.len() + self.recomputed.len() + self.invalidated.len()
    }

    /// `true` when every cell was re-run (nothing reusable was found).
    pub fn is_cold(&self) -> bool {
        self.skipped.is_empty()
    }

    /// `true` when every cell was skipped (a fully warm re-run).
    pub fn is_warm(&self) -> bool {
        self.recomputed.is_empty() && self.invalidated.is_empty()
    }
}

impl fmt::Display for ResumeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells: {} skipped (verified artifacts), {} recomputed, {} invalidated",
            self.n_cells(),
            self.skipped.len(),
            self.recomputed.len(),
            self.invalidated.len()
        )?;
        if !self.claimed.is_empty() || !self.stolen.is_empty() {
            write!(
                f,
                "; campaign: {} claimed ({} from expired leases), {} stolen by other workers",
                self.claimed.len(),
                self.expired.len(),
                self.stolen.len()
            )?;
        }
        if !self.attempts.is_empty() || !self.quarantined.is_empty() {
            write!(
                f,
                "; supervision: {} retried, {} quarantined",
                self.attempts.len(),
                self.quarantined.len()
            )?;
        }
        for (id, why) in &self.invalidated {
            write!(f, "\n  {}: {why}", id.coords())?;
        }
        for (id, why) in &self.quarantined {
            write!(f, "\n  {} QUARANTINED: {why}", id.coords())?;
        }
        Ok(())
    }
}

/// Identity of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellId {
    /// Index into the plan's scenario list.
    pub scenario: usize,
    /// Index into the plan's seed replicates (0 when none were given).
    pub replicate: usize,
    /// The seed this cell ran under.
    pub seed: u64,
    /// Index into the plan's policy menu (0 for joint grids).
    pub policy: usize,
}

impl CellId {
    /// The cell's coordinate string `s<scenario>-r<replicate>-p<policy>`
    /// — the spelling used in artifact / lease / quarantine file names,
    /// health-journal items, reports and the `AOI_POISON_CELL` test hook.
    pub fn coords(&self) -> String {
        format!("s{}-r{}-p{}", self.scenario, self.replicate, self.policy)
    }
}

/// Parses a cell coordinate string (`s<S>-r<R>-p<P>`, the format
/// [`CellId::coords`] produces) into its `(scenario, replicate, policy)`
/// indices. `None` for anything malformed.
pub fn parse_cell_coords(spec: &str) -> Option<(usize, usize, usize)> {
    let rest = spec.trim().strip_prefix('s')?;
    let (scenario, rest) = rest.split_once("-r")?;
    let (replicate, policy) = rest.split_once("-p")?;
    Some((
        scenario.parse().ok()?,
        replicate.parse().ok()?,
        policy.parse().ok()?,
    ))
}

/// One cell's full single-run report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Which cell of the grid this is.
    pub id: CellId,
    /// Display label of the cell's policy.
    pub label: String,
    /// The underlying single-run report.
    pub outcome: CellOutcome,
}

/// A single-run report of whichever simulator the grid drives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellOutcome {
    /// Stage-1 cache-management run.
    Cache(CacheRunReport),
    /// Stage-2 content-service run.
    Service(ServiceRunReport),
    /// Joint two-stage run.
    Joint(JointReport),
}

impl CellOutcome {
    /// The stage-1 report, if this is a cache cell.
    pub fn cache(&self) -> Option<&CacheRunReport> {
        match self {
            CellOutcome::Cache(r) => Some(r),
            _ => None,
        }
    }

    /// The stage-2 report, if this is a service cell.
    pub fn service(&self) -> Option<&ServiceRunReport> {
        match self {
            CellOutcome::Service(r) => Some(r),
            _ => None,
        }
    }

    /// The joint report, if this is a joint cell.
    pub fn joint(&self) -> Option<&JointReport> {
        match self {
            CellOutcome::Joint(r) => Some(r),
            _ => None,
        }
    }

    /// The curve the paper plots for this workload: cumulative reward
    /// (cache and joint) or queue backlog (service).
    pub fn headline_curve(&self) -> &TimeSeries {
        match self {
            CellOutcome::Cache(r) => &r.cumulative_reward,
            CellOutcome::Service(r) => &r.queue,
            CellOutcome::Joint(r) => &r.cumulative_cache_reward,
        }
    }
}

/// Mean/CI aggregation of one `(scenario, policy)` group across its seed
/// replicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleSummary {
    /// Index into the plan's scenario list.
    pub scenario: usize,
    /// Index into the plan's policy menu — the group key to join cells on
    /// (labels drop policy parameters, so two parameterizations of one
    /// kind share a label but never a policy index).
    pub policy: usize,
    /// Display label of the policy (not necessarily unique per group).
    pub label: String,
    /// Per-slot mean and 95% CI band of the group's headline curves.
    pub curve: CurveSummary,
    /// Seed replicates missing from this ensemble because a claim-mode
    /// campaign quarantined their cells (see
    /// [`ExperimentPlan::max_attempts`]). Always 0 outside claim mode and
    /// on healthy campaigns; when non-zero,
    /// [`curve`](EnsembleSummary::curve) folds only the surviving
    /// replicates.
    pub quarantined: usize,
}

/// Everything a grid run produced: per-cell reports (in `cell_ids` order)
/// plus per-group ensemble summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// One full single-run report per cell.
    pub cells: Vec<CellReport>,
    /// One mean/CI summary per `(scenario, policy)` group.
    pub ensembles: Vec<EnsembleSummary>,
}

impl ExperimentReport {
    /// The cell at `(scenario, replicate, policy)`, if present.
    pub fn cell(&self, scenario: usize, replicate: usize, policy: usize) -> Option<&CellReport> {
        self.cells.iter().find(|c| {
            c.id.scenario == scenario && c.id.replicate == replicate && c.id.policy == policy
        })
    }

    /// The ensemble summary of `(scenario, policy index)`, if present.
    pub fn ensemble_at(&self, scenario: usize, policy: usize) -> Option<&EnsembleSummary> {
        self.ensembles
            .iter()
            .find(|e| e.scenario == scenario && e.policy == policy)
    }

    /// The first ensemble summary of `(scenario, policy-label)`, if any.
    ///
    /// Labels drop policy parameters (every `Lyapunov { v }` is
    /// `"lyapunov"`), so a plan sweeping parameters of one kind has
    /// several ensembles per label — use [`ensemble_at`] with the policy
    /// index to address a specific one.
    ///
    /// [`ensemble_at`]: ExperimentReport::ensemble_at
    pub fn ensemble(&self, scenario: usize, label: &str) -> Option<&EnsembleSummary> {
        self.ensembles
            .iter()
            .find(|e| e.scenario == scenario && e.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceLevel;

    fn tiny_cache() -> CacheScenario {
        CacheScenario {
            n_rsus: 2,
            regions_per_rsu: 2,
            age_cap: 5,
            max_age_min: 3,
            max_age_max: 4,
            horizon: 80,
            ..CacheScenario::default()
        }
    }

    #[test]
    fn cache_grid_shapes_and_order() {
        let plan = ExperimentPlan::cache(
            vec![tiny_cache()],
            vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
        )
        .replicate_seeds(vec![5, 6]);
        assert_eq!(plan.n_cells(), 4);
        let report = plan.run().unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.ensembles.len(), 2);
        // Report order: seed-major, then policy.
        assert_eq!(report.cells[0].id.seed, 5);
        assert_eq!(report.cells[1].id.policy, 1);
        assert_eq!(report.cells[2].id.seed, 6);
        let myopic = report.ensemble(0, "myopic").unwrap();
        assert_eq!(myopic.curve.replicates, 2);
        assert_eq!(myopic.curve.mean.len(), 80);
        // Myopic caching beats never-update on mean cumulative reward.
        let never = report.ensemble(0, "never").unwrap();
        assert!(myopic.curve.final_mean() > never.curve.final_mean());
    }

    #[test]
    fn cells_match_standalone_single_runs() {
        let plan = ExperimentPlan::cache(
            vec![tiny_cache()],
            vec![
                CachePolicyKind::ValueIteration { gamma: 0.9 },
                CachePolicyKind::Myopic,
            ],
        )
        .replicate_seeds(vec![11, 12]);
        let report = plan.run().unwrap();
        for cell in &report.cells {
            let mut scenario = tiny_cache();
            scenario.seed = cell.id.seed;
            let standalone = CacheSimulation::new(scenario).unwrap();
            let kind = [
                CachePolicyKind::ValueIteration { gamma: 0.9 },
                CachePolicyKind::Myopic,
            ][cell.id.policy];
            let want = standalone.run(kind).unwrap();
            assert_eq!(
                cell.outcome.cache().unwrap(),
                &want,
                "cell {:?} must equal its standalone run",
                cell.id
            );
        }
    }

    /// Batched lockstep grids must reproduce the unbatched grid bit for
    /// bit — cells, ensembles, everything — for every batch width,
    /// including widths that straddle replicate waves unevenly.
    #[test]
    fn batched_grid_reports_match_unbatched_bitwise() {
        let base = ExperimentPlan::cache(
            vec![tiny_cache()],
            vec![
                CachePolicyKind::Myopic,
                CachePolicyKind::Random { probability: 0.4 },
            ],
        )
        .replicate_seeds(vec![21, 22, 23, 24, 25])
        .recording(RecordingMode::SummaryOnly);
        let want = base.clone().run().unwrap();
        for batch in [2usize, 3, 5, 7] {
            let got = base.clone().batch(batch).run().unwrap();
            assert_eq!(got, want, "batch {batch}");
        }
    }

    /// A batched ensemble run with artifacts must leave a byte-identical
    /// artifact directory to a cold serial run of the same plan.
    #[test]
    fn batched_ensemble_artifacts_are_byte_identical() {
        let dir = std::env::temp_dir().join(format!("aoi-batch-grid-{}", std::process::id()));
        let serial_dir = dir.join("serial");
        let batched_dir = dir.join("batched");
        let base = ExperimentPlan::cache(
            vec![tiny_cache()],
            vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
        )
        .replicate_seeds(vec![31, 32, 33])
        .recording(RecordingMode::SummaryOnly);
        let want = base
            .clone()
            .artifact_dir(&serial_dir)
            .run_ensembles()
            .unwrap();
        let got = base
            .clone()
            .batch(2)
            .artifact_dir(&batched_dir)
            .run_ensembles()
            .unwrap();
        assert_eq!(got, want);
        let mut names: Vec<String> = std::fs::read_dir(&serial_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert!(!names.is_empty());
        for name in names {
            let a = std::fs::read(serial_dir.join(&name)).unwrap();
            let b = std::fs::read(batched_dir.join(&name)).unwrap();
            assert_eq!(a, b, "{name}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_seed_list_uses_scenario_seed() {
        let plan = ExperimentPlan::cache(vec![tiny_cache()], vec![CachePolicyKind::Never]);
        let report = plan.run().unwrap();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].id.seed, tiny_cache().seed);
    }

    #[test]
    fn service_grid_runs_shared_traces() {
        let scenario = ServiceScenario {
            horizon: 200,
            levels: ServiceLevel::standard_menu(),
            ..ServiceScenario::default()
        };
        let plan = ExperimentPlan::service(
            vec![scenario],
            vec![
                ServicePolicyKind::Lyapunov { v: 20.0 },
                ServicePolicyKind::AlwaysServe,
            ],
        )
        .replicate_seeds(vec![1, 2, 3]);
        let report = plan.run().unwrap();
        assert_eq!(report.cells.len(), 6);
        let lyap = report.ensemble(0, "lyapunov").unwrap();
        assert_eq!(lyap.curve.replicates, 3);
        assert_eq!(lyap.curve.mean.len(), 200);
        // Always-serve keeps the mean queue at or below Lyapunov's.
        let always = report.ensemble(0, "always-serve").unwrap();
        assert!(always.curve.mean.mean() <= lyap.curve.mean.mean() + 1e-9);
    }

    #[test]
    fn joint_grid_labels_embed_both_policies() {
        let scenario = JointScenario {
            network: vanet::NetworkConfig {
                n_regions: 4,
                n_rsus: 2,
                road_length_m: 800.0,
                ..vanet::NetworkConfig::default()
            },
            age_cap: 5,
            max_age_min: 3,
            max_age_max: 4,
            horizon: 60,
            warmup: 10,
            ..JointScenario::default()
        };
        let report = ExperimentPlan::joint(vec![scenario])
            .replicate_seeds(vec![7, 8])
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].label, "myopic+lyapunov");
        assert!(report.cells[0].outcome.joint().is_some());
        assert_eq!(report.ensembles.len(), 1);
    }

    #[test]
    fn empty_grids_are_rejected() {
        assert!(ExperimentPlan::cache(vec![], vec![CachePolicyKind::Never])
            .run()
            .is_err());
        assert!(ExperimentPlan::cache(vec![tiny_cache()], vec![])
            .run()
            .is_err());
        assert!(
            ExperimentPlan::service(vec![ServiceScenario::default()], vec![])
                .run()
                .is_err()
        );
    }

    #[test]
    fn parameter_sweeps_keep_distinct_ensembles() {
        // Two parameterizations of one kind share a label but must keep
        // separate, addressable ensembles.
        let plan = ExperimentPlan::cache(
            vec![tiny_cache()],
            vec![
                CachePolicyKind::Random { probability: 0.1 },
                CachePolicyKind::Random { probability: 0.9 },
            ],
        )
        .replicate_seeds(vec![1, 2]);
        let report = plan.run().unwrap();
        assert_eq!(report.ensembles.len(), 2);
        let lazy = report.ensemble_at(0, 0).unwrap();
        let eager = report.ensemble_at(0, 1).unwrap();
        assert_eq!(lazy.label, eager.label);
        assert_ne!(lazy.policy, eager.policy);
        // More updates ⇒ different curves; the two groups must not have
        // been merged.
        assert_ne!(
            lazy.curve.final_mean(),
            eager.curve.final_mean(),
            "distinct parameterizations must aggregate separately"
        );
        // The label lookup still resolves (to the first match).
        assert_eq!(report.ensemble(0, "random").unwrap().policy, 0);
    }

    #[test]
    fn recording_mode_threads_to_cells_without_changing_curves() {
        let plan = ExperimentPlan::cache(
            vec![tiny_cache()],
            vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
        )
        .replicate_seeds(vec![5, 6]);
        let full = plan.clone().run().unwrap();
        let lean = plan.recording(RecordingMode::SummaryOnly).run().unwrap();
        assert_eq!(full.ensembles, lean.ensembles, "ensembles are mode-free");
        for (a, b) in full.cells.iter().zip(&lean.cells) {
            let (a, b) = (a.outcome.cache().unwrap(), b.outcome.cache().unwrap());
            assert!(b.aoi_traces.iter().all(|t| t.is_empty()));
            assert_eq!(a.aoi_summaries, b.aoi_summaries);
            assert_eq!(a.cumulative_reward, b.cumulative_reward);
            assert_eq!(a.updates, b.updates);
        }
    }

    #[test]
    fn streamed_ensembles_match_batch_run() {
        let plan = ExperimentPlan::cache(
            vec![tiny_cache()],
            vec![
                CachePolicyKind::ValueIteration { gamma: 0.9 },
                CachePolicyKind::Myopic,
            ],
        )
        .replicate_seeds(vec![11, 12, 13]);
        let batch = plan.clone().run().unwrap();
        let streamed = plan.clone().run_ensembles().unwrap();
        assert_eq!(
            batch.ensembles, streamed,
            "streaming must not change results"
        );
        // Also identical under summary-only cells and forced-serial execution.
        let lean = plan
            .clone()
            .recording(RecordingMode::SummaryOnly)
            .workers(1)
            .run_ensembles()
            .unwrap();
        assert_eq!(batch.ensembles, lean);
    }

    #[test]
    fn streamed_ensembles_cover_service_and_joint_grids() {
        let service = ExperimentPlan::service(
            vec![ServiceScenario {
                horizon: 120,
                ..ServiceScenario::default()
            }],
            vec![ServicePolicyKind::AlwaysServe],
        )
        .replicate_seeds(vec![1, 2]);
        assert_eq!(
            service.run().unwrap().ensembles,
            service.run_ensembles().unwrap()
        );
        let joint = ExperimentPlan::joint(vec![JointScenario {
            network: vanet::NetworkConfig {
                n_regions: 4,
                n_rsus: 2,
                road_length_m: 800.0,
                ..vanet::NetworkConfig::default()
            },
            age_cap: 5,
            max_age_min: 3,
            max_age_max: 4,
            horizon: 50,
            warmup: 10,
            ..JointScenario::default()
        }])
        .replicate_seeds(vec![7, 8])
        .recording(RecordingMode::SummaryOnly);
        assert_eq!(
            joint.run().unwrap().ensembles,
            joint.run_ensembles().unwrap()
        );
    }

    #[test]
    fn cell_accessors() {
        let plan = ExperimentPlan::cache(vec![tiny_cache()], vec![CachePolicyKind::Never])
            .replicate_seeds(vec![1]);
        let report = plan.run().unwrap();
        assert!(report.cell(0, 0, 0).is_some());
        assert!(report.cell(0, 1, 0).is_none());
        let cell = report.cell(0, 0, 0).unwrap();
        assert!(cell.outcome.service().is_none());
        assert!(cell.outcome.joint().is_none());
        assert_eq!(cell.outcome.headline_curve().len(), 80);
    }
}
