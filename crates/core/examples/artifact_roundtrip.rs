//! CI smoke for the artifact round trip: a small `ExperimentPlan` run
//! once in memory and once with an artifact directory, asserting that
//! (a) the reports agree on every non-trace field, (b) every spilled
//! cell artifact re-reads **bit-identically** to the in-memory cell's
//! traces, and (c) every ensemble artifact re-reads bit-identically to
//! the in-memory ensemble curves. CI executes this example both with the
//! `parallel` feature and under `--no-default-features`, so both executor
//! paths cover the spilling code.
//!
//! ```sh
//! cargo run --release -p aoi-cache --example artifact_roundtrip
//! cargo run --release -p aoi-cache --example artifact_roundtrip --no-default-features
//! ```

use aoi_cache::persist::read_artifact;
use aoi_cache::presets::smoke_grid;
use aoi_cache::ExperimentPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let feature = if cfg!(feature = "parallel") {
        "parallel"
    } else {
        "serial (no default features)"
    };
    println!("artifact round-trip smoke [{feature}]");

    let dir = std::env::temp_dir().join(format!("aoi-artifact-smoke-{}", std::process::id()));
    let in_memory = smoke_grid().run()?;
    let spilled = smoke_grid().artifact_dir(&dir).run()?;

    // The grid's results must not depend on whether artifacts were written.
    assert_eq!(spilled.ensembles, in_memory.ensembles, "ensembles differ");
    let mut samples = 0usize;
    for (got, want) in spilled.cells.iter().zip(&in_memory.cells) {
        let (got, want) = (got.outcome.cache().unwrap(), want.outcome.cache().unwrap());
        assert!(
            got.aoi_traces.iter().all(|t| t.is_empty()),
            "spilling cells must retain no traces in memory"
        );
        assert_eq!(got.aoi_summaries, want.aoi_summaries, "summaries differ");
        assert_eq!(got.cumulative_reward, want.cumulative_reward);
        samples += want.aoi_traces.iter().map(|t| t.len()).sum::<usize>();
    }

    // Diff every cell artifact against the in-memory report, bit by bit.
    for cell in &in_memory.cells {
        let path = ExperimentPlan::cell_artifact_path(&dir, cell.id);
        let artifact = read_artifact(&path)?;
        let want = cell.outcome.cache().unwrap();
        for (k, trace) in want.aoi_traces.iter().enumerate() {
            assert_eq!(
                &artifact.channels[k].series, trace,
                "cell {:?} channel {k} not bit-identical",
                cell.id
            );
            assert_eq!(artifact.channels[k].summary, Some(want.aoi_summaries[k]));
        }
    }
    for ensemble in &in_memory.ensembles {
        let path = ExperimentPlan::ensemble_artifact_path(&dir, ensemble.scenario, ensemble.policy);
        let artifact = read_artifact(&path)?;
        assert_eq!(
            artifact.curves[0].curve, ensemble.curve,
            "ensemble {} not bit-identical",
            ensemble.label
        );
    }

    std::fs::remove_dir_all(&dir)?;
    println!(
        "OK: {} cells ({samples} trace samples) and {} ensembles spilled, \
         re-read and diffed bit-identically",
        in_memory.cells.len(),
        in_memory.ensembles.len()
    );
    Ok(())
}
