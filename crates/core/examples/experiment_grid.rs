//! CI smoke grid: a small `ExperimentPlan` (2 cache policies × 2 seeds)
//! run twice — serial and with a forced 4-worker fan-out — asserting the
//! two reports are bit-identical. CI executes this example both with the
//! `parallel` feature and under `--no-default-features`, so both executor
//! paths stay green.
//!
//! ```sh
//! cargo run -p aoi-cache --example experiment_grid
//! cargo run -p aoi-cache --example experiment_grid --no-default-features
//! ```

use aoi_cache::presets::smoke_grid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let feature = if cfg!(feature = "parallel") {
        "parallel"
    } else {
        "serial (no default features)"
    };
    println!("experiment-grid smoke [{feature}]");

    let serial = smoke_grid().workers(1).run()?;
    let pooled = smoke_grid().workers(4).run()?;
    assert_eq!(
        serial, pooled,
        "grid reports must be bit-identical for any worker count"
    );

    assert_eq!(serial.cells.len(), 4, "2 policies × 2 seeds");
    assert_eq!(serial.ensembles.len(), 2);
    for ensemble in &serial.ensembles {
        println!(
            "  {:<10} final cumulative reward {:>9.2} ± {:.2} (95% CI, n={})",
            ensemble.label,
            ensemble.curve.final_mean(),
            ensemble.curve.final_ci_half_width(),
            ensemble.curve.replicates,
        );
    }
    let vi = serial.ensemble(0, "mdp-vi").expect("vi ensemble");
    let myopic = serial.ensemble(0, "myopic").expect("myopic ensemble");
    assert!(
        vi.curve.final_mean() >= myopic.curve.final_mean(),
        "the exact MDP policy must not trail the myopic baseline"
    );
    println!("ok: serial and 4-worker grids agree bit-for-bit");
    Ok(())
}
