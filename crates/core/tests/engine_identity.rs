//! Driver-vs-core identity suite.
//!
//! The stage-1/stage-2 engine cores ([`aoi_cache::RsuCacheEngine`],
//! [`aoi_cache::RsuServiceEngine`]) were extracted out of the monolithic
//! simulation loops; the acceptance bar for that refactor is **bit
//! identity**, pinned here three ways:
//!
//! 1. *Goldens* — report fields captured from the pre-refactor simulator
//!    (exact `f64` bit patterns and a trace checksum) must still fall out
//!    of today's [`CacheSimulation::run`] and [`run_joint`]. Any change to
//!    RNG draw order, `f64` operation order, or accounting breaks these.
//! 2. *Hand-rolled driver* — a test-local slot loop over the public engine
//!    core API ([`CacheSimulation::cache_engines`]) must reproduce the
//!    built-in driver's report bit for bit, proving the driver is nothing
//!    but `decide → refresh → account → advance` glue with no hidden
//!    state of its own.
//! 3. *Driver variants* — recording modes and batch widths change trace
//!    retention and scheduling, never results.
//!
//! The whole suite is feature-free on purpose: CI runs it under both
//! `--features parallel` and `--no-default-features`, so an executor that
//! perturbed results would fail here, not in a downstream experiment.

use aoi_cache::{
    run_batch, run_joint, CachePolicyKind, CacheRunReport, CacheScenario, CacheSimulation,
    JointScenario, RecordingMode, ServicePolicyKind,
};
use simkit::{SeedSequence, TimeSeries};
use vanet::NetworkConfig;

/// Order-sensitive checksum over the exact bit patterns of a series.
fn series_checksum(series: &TimeSeries) -> u64 {
    let mut acc = 0u64;
    for p in series.iter() {
        acc = acc.wrapping_mul(31).wrapping_add(p.value.to_bits());
    }
    acc
}

/// Same checksum over a raw sample vector (for the hand-rolled driver).
fn values_checksum(values: &[f64]) -> u64 {
    let mut acc = 0u64;
    for v in values {
        acc = acc.wrapping_mul(31).wrapping_add(v.to_bits());
    }
    acc
}

/// The scenario the goldens were captured under (pre-refactor commit).
fn golden_cache_scenario() -> CacheScenario {
    CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 3,
        age_cap: 6,
        max_age_min: 3,
        max_age_max: 5,
        horizon: 250,
        seed: 11,
        ..CacheScenario::default()
    }
}

/// One pre-refactor cache-run golden: counters plus exact `f64` bits.
struct CacheGolden {
    kind: CachePolicyKind,
    updates: u64,
    violations: u64,
    cumulative_bits: u64,
    ratio_bits: u64,
    utility_bits: u64,
    cost_bits: u64,
    series: u64,
}

const CACHE_GOLDENS: &[CacheGolden] = &[
    CacheGolden {
        kind: CachePolicyKind::ValueIteration { gamma: 0.9 },
        updates: 500,
        violations: 1,
        cumulative_bits: 0x4093d0227ade512a,
        ratio_bits: 0x3fe048e8a71de698,
        utility_bits: 0x401649ddacebd833,
        cost_bits: 0x3fe0000000000000,
        series: 0x6601eb911224af63,
    },
    CacheGolden {
        kind: CachePolicyKind::Myopic,
        updates: 500,
        violations: 993,
        cumulative_bits: 0x40927613c5f63a8e,
        ratio_bits: 0x3ff05990dca34b64,
        utility_bits: 0x4014e780cab68197,
        cost_bits: 0x3fe0000000000000,
        series: 0xbf7b854cfff9044e,
    },
    CacheGolden {
        kind: CachePolicyKind::Random { probability: 0.3 },
        updates: 161,
        violations: 906,
        cumulative_bits: 0x4084038387437180,
        ratio_bits: 0x3ff10e560418938e,
        utility_bits: 0x4005c834c3da90dd,
        cost_bits: 0x3fc49ba5e353f7cf,
        series: 0x6256727bc9d8a4cf,
    },
];

#[test]
fn cache_reports_match_pre_refactor_goldens() {
    let sim = CacheSimulation::new(golden_cache_scenario()).expect("valid scenario");
    for golden in CACHE_GOLDENS {
        let r = sim.run(golden.kind).expect("run succeeds");
        let label = golden.kind.label();
        assert_eq!(r.updates, golden.updates, "{label}: updates");
        assert_eq!(
            r.violation_content_slots, golden.violations,
            "{label}: violations"
        );
        assert_eq!(
            r.final_cumulative_reward().to_bits(),
            golden.cumulative_bits,
            "{label}: cumulative reward bits"
        );
        assert_eq!(
            r.mean_aoi_ratio.to_bits(),
            golden.ratio_bits,
            "{label}: mean AoI ratio bits"
        );
        assert_eq!(
            r.mean_utility.to_bits(),
            golden.utility_bits,
            "{label}: mean utility bits"
        );
        assert_eq!(
            r.mean_cost.to_bits(),
            golden.cost_bits,
            "{label}: mean cost bits"
        );
        assert_eq!(
            series_checksum(&r.reward),
            golden.series,
            "{label}: reward series checksum"
        );
    }
}

#[test]
fn joint_reports_match_pre_refactor_goldens() {
    let network = NetworkConfig {
        n_regions: 6,
        n_rsus: 2,
        road_length_m: 1200.0,
        ..NetworkConfig::default()
    };
    let base = JointScenario {
        network,
        age_cap: 6,
        max_age_min: 3,
        max_age_max: 5,
        horizon: 400,
        warmup: 30,
        seed: 5,
        ..JointScenario::default()
    };
    let mut vi = base.clone();
    vi.cache_policy = CachePolicyKind::ValueIteration { gamma: 0.9 };
    vi.service_policy = ServicePolicyKind::AlwaysServe;

    struct JointGolden<'a> {
        scenario: &'a JointScenario,
        requests: u64,
        stale: u64,
        updates: u64,
        queue_bits: u64,
        svc_bits: u64,
        upd_bits: u64,
        stale_cost_bits: u64,
        series: u64,
    }
    let cases = [
        JointGolden {
            scenario: &base,
            requests: 8340,
            stale: 1868,
            updates: 607,
            queue_bits: 0x4024ea3d70a3d70a,
            svc_bits: 0x40174f5c28f5c28f,
            upd_bits: 0x3ff847ae147ae148,
            stale_cost_bits: 0x4012ae147ae147ae,
            series: 0x755a70ad82c85db8,
        },
        JointGolden {
            scenario: &vi,
            requests: 8340,
            stale: 370,
            updates: 800,
            queue_bits: 0x4024d9999999999a,
            svc_bits: 0x4018000000000000,
            upd_bits: 0x4000000000000000,
            stale_cost_bits: 0x3fed99999999999a,
            series: 0x6385c26fb7e3e93f,
        },
    ];
    for JointGolden {
        scenario,
        requests,
        stale,
        updates,
        queue_bits: queue,
        svc_bits: svc,
        upd_bits: upd,
        stale_cost_bits: stale_cost,
        series,
    } in cases
    {
        let r = run_joint(scenario).expect("joint run succeeds");
        let label = scenario.cache_policy.label();
        assert_eq!(r.total_requests, requests, "{label}: requests");
        assert_eq!(r.stale_requests, stale, "{label}: stale requests");
        assert_eq!(r.updates, updates, "{label}: updates");
        assert_eq!(r.mean_queue.to_bits(), queue, "{label}: mean queue bits");
        assert_eq!(
            r.mean_service_cost.to_bits(),
            svc,
            "{label}: service cost bits"
        );
        assert_eq!(
            r.mean_update_cost.to_bits(),
            upd,
            "{label}: update cost bits"
        );
        assert_eq!(
            r.mean_stale_cost.to_bits(),
            stale_cost,
            "{label}: stale cost bits"
        );
        assert_eq!(
            series_checksum(&r.cache_reward),
            series,
            "{label}: cache reward series checksum"
        );
    }
}

/// What the hand-rolled driver accumulates; mirrors the report fields the
/// built-in driver derives from its slot loop.
struct DriverTally {
    updates: u64,
    violations: u64,
    aoi_ratio_sum: f64,
    utility_sum: f64,
    cost_sum: f64,
    rewards: Vec<f64>,
}

/// Re-implements the simulate driver from scratch against the public
/// engine-core API: same RNG stream (`SeedSequence` label `"run"`), same
/// per-slot statement order (per-RSU decide → refresh → Eq. 1 accounting
/// → per-content AoI bookkeeping, then one synchronized `advance`).
fn hand_rolled_drive(sim: &CacheSimulation, kind: CachePolicyKind) -> DriverTally {
    let scenario = sim.scenario();
    let mut engines = sim.cache_engines(kind).expect("engines assemble");
    let mut rng = SeedSequence::new(scenario.seed).rng("run");
    let mut tally = DriverTally {
        updates: 0,
        violations: 0,
        aoi_ratio_sum: 0.0,
        utility_sum: 0.0,
        cost_sum: 0.0,
        rewards: Vec::with_capacity(scenario.horizon),
    };
    for t in 0..scenario.horizon {
        let now = simkit::TimeSlot::new(t as u64);
        let mut slot_reward = 0.0;
        for (engine, spec) in engines.iter_mut().zip(sim.specs()) {
            let decision = engine.decide_static(now, &spec.popularity, &mut rng);
            if let Some(h) = decision {
                engine.apply_refresh(h).expect("in-range content");
                tally.updates += 1;
            }
            let utility = engine.aoi_utility(&spec.popularity);
            let cost = engine.action_cost(decision.is_some());
            slot_reward += spec.weight * utility - cost;
            tally.utility_sum += spec.weight * utility;
            tally.cost_sum += cost;
            for h in 0..engine.contents() {
                let age = engine.age(h);
                let max_age = spec.max_ages[h];
                tally.aoi_ratio_sum += age.ratio_to(max_age);
                if age.exceeds(max_age) {
                    tally.violations += 1;
                }
            }
        }
        tally.rewards.push(slot_reward);
        for engine in &mut engines {
            engine.advance();
        }
    }
    tally
}

#[test]
fn hand_rolled_driver_reproduces_run_bit_for_bit() {
    let sim = CacheSimulation::new(golden_cache_scenario()).expect("valid scenario");
    // Random consumes the run RNG every slot; VI never touches it. Both
    // must agree with the built-in driver, proving the stream handling is
    // in the policies/engines, not the driver.
    for kind in [
        CachePolicyKind::ValueIteration { gamma: 0.9 },
        CachePolicyKind::Random { probability: 0.3 },
        CachePolicyKind::Myopic,
    ] {
        let report = sim.run(kind).expect("run succeeds");
        let tally = hand_rolled_drive(&sim, kind);
        let label = kind.label();
        assert_eq!(tally.updates, report.updates, "{label}: updates");
        assert_eq!(
            tally.violations, report.violation_content_slots,
            "{label}: violations"
        );
        let content_slots = report.content_slots as f64;
        let horizon = report.horizon as f64;
        assert_eq!(
            (tally.aoi_ratio_sum / content_slots).to_bits(),
            report.mean_aoi_ratio.to_bits(),
            "{label}: mean AoI ratio"
        );
        assert_eq!(
            (tally.utility_sum / horizon).to_bits(),
            report.mean_utility.to_bits(),
            "{label}: mean utility"
        );
        assert_eq!(
            (tally.cost_sum / horizon).to_bits(),
            report.mean_cost.to_bits(),
            "{label}: mean cost"
        );
        assert_eq!(
            values_checksum(&tally.rewards),
            series_checksum(&report.reward),
            "{label}: reward series"
        );
        let cumulative: f64 = {
            let mut acc = 0.0;
            for v in &tally.rewards {
                acc += v;
            }
            acc
        };
        assert_eq!(
            cumulative.to_bits(),
            report.final_cumulative_reward().to_bits(),
            "{label}: cumulative reward"
        );
    }
}

/// Everything two reports must share for us to call them identical:
/// every scalar compared on exact bits, every retained trace compared by
/// order-sensitive checksum, every streaming summary field-by-field.
fn assert_reports_identical(a: &CacheRunReport, b: &CacheRunReport, what: &str) {
    assert_eq!(a.updates, b.updates, "{what}: updates");
    assert_eq!(
        a.violation_content_slots, b.violation_content_slots,
        "{what}: violations"
    );
    assert_eq!(a.content_slots, b.content_slots, "{what}: content slots");
    assert_eq!(
        a.mean_aoi_ratio.to_bits(),
        b.mean_aoi_ratio.to_bits(),
        "{what}: mean AoI ratio"
    );
    assert_eq!(
        a.mean_utility.to_bits(),
        b.mean_utility.to_bits(),
        "{what}: mean utility"
    );
    assert_eq!(
        a.mean_cost.to_bits(),
        b.mean_cost.to_bits(),
        "{what}: mean cost"
    );
    assert_eq!(
        series_checksum(&a.reward),
        series_checksum(&b.reward),
        "{what}: reward series"
    );
    assert_eq!(
        series_checksum(&a.cumulative_reward),
        series_checksum(&b.cumulative_reward),
        "{what}: cumulative reward series"
    );
    assert_eq!(
        a.aoi_summaries.len(),
        b.aoi_summaries.len(),
        "{what}: summary count"
    );
    for (i, (sa, sb)) in a.aoi_summaries.iter().zip(&b.aoi_summaries).enumerate() {
        assert_eq!(sa.count, sb.count, "{what}: summary {i} count");
        assert_eq!(
            sa.mean.to_bits(),
            sb.mean.to_bits(),
            "{what}: summary {i} mean"
        );
        assert_eq!(
            sa.std_dev.to_bits(),
            sb.std_dev.to_bits(),
            "{what}: summary {i} std dev"
        );
        assert_eq!(
            sa.min.map(f64::to_bits),
            sb.min.map(f64::to_bits),
            "{what}: summary {i} min"
        );
        assert_eq!(
            sa.max.map(f64::to_bits),
            sb.max.map(f64::to_bits),
            "{what}: summary {i} max"
        );
        assert_eq!(
            sa.sum.to_bits(),
            sb.sum.to_bits(),
            "{what}: summary {i} sum"
        );
    }
}

#[test]
fn recording_modes_change_retention_never_results() {
    let scenario = golden_cache_scenario();
    let kind = CachePolicyKind::Random { probability: 0.3 };
    let full = CacheSimulation::new(scenario)
        .expect("valid scenario")
        .with_recording(RecordingMode::Full)
        .run(kind)
        .expect("full run");
    for mode in [RecordingMode::Decimate(10), RecordingMode::SummaryOnly] {
        let other = CacheSimulation::new(scenario)
            .expect("valid scenario")
            .with_recording(mode)
            .run(kind)
            .expect("run");
        assert_reports_identical(&full, &other, &format!("{mode:?} vs Full"));
    }
    // The retention itself must actually differ — otherwise the test above
    // compared a mode against itself.
    let decimated = CacheSimulation::new(scenario)
        .expect("valid scenario")
        .with_recording(RecordingMode::Decimate(10))
        .run(kind)
        .expect("run");
    assert!(decimated.aoi_traces[0].len() < full.aoi_traces[0].len());
    let summary_only = CacheSimulation::new(scenario)
        .expect("valid scenario")
        .with_recording(RecordingMode::SummaryOnly)
        .run(kind)
        .expect("run");
    assert_eq!(summary_only.aoi_traces[0].len(), 0);
}

#[test]
fn batch_widths_change_scheduling_never_results() {
    let base = golden_cache_scenario();
    let sims: Vec<CacheSimulation> = (0..5u64)
        .map(|i| {
            CacheSimulation::new(CacheScenario {
                seed: base.seed + i,
                ..base
            })
            .expect("valid scenario")
        })
        .collect();
    let kind = CachePolicyKind::Random { probability: 0.3 };
    let serial: Vec<CacheRunReport> = sims.iter().map(|s| s.run(kind).expect("run")).collect();
    for width in [1usize, 2, 5] {
        let refs: Vec<&CacheSimulation> = sims.iter().collect();
        let mut batched = Vec::new();
        for chunk in refs.chunks(width) {
            batched.extend(run_batch(chunk, kind).expect("batch run"));
        }
        for (i, (a, b)) in serial.iter().zip(&batched).enumerate() {
            assert_reports_identical(a, b, &format!("width {width}, replicate {i}"));
        }
    }
}
