//! Crash-safety suite for the distributed campaign runner: lease-claimed
//! grids must be **bit-identical** to a cold single-process run no matter
//! how the cells are partitioned across workers, stale leases of dead
//! workers must be taken over, and cells completed by other workers must
//! be counted as stolen — never recomputed into a conflicting artifact.

use aoi_cache::{CachePolicyKind, CacheScenario, ExperimentPlan};
use simkit::lease::{self, Claim};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A unique scratch directory per call; removed by each test on success.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aoi-crash-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_cache() -> CacheScenario {
    CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 2,
        age_cap: 5,
        max_age_min: 3,
        max_age_max: 4,
        horizon: 60,
        ..CacheScenario::default()
    }
}

/// The shared 2-policy × 3-replicate grid (6 cells, 2 ensembles).
fn plan(dir: &Path) -> ExperimentPlan {
    ExperimentPlan::cache(
        vec![tiny_cache()],
        vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
    )
    .replicate_seeds(vec![5, 6, 7])
    .artifact_dir(dir)
}

fn claim_plan(dir: &Path, worker: &str) -> ExperimentPlan {
    plan(dir).resume(true).claim(true).worker_id(worker)
}

/// Artifact files under `dir` (leases and temporaries excluded), re-read
/// into comparable form.
fn read_dir_artifacts(dir: &Path) -> Vec<(String, aoi_cache::persist::Artifact)> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy();
            // Health journals and quarantine markers are worker telemetry,
            // not run artifacts — a campaign dir carries them legitimately.
            (name.ends_with(".jsonl") || name.ends_with(".jsonl.z"))
                && !simkit::supervise::is_journal_name(&name)
                && !simkit::supervise::is_quarantine_name(&name)
        })
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().to_string();
            (name, aoi_cache::persist::read_artifact(&p).unwrap())
        })
        .collect()
}

/// Lease files left under `dir`.
fn leftover_leases(dir: &Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().to_string())
        .filter(|n| n.ends_with(".lease"))
        .collect()
}

#[test]
fn single_worker_campaign_is_bit_identical_to_cold_run() {
    let cold_dir = scratch_dir("cold");
    let (cold, _) = plan(&cold_dir).run_ensembles_resumable().unwrap();
    let cold_files = read_dir_artifacts(&cold_dir);

    let dir = scratch_dir("claimed");
    let (claimed, report) = claim_plan(&dir, "w1").run_ensembles_resumable().unwrap();
    assert_eq!(claimed, cold, "claimed campaign must match the cold run");
    assert_eq!(read_dir_artifacts(&dir), cold_files, "artifact bytes too");
    assert_eq!(report.claimed.len(), 6, "{report}");
    assert_eq!(report.recomputed.len(), 6);
    assert!(report.expired.is_empty());
    assert!(report.stolen.is_empty());
    assert!(leftover_leases(&dir).is_empty(), "all leases released");
    let text = report.to_string();
    assert!(text.contains("claimed"), "{text}");

    // Warm second pass: everything skips, nothing is claimed.
    let (warm, report) = claim_plan(&dir, "w1").run_ensembles_resumable().unwrap();
    assert_eq!(warm, cold);
    assert!(report.is_warm(), "{report}");
    assert!(report.claimed.is_empty());
    std::fs::remove_dir_all(&cold_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Two workers sharing one directory partition the grid between them:
/// claimed sets are disjoint, every cell lands exactly once, and both
/// workers report ensembles bit-identical to a cold single-process run.
#[test]
fn concurrent_workers_partition_the_grid_without_conflicts() {
    let cold_dir = scratch_dir("cold");
    let (cold, _) = plan(&cold_dir).run_ensembles_resumable().unwrap();
    let cold_files = read_dir_artifacts(&cold_dir);

    let dir = scratch_dir("shared");
    let (a, b) = std::thread::scope(|scope| {
        let dir_a = dir.clone();
        let dir_b = dir.clone();
        let ha = scope.spawn(move || {
            claim_plan(&dir_a, "worker-a")
                .run_ensembles_resumable()
                .unwrap()
        });
        let hb = scope.spawn(move || {
            claim_plan(&dir_b, "worker-b")
                .run_ensembles_resumable()
                .unwrap()
        });
        (ha.join().unwrap(), hb.join().unwrap())
    });

    let (ensembles_a, report_a) = a;
    let (ensembles_b, report_b) = b;
    assert_eq!(ensembles_a, cold, "worker A: {report_a}");
    assert_eq!(ensembles_b, cold, "worker B: {report_b}");
    assert_eq!(read_dir_artifacts(&dir), cold_files, "artifact bytes too");
    assert!(leftover_leases(&dir).is_empty());

    // No cell is claimed by both workers (the leases arbitrated), and
    // every cell is accounted exactly once per worker.
    for id in &report_a.claimed {
        assert!(
            !report_b.claimed.contains(id),
            "cell {id:?} claimed by both workers"
        );
    }
    assert_eq!(report_a.n_cells(), 6, "{report_a}");
    assert_eq!(report_b.n_cells(), 6, "{report_b}");
    assert_eq!(
        report_a.claimed.len() + report_b.claimed.len(),
        6,
        "every cell computed exactly once: {report_a} / {report_b}"
    );
    std::fs::remove_dir_all(&cold_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A SIGKILLed worker leaves an expired lease and no artifact: the next
/// worker takes the lease over (reported in `expired`) and recomputes the
/// cell, converging on the cold run's bytes.
#[test]
fn stale_lease_of_dead_worker_is_taken_over() {
    let cold_dir = scratch_dir("cold");
    let (cold, _) = plan(&cold_dir).run_ensembles_resumable().unwrap();

    let dir = scratch_dir("stale");
    // Fabricate the dead worker: a lease claimed far in the past whose
    // guard is abandoned (SIGKILL runs no destructors).
    let plan_probe = plan(&dir);
    let stale_cell = plan_probe.cell_ids()[0];
    let lease_path = ExperimentPlan::cell_lease_path(&dir, stale_cell);
    let ttl = Duration::from_millis(1_000);
    match lease::claim_at(&lease_path, "dead-worker", ttl, lease::wall_ms() - 60_000).unwrap() {
        Claim::Acquired(guard) => guard.abandon(),
        other => panic!("expected Acquired, got {other:?}"),
    }
    assert!(lease_path.exists());

    let (claimed, report) = claim_plan(&dir, "survivor")
        .run_ensembles_resumable()
        .unwrap();
    assert_eq!(claimed, cold);
    assert!(
        report.expired.contains(&stale_cell),
        "takeover must be reported: {report}"
    );
    assert!(report.claimed.contains(&stale_cell));
    assert!(leftover_leases(&dir).is_empty());
    let text = report.to_string();
    assert!(text.contains("expired leases"), "{text}");
    std::fs::remove_dir_all(&cold_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A cell held by another live worker is never recomputed: this worker
/// waits, observes the finished artifact, and counts the cell as stolen.
#[test]
fn cell_completed_by_another_worker_counts_as_stolen() {
    let cold_dir = scratch_dir("cold");
    let (cold, _) = plan(&cold_dir).run_ensembles_resumable().unwrap();

    let dir = scratch_dir("stolen");
    let plan_probe = plan(&dir);
    let held_cell = plan_probe.cell_ids()[0];
    let lease_path = ExperimentPlan::cell_lease_path(&dir, held_cell);
    let cell_file = ExperimentPlan::cell_artifact_path(&dir, held_cell);
    let cold_cell = ExperimentPlan::cell_artifact_path(&cold_dir, held_cell);

    // The "other worker": holds the lease, finishes its cell after a
    // while (bytes borrowed from the cold run — cells are deterministic,
    // so this is exactly what it would compute), then releases.
    let guard = match lease::claim(&lease_path, "other-worker", Duration::from_secs(30)).unwrap() {
        Claim::Acquired(g) => g,
        other => panic!("expected Acquired, got {other:?}"),
    };
    let other = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let tmp = aoi_cache::persist::tmp_path(&cell_file);
        std::fs::copy(&cold_cell, &tmp).unwrap();
        std::fs::rename(&tmp, &cell_file).unwrap();
        guard.release().unwrap();
    });

    // Short TTL so the waiting worker polls quickly; the lease is
    // heartbeat-free but released long before it could expire.
    let (claimed, report) = claim_plan(&dir, "waiter")
        .lease_ttl_ms(2_000)
        .run_ensembles_resumable()
        .unwrap();
    other.join().unwrap();
    assert_eq!(claimed, cold);
    assert!(
        report.stolen.contains(&held_cell),
        "the waited-out cell must be reported stolen: {report}"
    );
    assert!(
        !report.claimed.contains(&held_cell),
        "a stolen cell was never claimed here: {report}"
    );
    assert_eq!(report.claimed.len(), 5);
    let text = report.to_string();
    assert!(text.contains("stolen"), "{text}");
    std::fs::remove_dir_all(&cold_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn claim_misconfigurations_are_rejected() {
    let dir = scratch_dir("reject");
    // claim without resume.
    assert!(plan(&dir).claim(true).run_ensembles().is_err());
    // claim without an artifact directory.
    let bare = ExperimentPlan::cache(vec![tiny_cache()], vec![CachePolicyKind::Never])
        .resume(true)
        .claim(true);
    assert!(bare.run_ensembles().is_err());
    // A zero TTL would make every lease expired on arrival.
    assert!(claim_plan(&dir, "w")
        .lease_ttl_ms(0)
        .run_ensembles()
        .is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
