//! Supervision suite for the claim-mode campaign engine: a cell that
//! panics on every attempt must be **quarantined** after exactly the
//! retry budget — the rest of the campaign completing bit-identically to
//! a cold run, with no leaked lease, a parseable quarantine marker, a
//! health journal accounting every claim/retry/quarantine, and a resume
//! report that owns up to the gap. A relaunch without the poison must
//! then heal the campaign completely.
//!
//! Lives in its own integration-test binary: the `AOI_POISON_CELL` hook
//! is process-global, and this file's tests own it outright.

use aoi_cache::{CachePolicyKind, CacheScenario, ExperimentPlan};
use simkit::supervise::{self, EventKind};
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aoi-supervise-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_cache() -> CacheScenario {
    CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 2,
        age_cap: 5,
        max_age_min: 3,
        max_age_max: 4,
        horizon: 60,
        ..CacheScenario::default()
    }
}

/// The shared 2-policy × 3-replicate grid (6 cells, 2 ensembles).
fn plan(dir: &Path) -> ExperimentPlan {
    ExperimentPlan::cache(
        vec![tiny_cache()],
        vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
    )
    .replicate_seeds(vec![5, 6, 7])
    .artifact_dir(dir)
}

fn claim_plan(dir: &Path, worker: &str) -> ExperimentPlan {
    plan(dir).resume(true).claim(true).worker_id(worker)
}

fn file_names(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
        .collect();
    names.sort();
    names
}

#[test]
fn poisoned_cell_quarantines_after_exact_budget_and_the_rest_completes() {
    let cold_dir = scratch_dir("cold");
    let (cold, _) = plan(&cold_dir).run_ensembles_resumable().unwrap();

    // The poisoned cell: scenario 0, replicate 1 (seed 6), Myopic.
    let dir = scratch_dir("poison");
    let poison = plan(&dir)
        .cell_ids()
        .into_iter()
        .find(|id| id.replicate == 1 && id.policy == 0)
        .unwrap();
    assert_eq!(poison.coords(), "s0-r1-p0");
    std::env::set_var("AOI_POISON_CELL", poison.coords());
    let (ensembles, report) = claim_plan(&dir, "sup")
        .max_attempts(3)
        .lease_ttl_ms(2_000) // small TTL => short retry backoffs
        .run_ensembles_resumable()
        .unwrap();
    std::env::remove_var("AOI_POISON_CELL");

    // The gap is owned, with the panic message, after exactly 3 tries.
    assert_eq!(report.quarantined.len(), 1, "{report}");
    let (qid, why) = &report.quarantined[0];
    assert_eq!(*qid, poison);
    assert!(why.contains("poisoned by AOI_POISON_CELL"), "{why}");
    assert_eq!(report.attempts, vec![(poison, 3)], "{report}");
    let text = report.to_string();
    assert!(text.contains("QUARANTINED"), "{text}");
    assert!(
        text.contains("supervision: 1 retried, 1 quarantined"),
        "{text}"
    );

    // Every other cell completed bit-identically to the cold run.
    for id in plan(&dir).cell_ids() {
        let mine = ExperimentPlan::cell_artifact_path(&dir, id);
        let colds = ExperimentPlan::cell_artifact_path(&cold_dir, id);
        if id == poison {
            assert!(!mine.exists(), "a quarantined cell leaves no artifact");
        } else {
            assert_eq!(
                std::fs::read(&mine).unwrap(),
                std::fs::read(&colds).unwrap(),
                "cell {} must match the cold bytes",
                id.coords()
            );
        }
    }
    assert!(
        !file_names(&dir).iter().any(|n| n.ends_with(".lease")),
        "no leaked lease: {:?}",
        file_names(&dir)
    );

    // The poisoned group folds the two surviving replicates and reports
    // the gap; the untouched policy's ensemble matches the cold run.
    let poisoned_group = ensembles
        .iter()
        .find(|e| e.scenario == 0 && e.policy == 0)
        .unwrap();
    assert_eq!(poisoned_group.quarantined, 1);
    let survivors = ExperimentPlan::cache(vec![tiny_cache()], vec![CachePolicyKind::Myopic])
        .replicate_seeds(vec![5, 7])
        .run_ensembles()
        .unwrap();
    assert_eq!(poisoned_group.curve, survivors[0].curve);
    let healthy_group = ensembles
        .iter()
        .find(|e| e.scenario == 0 && e.policy == 1)
        .unwrap();
    assert_eq!(healthy_group, cold.iter().find(|e| e.policy == 1).unwrap());

    // The quarantine marker is parseable and attributes the failure.
    let marker =
        supervise::Quarantine::read(&ExperimentPlan::cell_quarantine_path(&dir, poison)).unwrap();
    assert_eq!(marker.item, "s0-r1-p0");
    assert_eq!(marker.worker, "sup");
    assert_eq!(marker.attempts, 3);
    assert!(marker.error.contains("poisoned"), "{}", marker.error);

    // The health journal accounts the whole story: 3 claims of the
    // poisoned cell, 2 retries, 1 quarantine, a release per completion.
    let journal = supervise::read_journal(&dir.join(supervise::journal_file_name("sup"))).unwrap();
    assert_eq!(journal.worker, "sup");
    let count = |kind: EventKind, item: &str| {
        journal
            .events
            .iter()
            .filter(|e| e.kind == kind && e.item == item)
            .count()
    };
    assert_eq!(count(EventKind::Claim, "s0-r1-p0"), 3, "{journal:?}");
    assert_eq!(count(EventKind::Retry, "s0-r1-p0"), 2, "{journal:?}");
    assert_eq!(count(EventKind::Quarantine, "s0-r1-p0"), 1, "{journal:?}");
    assert_eq!(
        count(EventKind::Release, "s0-r1-p0"),
        3,
        "released on every attempt"
    );
    assert!(
        journal.events.iter().any(|e| e.kind == EventKind::Backoff),
        "retries wait on the backoff schedule: {journal:?}"
    );

    // Relaunch without the poison: the campaign heals — the quarantined
    // cell recomputes, its marker is cleared, and the ensembles are
    // bit-identical to the cold run's.
    let (healed, report) = claim_plan(&dir, "sup")
        .max_attempts(3)
        .run_ensembles_resumable()
        .unwrap();
    assert_eq!(healed, cold, "{report}");
    assert!(report.quarantined.is_empty(), "{report}");
    assert!(report.claimed.contains(&poison), "{report}");
    assert!(
        !file_names(&dir)
            .iter()
            .any(|n| supervise::is_quarantine_name(n)),
        "marker must be cleared on recompute: {:?}",
        file_names(&dir)
    );
    std::fs::remove_dir_all(&cold_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zero_retry_budget_is_rejected_in_claim_mode() {
    let dir = scratch_dir("zero-budget");
    let err = claim_plan(&dir, "w")
        .max_attempts(0)
        .run_ensembles()
        .expect_err("a zero retry budget must be rejected");
    assert!(err.to_string().contains("max_attempts"), "{err}");
    // Outside claim mode the knob is inert and unvalidated.
    plan(&dir).max_attempts(0).run_ensembles().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
