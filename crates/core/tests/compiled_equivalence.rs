//! Differential tests on the paper's per-RSU cache MDP: the compiled CSR
//! kernel must reproduce the trait-callback reference solvers exactly, and
//! parallel sweeps must match serial ones bit-for-bit.

use aoi_cache::{Age, CompiledRsuMdp, PopularityModel, RewardModel, RsuCacheMdp, RsuSpec};
use mdp::solver::{PolicyIteration, RelativeValueIteration, ValueIteration};
use mdp::FiniteMdp;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = RsuSpec> {
    (
        2usize..4,
        2u32..5,
        0u32..3,
        proptest::collection::vec(0.05f64..1.0, 4),
    )
        .prop_map(|(n, base_max, extra, weights)| {
            let max_ages: Vec<Age> = (0..n)
                .map(|i| Age::new(base_max + (i as u32 % (extra + 1))).unwrap())
                .collect();
            let cap = Age::new(base_max + extra + 2).unwrap();
            let total: f64 = weights[..n].iter().sum();
            let popularity: Vec<f64> = weights[..n].iter().map(|w| w / total).collect();
            RsuSpec {
                max_ages,
                popularity,
                age_cap: cap,
                weight: 1.0,
                update_cost: 0.3,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_vi_matches_callback_on_cache_mdp(spec in arb_spec(), gamma in 0.8f64..0.98) {
        let compiled = CompiledRsuMdp::from_spec(&spec).unwrap();
        let solver = ValueIteration::new(gamma).tolerance(1e-12);
        let kernel = solver.solve_compiled(&compiled.kernel).unwrap();
        let callback = solver.solve_callback(&compiled.model).unwrap();
        prop_assert!(kernel.converged && callback.converged);
        for (a, b) in kernel.values.iter().zip(&callback.values) {
            prop_assert!((a - b).abs() < 1e-10, "value gap {a} vs {b}");
        }
        prop_assert_eq!(kernel.policy.actions(), callback.policy.actions());
    }

    #[test]
    fn compiled_pi_matches_callback_on_cache_mdp(spec in arb_spec()) {
        let compiled = CompiledRsuMdp::from_spec(&spec).unwrap();
        let solver = PolicyIteration::new(0.9).eval_tolerance(1e-12);
        let kernel = solver.solve_compiled(&compiled.kernel).unwrap();
        let callback = solver.solve_callback(&compiled.model).unwrap();
        prop_assert!(kernel.converged && callback.converged);
        prop_assert_eq!(kernel.policy.actions(), callback.policy.actions());
        for (a, b) in kernel.values.iter().zip(&callback.values) {
            prop_assert!((a - b).abs() < 1e-8, "value gap {a} vs {b}");
        }
    }

    #[test]
    fn parallel_and_serial_sweeps_agree_on_cache_mdp(spec in arb_spec(), gamma in 0.8f64..0.98) {
        let compiled = CompiledRsuMdp::from_spec(&spec).unwrap();
        let serial = ValueIteration::new(gamma).parallel(false)
            .solve_compiled(&compiled.kernel).unwrap();
        let parallel = ValueIteration::new(gamma).parallel(true)
            .solve_compiled(&compiled.kernel).unwrap();
        prop_assert_eq!(serial.sweeps, parallel.sweeps);
        prop_assert_eq!(&serial.values, &parallel.values);
        prop_assert_eq!(serial.policy.actions(), parallel.policy.actions());
    }
}

/// A cache MDP big enough (4 contents × cap 8 → 4096 states) to engage the
/// worker pool for real: serial and parallel solves must stay bit-for-bit
/// identical, and the compiled rows must match the model's callback rows.
#[test]
fn large_cache_mdp_parallel_matches_serial_bitwise() {
    let n_contents = 4;
    let reward = RewardModel::new(1.0, 0.3, vec![Age::new(6).unwrap(); n_contents]).unwrap();
    let popularity: Vec<f64> = (1..=n_contents).map(|i| i as f64).collect();
    let total: f64 = popularity.iter().sum();
    let model = RsuCacheMdp::new(
        reward,
        Age::new(8).unwrap(),
        PopularityModel::Static(popularity.into_iter().map(|p| p / total).collect()),
    )
    .unwrap();
    assert_eq!(model.n_states(), 4096);
    let kernel = model.compile().unwrap();

    let solver = ValueIteration::new(0.95).tolerance(1e-10);
    let serial = solver.parallel(false).solve_compiled(&kernel).unwrap();
    let parallel = solver.parallel(true).solve_compiled(&kernel).unwrap();
    assert_eq!(serial.sweeps, parallel.sweeps);
    assert_eq!(serial.values, parallel.values, "bit-for-bit values");
    assert_eq!(serial.policy.actions(), parallel.policy.actions());

    let rvi = RelativeValueIteration::new().tolerance(1e-9);
    let rvi_serial = rvi.parallel(false).solve_compiled(&kernel).unwrap();
    let rvi_parallel = rvi.parallel(true).solve_compiled(&kernel).unwrap();
    assert_eq!(rvi_serial.sweeps, rvi_parallel.sweeps);
    assert_eq!(rvi_serial.bias, rvi_parallel.bias, "bit-for-bit bias");
    assert_eq!(rvi_serial.policy.actions(), rvi_parallel.policy.actions());
    assert_eq!(rvi_serial.gain, rvi_parallel.gain);

    // Spot-check CSR rows against the callback rows.
    let mut want = Vec::new();
    let mut got = Vec::new();
    for s in (0..model.n_states()).step_by(97) {
        for a in 0..model.n_actions() {
            model.transitions(s, a, &mut want);
            kernel.transitions(s, a, &mut got);
            assert_eq!(want, got, "row ({s}, {a})");
        }
    }
}
