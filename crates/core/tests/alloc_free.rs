//! Simulation-loop companion to `mdp/tests/alloc_free.rs`: the per-slot
//! body of [`CacheSimulation::run_with`] must perform **zero heap
//! allocation per slot** after warm-up. A counting wrapper around the
//! system allocator tallies every allocation in this test binary; running
//! the identical experiment at a short and a long horizon must allocate
//! exactly the same number of times (everything the slot loop touches —
//! state encoding, decision contexts, reward accumulators, trace recorders
//! — is set up before the first slot).
//!
//! Runs are wrapped in `executor::serialized` so allocation counts stay
//! deterministic on any host (no pool threads), which also covers the
//! `--no-default-features` build where that is the only path.

use aoi_cache::persist::Compression;
use aoi_cache::{CachePolicyKind, CacheScenario, CacheSimulation, RecordingMode};
use simkit::executor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a pure pass-through to the System allocator; the only addition is
// a relaxed atomic counter, which cannot affect GlobalAlloc's contract.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards `System.alloc`'s own contract unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the caller upholds GlobalAlloc's layout contract, which is
        // forwarded verbatim to the System allocator.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards `System.dealloc`'s own contract unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by the matching alloc/realloc below,
        // which delegate to System, so System may free it.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards `System.realloc`'s own contract unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` obey the caller's GlobalAlloc contract and
        // came from System via this allocator.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// The tiny exact-solver scenario of the cache_sim test suite, at a
/// caller-chosen horizon (the catalog, popularity and initial ages derive
/// from the seed only, so two horizons describe the same problem).
fn sim(horizon: usize, recording: RecordingMode) -> CacheSimulation {
    let scenario = CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 3,
        age_cap: 6,
        max_age_min: 3,
        max_age_max: 5,
        horizon,
        seed: 42,
        ..CacheScenario::default()
    };
    CacheSimulation::new(scenario)
        .unwrap()
        .with_recording(recording)
}

/// Asserts that running `kind` allocates exactly as often at 64 slots as
/// at 512: whatever the run allocates is per-run setup, never per-slot.
fn assert_horizon_free(kind: CachePolicyKind, recording: RecordingMode) {
    let short = sim(64, recording);
    let long = sim(512, recording);
    executor::serialized(|| {
        // Warm-up: lazy per-RSU kernel compiles, thread-locals.
        let _ = short.run(kind).unwrap();
        let _ = long.run(kind).unwrap();
        let a = allocations_during(|| {
            let _ = short.run(kind).unwrap();
        });
        let b = allocations_during(|| {
            let _ = long.run(kind).unwrap();
        });
        assert_eq!(
            a,
            b,
            "{} ({recording:?}): allocation count must not scale with the \
             horizon (64 slots: {a}, 512 slots: {b})",
            kind.label()
        );
    });
}

/// The spilling path must be horizon-free **in memory** too: streaming
/// every retained sample to the artifact file costs file bytes, never
/// heap — so a `Full`-mode spilled run allocates exactly as often at 64
/// slots as at 512 (all setup: recorders, channel records, the writer's
/// buffer), which is precisely the "no full traces resident" guarantee of
/// `ExperimentPlan::artifact_dir` at the single-run level.
fn assert_horizon_free_spilled(
    kind: CachePolicyKind,
    recording: RecordingMode,
    compression: Compression,
) {
    let dir = std::env::temp_dir().join(format!("aoi-alloc-free-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let short = sim(64, recording);
    let long = sim(512, recording);
    let path_a = compression.apply_to(&dir.join("short.trace.jsonl"));
    let path_b = compression.apply_to(&dir.join("long.trace.jsonl"));
    executor::serialized(|| {
        let _ = short.run_artifact_with(kind, &path_a, compression).unwrap();
        let _ = long.run_artifact_with(kind, &path_b, compression).unwrap();
        let a = allocations_during(|| {
            let _ = short.run_artifact_with(kind, &path_a, compression).unwrap();
        });
        let b = allocations_during(|| {
            let _ = long.run_artifact_with(kind, &path_b, compression).unwrap();
        });
        assert_eq!(
            a,
            b,
            "{} ({recording:?}, spilled, {compression:?}): allocation count \
             must not scale with the horizon (64 slots: {a}, 512 slots: {b})",
            kind.label()
        );
    });
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The lockstep batched step path must be horizon-free too: after its
/// one-time plane setup, `aoi_cache::run_batch` advances every lane with
/// zero heap allocation per slot — so a 4-replicate batch allocates
/// exactly as often at 64 slots as at 512.
fn assert_batched_horizon_free(kind: CachePolicyKind) {
    let batch = |horizon: usize| -> Vec<CacheSimulation> {
        (0..4u64)
            .map(|i| {
                CacheSimulation::new(CacheScenario {
                    seed: 42 + i,
                    ..*sim(horizon, RecordingMode::SummaryOnly).scenario()
                })
                .unwrap()
                .with_recording(RecordingMode::SummaryOnly)
            })
            .collect()
    };
    let short = batch(64);
    let long = batch(512);
    let run = |sims: &[CacheSimulation]| {
        let refs: Vec<&CacheSimulation> = sims.iter().collect();
        let _ = aoi_cache::run_batch(&refs, kind).unwrap();
    };
    executor::serialized(|| {
        run(&short);
        run(&long);
        let a = allocations_during(|| run(&short));
        let b = allocations_during(|| run(&long));
        assert_eq!(
            a,
            b,
            "{} (batched x4): allocation count must not scale with the \
             horizon (64 slots: {a}, 512 slots: {b})",
            kind.label()
        );
    });
}

/// One test function for the whole binary (the same discipline as
/// `mdp/tests/pool_per_solve.rs`): concurrently running tests would spawn
/// harness threads into each other's measurement windows and shift the
/// process-global counts nondeterministically.
#[test]
fn simulation_hot_loop_is_allocation_free() {
    // The paper's policy: table lookup through the no-alloc state encoding.
    assert_horizon_free(
        CachePolicyKind::ValueIteration { gamma: 0.9 },
        RecordingMode::Full,
    );
    // Baselines, including an RNG-driven one.
    assert_horizon_free(CachePolicyKind::Myopic, RecordingMode::Full);
    assert_horizon_free(
        CachePolicyKind::Random { probability: 0.5 },
        RecordingMode::Full,
    );
    // Every trace-retention mode.
    for recording in [
        RecordingMode::Full,
        RecordingMode::Decimate(8),
        RecordingMode::SummaryOnly,
    ] {
        assert_horizon_free(CachePolicyKind::Myopic, recording);
    }
    // Spilling to a disk artifact keeps the loop heap-free as well — the
    // retained `Full` trace goes to the file, not to resident memory.
    assert_horizon_free_spilled(
        CachePolicyKind::Myopic,
        RecordingMode::Full,
        Compression::None,
    );
    assert_horizon_free_spilled(
        CachePolicyKind::ValueIteration { gamma: 0.9 },
        RecordingMode::Full,
        Compression::None,
    );
    // ...and the streaming compressor's buffers are all sized at creation,
    // so the compressed spilling path is per-sample allocation-free too.
    assert_horizon_free_spilled(
        CachePolicyKind::Myopic,
        RecordingMode::Full,
        Compression::Deflate,
    );
    // The lockstep batch kernel: both a lane-batched decider (myopic,
    // vectorized gains) and the generic boxed-policy fallback (the paper's
    // value-iteration policy) keep the batched slot loop heap-free.
    assert_batched_horizon_free(CachePolicyKind::Myopic);
    assert_batched_horizon_free(CachePolicyKind::ValueIteration { gamma: 0.9 });
}
