//! Fault-recovery suite: an injected mid-grid write failure must surface
//! **loudly** — as quarantined cells in the resume report, or as an error
//! when the fault also reaches the ensemble writes — with leases released
//! and no torn artifact under a final name; a claim-mode relaunch must
//! then finish the campaign bit-identically to a cold run.
//!
//! Lives in its own integration-test binary: the fault harness is
//! process-global, and this file's single test owns it outright.

use aoi_cache::{CachePolicyKind, CacheScenario, ExperimentPlan};
use simkit::faults::{self, FaultKind, FaultPlan};
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aoi-fault-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn plan(dir: &Path) -> ExperimentPlan {
    ExperimentPlan::cache(
        vec![CacheScenario {
            n_rsus: 2,
            regions_per_rsu: 2,
            age_cap: 5,
            max_age_min: 3,
            max_age_max: 4,
            horizon: 60,
            ..CacheScenario::default()
        }],
        vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
    )
    .replicate_seeds(vec![5, 6, 7])
    .artifact_dir(dir)
}

#[test]
fn injected_write_failure_quarantines_loudly_and_resume_recovers() {
    let cold_dir = scratch_dir("cold");
    let (cold, _) = plan(&cold_dir).run_ensembles_resumable().unwrap();

    // Let a few hundred samples through, then fail every artifact write:
    // cells fail mid-grid with some finished, some not. The supervised
    // campaign retries each failing cell, then quarantines it.
    let dir = scratch_dir("faulted");
    faults::inject(FaultPlan {
        after_samples: 300,
        kind: FaultKind::FailWrites,
    });
    let outcome = plan(&dir)
        .resume(true)
        .claim(true)
        .worker_id("doomed")
        .max_attempts(2)
        .run_ensembles_resumable();
    faults::clear();
    // The injected failure must surface, never be swallowed: either the
    // campaign completed around quarantined cells (reporting them), or —
    // when cells landed before the fault tripped — the still-latched
    // fault also failed the ensemble writes and the run errored.
    match outcome {
        Ok((_, report)) => {
            assert!(
                !report.quarantined.is_empty(),
                "a latched write fault must quarantine cells: {report}"
            );
            assert!(
                report
                    .quarantined
                    .iter()
                    .all(|(_, why)| why.contains("injected")),
                "quarantine reasons must carry the failure: {report}"
            );
            assert!(
                !report.attempts.is_empty(),
                "quarantined cells burned their retry budget: {report}"
            );
        }
        Err(e) => assert!(e.to_string().contains("injected"), "unexpected error: {e}"),
    }

    // The crash left no lie behind: every file under a final artifact
    // name still verifies (half-written cells exist only as temporaries,
    // if at all; health journals and quarantine markers are telemetry,
    // not artifacts), and no lease outlives the failed worker.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert!(!name.ends_with(".lease"), "leaked lease: {name}");
        if name.ends_with(".jsonl")
            && !simkit::supervise::is_journal_name(&name)
            && !simkit::supervise::is_quarantine_name(&name)
        {
            aoi_cache::persist::read_artifact(&path)
                .unwrap_or_else(|e| panic!("torn artifact under final name {name}: {e}"));
        }
    }

    // Relaunch: the campaign picks up the survivors and finishes
    // bit-identically to the cold run.
    let (recovered, report) = plan(&dir)
        .resume(true)
        .claim(true)
        .worker_id("relaunched")
        .run_ensembles_resumable()
        .unwrap();
    assert_eq!(recovered, cold, "{report}");
    assert_eq!(report.n_cells(), 6, "{report}");
    assert!(
        !report.claimed.is_empty(),
        "at least the faulted cells must be recomputed: {report}"
    );
    assert!(
        report.quarantined.is_empty(),
        "with the fault cleared nothing quarantines: {report}"
    );
    // Recomputing a cell clears its stale quarantine marker.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().to_string();
        assert!(
            !simkit::supervise::is_quarantine_name(&name),
            "stale quarantine marker survived the relaunch: {name}"
        );
    }
    std::fs::remove_dir_all(&cold_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
