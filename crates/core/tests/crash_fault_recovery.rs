//! Fault-recovery suite: an injected mid-grid write failure must surface
//! as an error (leases released, no torn artifact under a final name), and
//! a claim-mode relaunch must finish the campaign bit-identically to a
//! cold run.
//!
//! Lives in its own integration-test binary: the fault harness is
//! process-global, and this file's single test owns it outright.

use aoi_cache::{CachePolicyKind, CacheScenario, ExperimentPlan};
use simkit::faults::{self, FaultKind, FaultPlan};
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aoi-fault-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn plan(dir: &Path) -> ExperimentPlan {
    ExperimentPlan::cache(
        vec![CacheScenario {
            n_rsus: 2,
            regions_per_rsu: 2,
            age_cap: 5,
            max_age_min: 3,
            max_age_max: 4,
            horizon: 60,
            ..CacheScenario::default()
        }],
        vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
    )
    .replicate_seeds(vec![5, 6, 7])
    .artifact_dir(dir)
}

#[test]
fn injected_write_failure_fails_loudly_and_resume_recovers() {
    let cold_dir = scratch_dir("cold");
    let (cold, _) = plan(&cold_dir).run_ensembles_resumable().unwrap();

    // Let a few hundred samples through, then fail every artifact write:
    // the campaign dies mid-grid with some cells finished, some not.
    let dir = scratch_dir("faulted");
    faults::inject(FaultPlan {
        after_samples: 300,
        kind: FaultKind::FailWrites,
    });
    let err = plan(&dir)
        .resume(true)
        .claim(true)
        .worker_id("doomed")
        .run_ensembles_resumable()
        .expect_err("the injected failure must surface, not be swallowed");
    faults::clear();
    assert!(
        err.to_string().contains("injected"),
        "unexpected error: {err}"
    );

    // The crash left no lie behind: every file under a final artifact
    // name still verifies (half-written cells exist only as temporaries,
    // if at all), and no lease outlives the failed worker.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert!(!name.ends_with(".lease"), "leaked lease: {name}");
        if name.ends_with(".jsonl") {
            aoi_cache::persist::read_artifact(&path)
                .unwrap_or_else(|e| panic!("torn artifact under final name {name}: {e}"));
        }
    }

    // Relaunch: the campaign picks up the survivors and finishes
    // bit-identically to the cold run.
    let (recovered, report) = plan(&dir)
        .resume(true)
        .claim(true)
        .worker_id("relaunched")
        .run_ensembles_resumable()
        .unwrap();
    assert_eq!(recovered, cold, "{report}");
    assert_eq!(report.n_cells(), 6, "{report}");
    assert!(
        !report.claimed.is_empty(),
        "at least the faulted cells must be recomputed: {report}"
    );
    std::fs::remove_dir_all(&cold_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
