//! Property-based tests for the Eq. 4 AoI-constrained service controller:
//! across random loads, menus, cache cycles and targets, the adaptive
//! controller must (when the constraint is feasible at all) meet the
//! served-age requirement, stay work-conserving, and never pay more than
//! the always-fresh upper bound.

use aoi_cache::{run_freshness_service, FreshnessScenario, ServiceLevel, SourcingMode};
use proptest::prelude::*;

fn arb_scenario() -> impl Strategy<Value = FreshnessScenario> {
    (
        0.2f64..1.2,  // arrival rate
        2u32..12,     // cache refresh period
        1.5f64..6.0,  // age target
        0.2f64..2.0,  // mbs surcharge
        1.0f64..60.0, // V
        0u64..500,    // seed
    )
        .prop_map(
            |(arrival, period, target, surcharge, v, seed)| FreshnessScenario {
                arrival_rate: arrival,
                levels: vec![
                    ServiceLevel::new(0.0, 0.0),
                    ServiceLevel::new(0.5, 1.0),
                    ServiceLevel::new(2.0, 3.0),
                ],
                mbs_surcharge: surcharge,
                age_target: target,
                cache_refresh_period: period,
                v,
                horizon: 4000,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adaptive_meets_feasible_targets(scenario in arb_scenario()) {
        // MBS serving always has age 1 < target, so the constraint is
        // always feasible; the virtual queue must therefore be rate-stable.
        let report = run_freshness_service(&scenario, SourcingMode::Adaptive).unwrap();
        prop_assert!(
            report.constraint_met,
            "constraint violated: served age {} vs target {} (period {})",
            report.mean_served_age,
            scenario.age_target,
            scenario.cache_refresh_period
        );
        // Served-age average within noise of the target.
        prop_assert!(
            report.mean_served_age <= scenario.age_target + 0.5,
            "mean served age {} far above target {}",
            report.mean_served_age,
            scenario.age_target
        );
    }

    #[test]
    fn adaptive_never_costs_more_than_mbs_only(scenario in arb_scenario()) {
        let adaptive = run_freshness_service(&scenario, SourcingMode::Adaptive).unwrap();
        let mbs = run_freshness_service(&scenario, SourcingMode::MbsOnly).unwrap();
        // The adaptive menu contains every MBS-only decision, so its
        // realized average cost can exceed the MBS-only run's only through
        // queue-path differences; allow small slack.
        prop_assert!(
            adaptive.mean_cost <= mbs.mean_cost + 0.15,
            "adaptive {} vs mbs-only {}",
            adaptive.mean_cost,
            mbs.mean_cost
        );
    }

    #[test]
    fn served_work_never_exceeds_arrivals(scenario in arb_scenario()) {
        for mode in [SourcingMode::Adaptive, SourcingMode::CacheOnly, SourcingMode::MbsOnly] {
            let report = run_freshness_service(&scenario, mode).unwrap();
            let served = report.served_cache + report.served_mbs;
            // Work conservation: cannot serve what never arrived.
            let max_arrivals = scenario.arrival_rate * scenario.horizon as f64 * 1.5
                + 10.0 * (scenario.horizon as f64).sqrt();
            prop_assert!(served <= max_arrivals, "{mode:?} served {served}");
            prop_assert!(report.mean_queue >= 0.0);
        }
    }

    #[test]
    fn loose_targets_make_all_modes_equivalent_on_freshness(
        seed in 0u64..200, period in 2u32..6,
    ) {
        // Target above the worst cache age: no MBS fetch is ever needed and
        // both adaptive and cache-only satisfy the constraint.
        let scenario = FreshnessScenario {
            age_target: f64::from(period) + 1.0,
            cache_refresh_period: period,
            seed,
            horizon: 3000,
            ..FreshnessScenario::default()
        };
        let adaptive = run_freshness_service(&scenario, SourcingMode::Adaptive).unwrap();
        let cache = run_freshness_service(&scenario, SourcingMode::CacheOnly).unwrap();
        prop_assert!(adaptive.constraint_met);
        prop_assert!(cache.constraint_met);
        prop_assert!(adaptive.mbs_fraction() < 0.05);
    }
}
