//! Property tests for the lockstep batch engine: for **every** batch
//! width, [`aoi_cache::run_batch`] must reproduce the serial
//! [`CacheSimulation::run`] reports bit for bit — the structure-of-arrays
//! summary fast path and the interleaved state machine alike, across
//! policy kinds (lane-batched deciders, RNG-driven deciders, and the
//! generic boxed-policy path), seeds, scenario shapes and recording modes.
//!
//! Widths exercised per case: 1, 2, 7 and the full replicate count —
//! degenerate, even, prime-straddling and single-chunk splits.

use aoi_cache::{CachePolicyKind, CacheRunReport, CacheScenario, CacheSimulation, RecordingMode};
use proptest::prelude::*;

/// Replicate sims of one grid cell: same scenario, consecutive seeds.
fn replicates(base: CacheScenario, recording: RecordingMode, n: usize) -> Vec<CacheSimulation> {
    (0..n as u64)
        .map(|i| {
            CacheSimulation::new(CacheScenario {
                seed: base.seed + i,
                ..base
            })
            .expect("valid scenario")
            .with_recording(recording)
        })
        .collect()
}

/// Serial reference: each replicate run on its own.
fn serial_reports(sims: &[CacheSimulation], kind: CachePolicyKind) -> Vec<CacheRunReport> {
    sims.iter()
        .map(|sim| sim.run(kind).expect("runs"))
        .collect()
}

/// Lockstep runs chunked at `width`, in replicate order.
fn batched_reports(
    sims: &[CacheSimulation],
    kind: CachePolicyKind,
    width: usize,
) -> Vec<CacheRunReport> {
    let mut reports = Vec::with_capacity(sims.len());
    for chunk in sims.chunks(width) {
        let refs: Vec<&CacheSimulation> = chunk.iter().collect();
        reports.extend(aoi_cache::run_batch(&refs, kind).expect("runs"));
    }
    reports
}

/// Asserts serial/batched bit-identity at widths 1, 2, 7 and `n`.
fn assert_widths_match(
    base: CacheScenario,
    recording: RecordingMode,
    kind: CachePolicyKind,
    n: usize,
) {
    let sims = replicates(base, recording, n);
    let want = serial_reports(&sims, kind);
    for width in [1usize, 2, 7, n] {
        let got = batched_reports(&sims, kind, width);
        prop_assert_eq!(
            &got,
            &want,
            "batch width {} must be bit-identical to serial ({}, {:?})",
            width,
            kind.label(),
            recording
        );
    }
}

/// Strategy: a small but shape-diverse scenario (the exact-MDP solvers
/// never run here, so the horizon is the only cost driver).
fn arb_scenario() -> impl Strategy<Value = CacheScenario> {
    (1usize..=2, 2usize..=4, 4u32..=6, 16usize..=48, 0u64..1000).prop_map(
        |(n_rsus, per_rsu, cap, horizon, seed)| CacheScenario {
            n_rsus,
            regions_per_rsu: per_rsu,
            age_cap: cap,
            max_age_min: 2,
            max_age_max: cap - 1,
            horizon,
            seed,
            ..CacheScenario::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The summary fast path's lane-batched deciders (myopic vectorized
    /// gains, RNG-only random, no-op never) against serial runs.
    #[test]
    fn summary_lane_batches_are_bit_identical(
        scenario in arb_scenario(),
        n in 3usize..=9,
        probability in 0.0f64..1.0,
    ) {
        for kind in [
            CachePolicyKind::Myopic,
            CachePolicyKind::Random { probability },
            CachePolicyKind::Never,
        ] {
            assert_widths_match(scenario, RecordingMode::SummaryOnly, kind, n);
        }
    }

    /// The interleaved engine (full and decimated trace retention falls
    /// off the summary fast path) against serial runs.
    #[test]
    fn interleaved_batches_are_bit_identical(
        scenario in arb_scenario(),
        n in 3usize..=6,
        probability in 0.0f64..1.0,
    ) {
        for recording in [RecordingMode::Full, RecordingMode::Decimate(4)] {
            assert_widths_match(
                scenario,
                recording,
                CachePolicyKind::Random { probability },
                n,
            );
        }
    }
}

/// The generic boxed-policy decider inside the summary fast path (every
/// kind that is not lane-batched — here the paper's value-iteration
/// policy, whose decisions read the canonical ages every slot).
#[test]
fn generic_decider_batches_are_bit_identical() {
    let scenario = CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 3,
        age_cap: 5,
        max_age_min: 2,
        max_age_max: 4,
        horizon: 40,
        seed: 7,
        ..CacheScenario::default()
    };
    let kind = CachePolicyKind::ValueIteration { gamma: 0.9 };
    let sims = replicates(scenario, RecordingMode::SummaryOnly, 5);
    let want = serial_reports(&sims, kind);
    for width in [1usize, 2, 7, 5] {
        let got = batched_reports(&sims, kind, width);
        assert_eq!(got, want, "generic decider, batch width {width}");
    }
}
