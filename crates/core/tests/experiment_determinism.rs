//! Executor-determinism acceptance test: an experiment grid must produce a
//! **bit-identical** `ExperimentReport` run serially (1 worker) and with a
//! forced multi-worker fan-out — the same discipline PR 1 established for
//! the sweep solvers. The grid mixes exact solves, learned policies (whose
//! per-RSU RNG streams must not depend on scheduling), a finite-horizon
//! solve (persistent stage pool) and baselines.

use aoi_cache::{CachePolicyKind, CacheScenario, CacheSimulation, ExperimentPlan, RecordingMode};

fn scenario() -> CacheScenario {
    CacheScenario {
        n_rsus: 3,
        regions_per_rsu: 2,
        age_cap: 5,
        max_age_min: 3,
        max_age_max: 4,
        horizon: 120,
        ..CacheScenario::default()
    }
}

fn policies() -> Vec<CachePolicyKind> {
    vec![
        CachePolicyKind::ValueIteration { gamma: 0.9 },
        CachePolicyKind::RecedingHorizon { horizon: 12 },
        CachePolicyKind::QLearning {
            gamma: 0.9,
            steps: 3_000,
        },
        CachePolicyKind::Myopic,
    ]
}

#[test]
fn grid_reports_are_bit_identical_for_any_worker_count() {
    // The discipline must hold in every trace-recording mode: the retained
    // traces differ by design across modes, but within a mode the report is
    // identical for any worker count, and the ensembles (built from the
    // always-full headline curves) are identical across modes too.
    let mut ensembles = Vec::new();
    for recording in [
        RecordingMode::Full,
        RecordingMode::Decimate(4),
        RecordingMode::SummaryOnly,
    ] {
        let plan = ExperimentPlan::cache(vec![scenario()], policies())
            .replicate_seeds(vec![3, 4])
            .recording(recording);
        let serial = plan.clone().workers(1).run().unwrap();
        assert_eq!(serial.cells.len(), 8);
        for workers in [2, 4, 7] {
            let pooled = plan.clone().workers(workers).run().unwrap();
            assert_eq!(
                serial, pooled,
                "grid report must be bit-identical with {workers} workers ({recording:?})"
            );
        }
        // The streamed engine agrees with the batch engine in every mode.
        assert_eq!(serial.ensembles, plan.run_ensembles().unwrap());
        ensembles.push(serial.ensembles);
    }
    assert_eq!(ensembles[0], ensembles[1], "ensembles are mode-free");
    assert_eq!(ensembles[0], ensembles[2], "ensembles are mode-free");
}

#[test]
fn grid_cells_reproduce_single_runs_bit_for_bit() {
    let plan = ExperimentPlan::cache(vec![scenario()], policies()).replicate_seeds(vec![9, 10]);
    let report = plan.workers(4).run().unwrap();
    for cell in &report.cells {
        let mut s = scenario();
        s.seed = cell.id.seed;
        let standalone = CacheSimulation::new(s).unwrap();
        let want = standalone.run(policies()[cell.id.policy]).unwrap();
        assert_eq!(
            cell.outcome.cache().unwrap(),
            &want,
            "cell {:?} diverged from its standalone single run",
            cell.id
        );
    }
}
