//! Property-based tests for the AoI-caching core.

use aoi_cache::{
    Age, AgeVector, CachePolicyKind, CacheScenario, CacheSimulation, PopularityModel, RewardModel,
    RsuCacheMdp, RsuSpec,
};
use mdp::FiniteMdp;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = RsuSpec> {
    (
        2usize..4,
        2u32..5,
        0u32..3,
        proptest::collection::vec(0.05f64..1.0, 4),
    )
        .prop_map(|(n, base_max, extra, weights)| {
            let max_ages: Vec<Age> = (0..n)
                .map(|i| Age::new(base_max + (i as u32 % (extra + 1))).unwrap())
                .collect();
            let cap = Age::new(base_max + extra + 2).unwrap();
            let total: f64 = weights[..n].iter().sum();
            let popularity: Vec<f64> = weights[..n].iter().map(|w| w / total).collect();
            RsuSpec {
                max_ages,
                popularity,
                age_cap: cap,
                weight: 1.0,
                update_cost: 0.3,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn age_vector_dynamics_preserve_bounds(
        n in 1usize..8,
        cap in 2u32..12,
        ops in proptest::collection::vec((0usize..8, proptest::bool::ANY), 0..50),
    ) {
        let cap_age = Age::new(cap).unwrap();
        let mut v = AgeVector::fresh(n, cap_age);
        for (idx, refresh) in ops {
            if refresh {
                v.refresh(idx % n);
            }
            v.advance();
            for a in v.as_slice() {
                prop_assert!(a.get() >= 1 && a.get() <= cap);
            }
        }
    }

    #[test]
    fn mdp_rows_are_distributions(spec in arb_spec()) {
        let mdp = spec.mdp().unwrap();
        let mut buf = Vec::new();
        for s in 0..mdp.n_states() {
            for a in 0..mdp.n_actions() {
                mdp.transitions(s, a, &mut buf);
                prop_assert!(!buf.is_empty());
                let mass: f64 = buf.iter().map(|t| t.probability).sum();
                prop_assert!((mass - 1.0).abs() < 1e-9);
                for t in &buf {
                    prop_assert!(t.next < mdp.n_states());
                    prop_assert!(t.reward.is_finite());
                }
            }
        }
    }

    #[test]
    fn mdp_state_roundtrip(spec in arb_spec()) {
        let mdp = spec.mdp().unwrap();
        for s in 0..mdp.n_states() {
            let (ages, phase) = mdp.decode_state(s);
            prop_assert_eq!(mdp.encode_state(&ages, phase), s);
        }
    }

    #[test]
    fn update_reward_exceeds_no_update_minus_cost(spec in arb_spec()) {
        // Updating can only improve the AoI term; the reward difference of
        // (update j) vs (none) must be >= -cost.
        let mdp = spec.mdp().unwrap();
        let mut buf = Vec::new();
        for s in 0..mdp.n_states() {
            mdp.transitions(s, 0, &mut buf);
            let r_none = buf[0].reward;
            for j in 0..spec.n_contents() {
                mdp.transitions(s, j + 1, &mut buf);
                let r_up = buf[0].reward;
                prop_assert!(
                    r_up >= r_none - spec.update_cost - 1e-9,
                    "update reward {r_up} below floor (none {r_none})"
                );
            }
        }
    }

    #[test]
    fn reward_model_is_monotone_in_freshness(spec in arb_spec()) {
        let model = RewardModel::new(spec.weight, spec.update_cost, spec.max_ages.clone()).unwrap();
        let n = spec.n_contents();
        let fresh = AgeVector::fresh(n, spec.age_cap);
        let mut stale = fresh.clone();
        stale.advance();
        prop_assert!(
            model.aoi_utility(&fresh, &spec.popularity)
                >= model.aoi_utility(&stale, &spec.popularity)
        );
    }

    #[test]
    fn two_phase_mdp_is_consistent(spec in arb_spec(), q in 0.0f64..1.0) {
        let reward = RewardModel::new(spec.weight, spec.update_cost, spec.max_ages.clone()).unwrap();
        let n = spec.n_contents();
        let uniform = vec![1.0 / n as f64; n];
        let mdp = RsuCacheMdp::new(
            reward,
            spec.age_cap,
            PopularityModel::TwoPhase {
                phases: [spec.popularity.clone(), uniform],
                switch_probability: q,
            },
        ).unwrap();
        let mut buf = Vec::new();
        for s in (0..mdp.n_states()).step_by(7) {
            for a in 0..mdp.n_actions() {
                mdp.transitions(s, a, &mut buf);
                let mass: f64 = buf.iter().map(|t| t.probability).sum();
                prop_assert!((mass - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn simulation_reward_is_consistent_with_cumulative(seed in 0u64..200) {
        let scenario = CacheScenario {
            n_rsus: 1,
            regions_per_rsu: 2,
            age_cap: 5,
            max_age_min: 3,
            max_age_max: 4,
            horizon: 60,
            seed,
            ..CacheScenario::default()
        };
        let sim = CacheSimulation::new(scenario).unwrap();
        let report = sim.run(CachePolicyKind::Myopic).unwrap();
        let manual: f64 = report.reward.values().sum();
        prop_assert!((manual - report.final_cumulative_reward()).abs() < 1e-9);
        // Mean utility minus mean cost equals the mean reward.
        let mean_reward = manual / report.horizon as f64;
        prop_assert!((report.mean_utility - report.mean_cost - mean_reward).abs() < 1e-9);
    }

    #[test]
    fn one_update_per_rsu_per_slot(seed in 0u64..100) {
        let scenario = CacheScenario {
            n_rsus: 2,
            regions_per_rsu: 2,
            age_cap: 5,
            max_age_min: 3,
            max_age_max: 4,
            horizon: 80,
            seed,
            ..CacheScenario::default()
        };
        let sim = CacheSimulation::new(scenario).unwrap();
        for kind in [
            CachePolicyKind::Myopic,
            CachePolicyKind::Periodic { period: 1 },
            CachePolicyKind::Random { probability: 1.0 },
        ] {
            let report = sim.run(kind).unwrap();
            prop_assert!(report.updates <= (2 * 80) as u64, "{:?}", kind);
        }
    }
}
