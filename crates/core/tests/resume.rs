//! Resume suite for `ExperimentPlan`: a grid with an artifact directory
//! must produce **bit-identical** ensembles whether it runs cold, fully
//! warm, or half-interrupted — and every damaged, stale or foreign cell
//! artifact must force a recompute, never a silent skip.

use aoi_cache::persist::{read_artifact, Compression, PersistError};
use aoi_cache::{
    CachePolicyKind, CacheScenario, CacheSimulation, ExperimentPlan, JointScenario, ResumeReport,
    ServicePolicyKind, ServiceScenario,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per call; removed by each test on success.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aoi-resume-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_cache() -> CacheScenario {
    CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 2,
        age_cap: 5,
        max_age_min: 3,
        max_age_max: 4,
        horizon: 60,
        ..CacheScenario::default()
    }
}

fn cache_plan(dir: &Path) -> ExperimentPlan {
    ExperimentPlan::cache(
        vec![tiny_cache()],
        vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
    )
    .replicate_seeds(vec![5, 6, 7])
    .artifact_dir(dir)
}

/// Every artifact file under `dir`, re-read into comparable form.
fn read_dir_artifacts(dir: &Path) -> Vec<(String, aoi_cache::persist::Artifact)> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().to_string();
            (name, read_artifact(&p).unwrap())
        })
        .collect()
}

#[test]
fn warm_and_interrupted_resumes_are_bit_identical_to_cold() {
    let cold_dir = scratch_dir("cold");
    let (cold, report) = cache_plan(&cold_dir).run_ensembles_resumable().unwrap();
    assert!(report.is_cold());
    assert_eq!(report.recomputed.len(), 6);
    let cold_files = read_dir_artifacts(&cold_dir);
    assert_eq!(cold_files.len(), 6 + 2, "6 cells + 2 ensembles");

    // Fully warm: every cell skipped, results and artifacts identical.
    let (warm, report) = cache_plan(&cold_dir)
        .resume(true)
        .run_ensembles_resumable()
        .unwrap();
    assert!(report.is_warm(), "{report}");
    assert_eq!(report.skipped.len(), 6);
    assert_eq!(warm, cold, "warm ensembles must be bit-identical");
    assert_eq!(read_dir_artifacts(&cold_dir), cold_files);

    // Interrupted: delete one cell artifact mid-grid; only it recomputes,
    // and the directory converges back to the cold run's bytes-for-bytes
    // reconstruction.
    let victim = ExperimentPlan::cell_artifact_path(
        &cold_dir,
        report.skipped[3], // s0-r1-p1
    );
    std::fs::remove_file(&victim).unwrap();
    let (resumed, report) = cache_plan(&cold_dir)
        .resume(true)
        .run_ensembles_resumable()
        .unwrap();
    assert_eq!(report.skipped.len(), 5);
    assert_eq!(report.recomputed.len(), 1);
    assert!(report.invalidated.is_empty());
    assert_eq!(resumed, cold, "interrupted resume must be bit-identical");
    assert_eq!(read_dir_artifacts(&cold_dir), cold_files);
    std::fs::remove_dir_all(&cold_dir).unwrap();
}

#[test]
fn truncated_footer_forces_recompute() {
    let dir = scratch_dir("truncated");
    let (cold, _) = cache_plan(&dir).run_ensembles_resumable().unwrap();
    let victim = dir.join("cell-s0-r0-p0.trace.jsonl");
    let text = std::fs::read_to_string(&victim).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    std::fs::write(&victim, lines[..lines.len() - 1].join("\n")).unwrap();
    // The truncated artifact itself reads as such.
    assert_eq!(read_artifact(&victim), Err(PersistError::Truncated));

    let (resumed, report) = cache_plan(&dir)
        .resume(true)
        .run_ensembles_resumable()
        .unwrap();
    assert_eq!(report.invalidated.len(), 1, "{report}");
    assert!(report.invalidated[0].1.contains("truncated"));
    assert_eq!(report.skipped.len(), 5);
    assert_eq!(resumed, cold);
    // The rewritten artifact verifies again.
    assert!(read_artifact(&victim).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn config_hash_mismatch_after_a_preset_change_forces_recompute() {
    let dir = scratch_dir("hash");
    cache_plan(&dir).run_ensembles().unwrap();

    // The "preset" changes (a different update cost): every existing cell
    // artifact is stale and must be invalidated, not silently reused.
    let changed = CacheScenario {
        update_cost: 0.35,
        ..tiny_cache()
    };
    let changed_plan = ExperimentPlan::cache(
        vec![changed],
        vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
    )
    .replicate_seeds(vec![5, 6, 7])
    .artifact_dir(&dir)
    .resume(true);
    let (resumed, report) = changed_plan.run_ensembles_resumable().unwrap();
    assert_eq!(report.invalidated.len(), 6, "{report}");
    assert!(report.skipped.is_empty(), "no stale cell may be reused");
    assert!(report.invalidated[0].1.contains("config hash mismatch"));

    // And the recomputed grid equals a cold run of the changed plan.
    let cold_dir = scratch_dir("hash-cold");
    let changed_cold = ExperimentPlan::cache(
        vec![changed],
        vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
    )
    .replicate_seeds(vec![5, 6, 7])
    .artifact_dir(&cold_dir)
    .run_ensembles()
    .unwrap();
    assert_eq!(resumed, changed_cold);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&cold_dir).unwrap();
}

#[test]
fn foreign_and_unknown_version_artifacts_force_recompute() {
    let dir = scratch_dir("foreign");
    let (cold, _) = cache_plan(&dir).run_ensembles_resumable().unwrap();

    // A file from a future format version...
    let future = dir.join("cell-s0-r0-p0.trace.jsonl");
    std::fs::write(
        &future,
        "{\"kind\":\"manifest\",\"format\":99,\"artifact\":\"trace\",\"scenario\":\"cache\",\
         \"policy\":\"myopic\",\"seed\":5,\"recording\":\"full\",\"config_hash\":\"00\"}\n\
         {\"kind\":\"footer\",\"channels\":0,\"curves\":0,\"samples\":0}\n",
    )
    .unwrap();
    // ...and a foreign artifact written by some other run entirely (valid
    // format, wrong seed/configuration).
    let foreign = dir.join("cell-s0-r1-p0.trace.jsonl");
    let sim = CacheSimulation::new(CacheScenario {
        seed: 999,
        ..tiny_cache()
    })
    .unwrap();
    sim.run_artifact(CachePolicyKind::Myopic, &foreign).unwrap();

    let (resumed, report) = cache_plan(&dir)
        .resume(true)
        .run_ensembles_resumable()
        .unwrap();
    assert_eq!(report.invalidated.len(), 2, "{report}");
    assert!(report
        .invalidated
        .iter()
        .any(|(_, why)| why.contains("unsupported artifact format")));
    assert!(report
        .invalidated
        .iter()
        .any(|(_, why)| why.contains("mismatch")));
    assert_eq!(resumed, cold);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partially_written_compressed_artifact_forces_recompute() {
    let dir = scratch_dir("z-partial");
    let plan = |d: &Path| cache_plan(d).compress(Compression::Deflate);
    let (cold, _) = plan(&dir).run_ensembles_resumable().unwrap();

    let victim = dir.join("cell-s0-r2-p1.trace.jsonl.z");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    assert_eq!(read_artifact(&victim), Err(PersistError::Truncated));

    let (resumed, report) = plan(&dir).resume(true).run_ensembles_resumable().unwrap();
    assert_eq!(report.invalidated.len(), 1, "{report}");
    assert_eq!(report.skipped.len(), 5);
    assert_eq!(resumed, cold);
    assert_eq!(std::fs::read(&victim).unwrap(), bytes, "rewritten whole");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compressed_grids_match_plain_grids_and_resume() {
    let plain_dir = scratch_dir("plain");
    let packed_dir = scratch_dir("packed");
    let cold_plain = cache_plan(&plain_dir).run_ensembles().unwrap();
    let cold_packed = cache_plan(&packed_dir)
        .compress(Compression::Deflate)
        .run_ensembles()
        .unwrap();
    assert_eq!(cold_plain, cold_packed, "encoding must not change results");

    // The decoded artifacts agree too (paths differ only by suffix).
    for (name, artifact) in read_dir_artifacts(&packed_dir) {
        let plain_name = name.strip_suffix(".z").unwrap();
        let plain = read_artifact(&plain_dir.join(plain_name)).unwrap();
        assert_eq!(artifact, plain, "{name}");
    }

    // A warm compressed resume skips everything.
    let (warm, report) = cache_plan(&packed_dir)
        .compress(Compression::Deflate)
        .resume(true)
        .run_ensembles_resumable()
        .unwrap();
    assert!(report.is_warm(), "{report}");
    assert_eq!(warm, cold_packed);
    std::fs::remove_dir_all(&plain_dir).unwrap();
    std::fs::remove_dir_all(&packed_dir).unwrap();
}

#[test]
fn service_and_joint_grids_resume_bit_identically() {
    // Service grid.
    let dir = scratch_dir("service");
    let plan = |d: &Path| {
        ExperimentPlan::service(
            vec![ServiceScenario {
                horizon: 120,
                ..ServiceScenario::default()
            }],
            vec![
                ServicePolicyKind::Lyapunov { v: 20.0 },
                ServicePolicyKind::AlwaysServe,
            ],
        )
        .replicate_seeds(vec![1, 2])
        .artifact_dir(d)
    };
    let (cold, _) = plan(&dir).run_ensembles_resumable().unwrap();
    std::fs::remove_file(dir.join("cell-s0-r0-p1.trace.jsonl")).unwrap();
    let (resumed, report) = plan(&dir).resume(true).run_ensembles_resumable().unwrap();
    assert_eq!(report.skipped.len(), 3, "{report}");
    assert_eq!(report.recomputed.len(), 1);
    assert_eq!(resumed, cold);
    std::fs::remove_dir_all(&dir).unwrap();

    // Joint grid.
    let dir = scratch_dir("joint");
    let scenario = JointScenario {
        network: vanet::NetworkConfig {
            n_regions: 4,
            n_rsus: 2,
            road_length_m: 800.0,
            ..vanet::NetworkConfig::default()
        },
        age_cap: 5,
        max_age_min: 3,
        max_age_max: 4,
        horizon: 50,
        warmup: 10,
        ..JointScenario::default()
    };
    let plan = |d: &Path| {
        ExperimentPlan::joint(vec![scenario.clone()])
            .replicate_seeds(vec![7, 8])
            .artifact_dir(d)
    };
    let (cold, _) = plan(&dir).run_ensembles_resumable().unwrap();
    std::fs::remove_file(dir.join("cell-s0-r1-p0.trace.jsonl")).unwrap();
    let (resumed, report) = plan(&dir).resume(true).run_ensembles_resumable().unwrap();
    assert_eq!(report.skipped.len(), 1, "{report}");
    assert_eq!(report.recomputed.len(), 1);
    assert_eq!(resumed, cold);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Anything unreadable squatting at a cell's artifact path — even a
/// directory — is invalidated and cleared for recompute, never an abort:
/// resume treats "cannot read" exactly like "stale".
#[test]
fn directory_at_cell_artifact_path_is_invalidated_and_recomputed() {
    let dir = scratch_dir("squatter");
    let (cold, _) = cache_plan(&dir).run_ensembles_resumable().unwrap();
    let victim = dir.join("cell-s0-r0-p1.trace.jsonl");
    std::fs::remove_file(&victim).unwrap();
    std::fs::create_dir(&victim).unwrap();
    std::fs::write(victim.join("junk"), "not an artifact").unwrap();

    let (resumed, report) = cache_plan(&dir)
        .resume(true)
        .run_ensembles_resumable()
        .unwrap();
    assert_eq!(report.invalidated.len(), 1, "{report}");
    assert_eq!(report.skipped.len(), 5);
    assert_eq!(resumed, cold);
    assert!(victim.is_file(), "the squatter was cleared and rewritten");
    assert!(read_artifact(&victim).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crashed writer's orphaned `*.tmp-<pid>-<seq>` temporary is swept when its
/// cell recomputes — and its presence never counts as a finished cell
/// (the artifact only exists under its final name after a completed
/// finish).
#[test]
fn orphaned_temporaries_are_swept_on_recompute() {
    let dir = scratch_dir("orphan-tmp");
    let (cold, _) = cache_plan(&dir).run_ensembles_resumable().unwrap();
    let victim = dir.join("cell-s0-r1-p0.trace.jsonl");
    std::fs::remove_file(&victim).unwrap();
    // The crashed worker got halfway: a torn temporary, no final file.
    let orphan = dir.join("cell-s0-r1-p0.trace.jsonl.tmp-99999");
    std::fs::write(&orphan, "{\"kind\":\"manifest\",\"form").unwrap();
    // A temporary of a cell that is NOT being recomputed must survive the
    // sweep (a live worker of a shared campaign may be streaming to it).
    let live = dir.join("cell-s0-r2-p0.trace.jsonl.tmp-88888");
    std::fs::write(&live, "in flight").unwrap();

    let (resumed, report) = cache_plan(&dir)
        .resume(true)
        .run_ensembles_resumable()
        .unwrap();
    assert_eq!(report.recomputed.len(), 1, "missing, not invalid: {report}");
    assert_eq!(report.skipped.len(), 5);
    assert_eq!(resumed, cold);
    assert!(!orphan.exists(), "the orphaned temporary must be swept");
    assert!(live.exists(), "other cells' temporaries are left alone");
    assert!(read_artifact(&victim).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_misconfigurations_are_rejected() {
    // resume without an artifact directory.
    let plan = ExperimentPlan::cache(vec![tiny_cache()], vec![CachePolicyKind::Never]).resume(true);
    assert!(plan.run_ensembles().is_err());
    // resume on the batch engine (full per-cell reports cannot be
    // reconstructed from artifacts).
    let dir = scratch_dir("reject");
    let plan = ExperimentPlan::cache(vec![tiny_cache()], vec![CachePolicyKind::Never])
        .artifact_dir(&dir)
        .resume(true);
    assert!(plan.run().is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_report_accounting_is_complete() {
    let report = ResumeReport::default();
    assert_eq!(report.n_cells(), 0);
    assert!(report.is_cold() && report.is_warm());

    let dir = scratch_dir("accounting");
    let (_, cold) = cache_plan(&dir).run_ensembles_resumable().unwrap();
    assert_eq!(cold.n_cells(), 6);
    let (_, warm) = cache_plan(&dir)
        .resume(true)
        .run_ensembles_resumable()
        .unwrap();
    assert_eq!(warm.n_cells(), 6);
    let text = warm.to_string();
    assert!(text.contains("6 skipped"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance bar for the compression codec on real workloads: a
/// `Full`-mode fig1a artifact (the paper's 4×5×1000-slot scenario) must
/// shrink at least 3× on disk while re-reading bit-identically.
#[test]
fn full_mode_fig1a_artifact_shrinks_3x_and_rereads_bitwise() {
    let dir = scratch_dir("fig1a-ratio");
    let scenario = CacheScenario::default(); // the fig1a preset scale
    let sim = CacheSimulation::new(scenario).unwrap();
    let plain = dir.join("fig1a.trace.jsonl");
    let packed = dir.join("fig1a.trace.jsonl.z");
    // Myopic needs no MDP solve, so the debug-build test stays quick; the
    // artifact's shape (20 AoI channels × 1000 slots + reward curves) is
    // identical for every policy.
    let a = sim.run_artifact(CachePolicyKind::Myopic, &plain).unwrap();
    let b = sim
        .run_artifact_with(CachePolicyKind::Myopic, &packed, Compression::Deflate)
        .unwrap();
    assert_eq!(a, b, "reports must not depend on the encoding");

    let plain_len = std::fs::metadata(&plain).unwrap().len();
    let packed_len = std::fs::metadata(&packed).unwrap().len();
    assert!(
        packed_len * 3 <= plain_len,
        "fig1a artifact must shrink >= 3x: {plain_len} -> {packed_len}"
    );
    assert_eq!(
        read_artifact(&plain).unwrap(),
        read_artifact(&packed).unwrap(),
        "both encodings must reconstruct the identical artifact"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
