//! Artifact round-trip suite at the simulator/engine level: a spilling
//! run must (a) retain no full traces in memory, (b) leave every other
//! report field identical to an in-memory run, and (c) produce artifacts
//! whose re-read series are **bit-identical** to what the in-memory run
//! retained.

use aoi_cache::persist::{read_artifact, ArtifactKind, PersistError};
use aoi_cache::presets::smoke_grid;
use aoi_cache::{
    run_joint_artifact, run_joint_recorded, CachePolicyKind, CacheRunReport, CacheScenario,
    CacheSimulation, ExperimentPlan, JointScenario, RecordingMode,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per call (no tempfile crate in the offline
/// workspace); removed by each test on success.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aoi-artifacts-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny() -> CacheScenario {
    CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 3,
        age_cap: 6,
        max_age_min: 3,
        max_age_max: 5,
        horizon: 300,
        seed: 42,
        ..CacheScenario::default()
    }
}

/// Asserts that `spilled` + its artifact reproduce `in_memory` exactly.
fn assert_cache_roundtrip(
    in_memory: &CacheRunReport,
    spilled: &CacheRunReport,
    path: &std::path::Path,
) {
    // The spilling run keeps no trace samples in memory...
    assert!(spilled.aoi_traces.iter().all(|t| t.is_empty()));
    // ...but everything else matches the in-memory run bit for bit.
    assert_eq!(spilled.aoi_summaries, in_memory.aoi_summaries);
    assert_eq!(spilled.reward, in_memory.reward);
    assert_eq!(spilled.cumulative_reward, in_memory.cumulative_reward);
    assert_eq!(spilled.updates, in_memory.updates);
    assert_eq!(spilled.mean_aoi_ratio, in_memory.mean_aoi_ratio);

    let artifact = read_artifact(path).unwrap();
    assert_eq!(artifact.manifest.artifact, ArtifactKind::Trace);
    assert_eq!(artifact.manifest.recording, in_memory.recording);
    let n = in_memory.aoi_traces.len();
    assert_eq!(
        artifact.channels.len(),
        n + 2,
        "traces + reward + cumulative"
    );
    for (k, want) in in_memory.aoi_traces.iter().enumerate() {
        assert_eq!(&artifact.channels[k].series, want, "channel {k} bitwise");
        assert_eq!(
            artifact.channels[k].summary,
            Some(in_memory.aoi_summaries[k]),
            "channel {k} summary"
        );
    }
    assert_eq!(artifact.channels[n].series, in_memory.reward);
    assert_eq!(artifact.channels[n + 1].series, in_memory.cumulative_reward);
}

#[test]
fn cache_run_artifact_roundtrips_in_every_mode() {
    let dir = scratch_dir("cache");
    for (i, mode) in [
        RecordingMode::Full,
        RecordingMode::Decimate(7),
        RecordingMode::SummaryOnly,
    ]
    .into_iter()
    .enumerate()
    {
        let sim = CacheSimulation::new(tiny()).unwrap().with_recording(mode);
        let in_memory = sim.run(CachePolicyKind::Myopic).unwrap();
        let path = dir.join(format!("run-{i}.trace.jsonl"));
        let spilled = sim.run_artifact(CachePolicyKind::Myopic, &path).unwrap();
        assert_cache_roundtrip(&in_memory, &spilled, &path);
        let artifact = read_artifact(&path).unwrap();
        assert_eq!(artifact.manifest.policy, "myopic");
        assert_eq!(artifact.manifest.seed, Some(42));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn joint_run_artifact_roundtrips() {
    let scenario = JointScenario {
        network: vanet::NetworkConfig {
            n_regions: 6,
            n_rsus: 2,
            road_length_m: 1200.0,
            ..vanet::NetworkConfig::default()
        },
        age_cap: 6,
        max_age_min: 3,
        max_age_max: 5,
        horizon: 200,
        warmup: 20,
        seed: 5,
        ..JointScenario::default()
    };
    let dir = scratch_dir("joint");
    let path = dir.join("joint.trace.jsonl");
    let in_memory = run_joint_recorded(&scenario, RecordingMode::Full).unwrap();
    let spilled = run_joint_artifact(&scenario, RecordingMode::Full, &path).unwrap();

    assert!(spilled.queues.iter().all(|q| q.is_empty()));
    assert_eq!(spilled.queue_summaries, in_memory.queue_summaries);
    assert_eq!(spilled.cache_reward, in_memory.cache_reward);
    assert_eq!(spilled.total_requests, in_memory.total_requests);

    let artifact = read_artifact(&path).unwrap();
    assert_eq!(artifact.manifest.policy, "myopic+lyapunov");
    let n = in_memory.queues.len();
    assert_eq!(artifact.channels.len(), n + 2);
    for (k, want) in in_memory.queues.iter().enumerate() {
        assert_eq!(&artifact.channels[k].series, want, "queue {k} bitwise");
    }
    assert_eq!(artifact.channels[n].series, in_memory.cache_reward);
    assert_eq!(
        artifact.channels[n + 1].series,
        in_memory.cumulative_cache_reward
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn grid_with_artifact_dir_matches_in_memory_run_bitwise() {
    let dir = scratch_dir("grid");
    let in_memory = smoke_grid().run().unwrap();
    let report = smoke_grid().artifact_dir(&dir).run().unwrap();

    // Ensembles and every non-trace cell field are unchanged.
    assert_eq!(report.ensembles, in_memory.ensembles);
    assert_eq!(report.cells.len(), in_memory.cells.len());
    for (got, want) in report.cells.iter().zip(&in_memory.cells) {
        let (got, want) = (got.outcome.cache().unwrap(), want.outcome.cache().unwrap());
        assert!(got.aoi_traces.iter().all(|t| t.is_empty()));
        assert_eq!(got.aoi_summaries, want.aoi_summaries);
        assert_eq!(got.cumulative_reward, want.cumulative_reward);
    }

    // Every cell artifact re-reads bit-identically to the in-memory cell.
    for cell in &in_memory.cells {
        let path = ExperimentPlan::cell_artifact_path(&dir, cell.id);
        let artifact = read_artifact(&path).unwrap();
        let want = cell.outcome.cache().unwrap();
        for (k, trace) in want.aoi_traces.iter().enumerate() {
            assert_eq!(&artifact.channels[k].series, trace, "{:?} ch{k}", cell.id);
        }
        assert_eq!(artifact.manifest.seed, Some(cell.id.seed));
    }

    // Every ensemble artifact re-reads bit-identically too.
    for ensemble in &in_memory.ensembles {
        let path = ExperimentPlan::ensemble_artifact_path(&dir, ensemble.scenario, ensemble.policy);
        let artifact = read_artifact(&path).unwrap();
        assert_eq!(artifact.manifest.artifact, ArtifactKind::Ensemble);
        assert_eq!(artifact.curves.len(), 1);
        let got = &artifact.curves[0];
        assert_eq!(got.label, ensemble.label);
        assert_eq!(got.scenario, ensemble.scenario);
        assert_eq!(got.policy, ensemble.policy);
        assert_eq!(got.curve, ensemble.curve, "ensemble curve bitwise");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn streamed_ensembles_with_artifacts_match_batch() {
    let dir = scratch_dir("streamed");
    let batch = smoke_grid().run().unwrap();
    let streamed = smoke_grid()
        .artifact_dir(&dir)
        .recording(RecordingMode::SummaryOnly)
        .run_ensembles()
        .unwrap();
    assert_eq!(batch.ensembles, streamed);
    // The streamed grid wrote the same artifact set.
    for ensemble in &streamed {
        let path = ExperimentPlan::ensemble_artifact_path(&dir, ensemble.scenario, ensemble.policy);
        let artifact = read_artifact(&path).unwrap();
        assert_eq!(artifact.curves[0].curve, ensemble.curve);
    }
    for cell in smoke_grid().cell_ids() {
        assert!(
            ExperimentPlan::cell_artifact_path(&dir, cell).exists(),
            "{cell:?} artifact missing"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unwritable_artifact_dir_is_reported() {
    let plan = smoke_grid().artifact_dir("/proc/definitely/not/writable");
    match plan.run() {
        Err(aoi_cache::AoiCacheError::Persist(PersistError::Io { .. })) => {}
        other => panic!("expected a persist error, got {other:?}"),
    }
}
