//! The invariant rules.
//!
//! Each rule is the static twin of a guarantee the workspace already pays
//! dynamic tests to defend (replay determinism, single-pool execution,
//! atomic artifacts, panic isolation). A rule fires on the *commit that
//! introduces* a violation, in every module — including ones no test
//! exercises yet.

use crate::lexer::Token;
use crate::source::SourceFile;

/// One rule's identity and documentation.
pub struct RuleDef {
    pub id: &'static str,
    /// One-line summary for listings.
    pub summary: &'static str,
    /// Long-form text for `--explain`.
    pub explain: &'static str,
}

/// All workspace rules, in severity-neutral declaration order.
pub const RULES: &[RuleDef] = &[
    RuleDef {
        id: "wall-clock",
        summary:
            "wall-clock reads confined to simkit::{lease,supervise,time} and the criterion shim",
        explain: "\
Replays are bit-identical only because simulated time is the discrete\n\
`TimeSlot` counter, never the host clock. `Instant::now()` / \n\
`SystemTime::now()` anywhere else smuggles wall-clock state into results\n\
or control flow that a replay cannot reproduce. Allowed homes: the lease\n\
protocol (expiry stamps), the supervision journal (diagnostics), \n\
simkit::time itself, and the criterion stand-in (measurement is its job).\n\
Measurement harnesses that *report* elapsed time as their product may\n\
waive the rule with a reason.",
    },
    RuleDef {
        id: "thread-pool",
        summary: "thread spawns confined to simkit::executor and lease::Heartbeat",
        explain: "\
The workspace runs on exactly one thread-pool implementation\n\
(`simkit::executor`) so worker counts, panic poisoning, and determinism\n\
contracts hold everywhere; `lease::Heartbeat`'s keeper thread is the one\n\
sanctioned exception. Any other `spawn(..)` creates untracked\n\
concurrency the executor's bit-identity guarantees cannot see.",
    },
    RuleDef {
        id: "atomic-persistence",
        summary: "file creation confined to simkit::{persist,lease,supervise,faults}",
        explain: "\
A crash must never leave a half-written file under a final name. The\n\
persistence layer guarantees this by streaming to `*.tmp-<pid>` siblings\n\
and renaming into place; leases, journals, and quarantine markers have\n\
their own atomic protocols. Raw `File::create` / `fs::write` /\n\
`OpenOptions` outside those modules bypasses every one of those\n\
guarantees — route artifact bytes through `ArtifactWriter` instead.",
    },
    RuleDef {
        id: "ordered-iteration",
        summary: "no HashMap/HashSet in non-test code (iteration order is nondeterministic)",
        explain: "\
`HashMap`/`HashSet` iteration order varies between processes, so any\n\
float accumulation or artifact bytes fed from one silently break\n\
bit-identical replays and byte-diffable artifacts. Non-test code must\n\
use `BTreeMap`/`BTreeSet` (or sort before iterating). Membership-only\n\
uses are still flagged: iteration creeps in during refactors, and the\n\
B-tree versions cost nothing at workspace scales. Waive only with a\n\
reason explaining why order provably cannot reach observable state.",
    },
    RuleDef {
        id: "panic-hygiene",
        summary:
            "no unwrap()/expect()/panic! in core/mdp/lyapunov/simkit library code without a waiver",
        explain: "\
Campaign cells run under a panic fence: a panic costs the whole cell a\n\
retry and, eventually, quarantine. Library code in the solver and\n\
simulation crates must therefore return structured errors for anything\n\
that can actually fail, and may keep `expect` only for true invariants —\n\
each justified by an inline waiver naming the invariant, so every\n\
potential panic site in the hot crates is visible and reasoned about.",
    },
    RuleDef {
        id: "safety-comments",
        summary: "every `unsafe` is preceded by a // SAFETY: comment",
        explain: "\
Every workspace library crate carries `#![forbid(unsafe_code)]`; the few\n\
`unsafe` blocks that exist (counting-allocator test shims) must each\n\
state their soundness argument in a `// SAFETY:` comment on the same\n\
line or immediately above, so the audit trail survives refactors.",
    },
    RuleDef {
        id: "waiver-syntax",
        summary: "waiver comments must parse: lint:allow(rule-id): reason",
        explain: "\
A waiver that does not parse (missing parentheses, unknown rule id,\n\
empty reason) is silently *not* honoured — which would turn a typo into\n\
an unreviewed suppression or an unsuppressed failure far from its\n\
cause. Malformed waivers are therefore violations themselves, and can\n\
never be waived.",
    },
    RuleDef {
        id: "unused-waiver",
        summary: "every waiver must cover at least one violation",
        explain: "\
A waiver that matches nothing is a stale exception: the code it\n\
justified has moved or been fixed, and leaving it behind grants a\n\
silent future suppression. Delete the waiver (or move it next to the\n\
code it means to cover). Unused waivers can never be waived.",
    },
];

/// Rule ids that inline waivers may name.
pub fn waivable_rule_ids() -> Vec<&'static str> {
    RULES
        .iter()
        .map(|r| r.id)
        .filter(|id| *id != "waiver-syntax" && *id != "unused-waiver")
        .collect()
}

/// Looks up a rule's definition by id.
pub fn rule(id: &str) -> Option<&'static RuleDef> {
    RULES.iter().find(|r| r.id == id)
}

/// A raw rule hit, before waiver resolution.
pub struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// Files exempt from `wall-clock` (the sanctioned clock readers).
const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/simkit/src/lease.rs",
    "crates/simkit/src/supervise.rs",
    "crates/simkit/src/time.rs",
    "crates/compat/criterion/src/lib.rs",
];

/// Files exempt from `thread-pool`.
const THREAD_POOL_ALLOWED: &[&str] = &[
    "crates/simkit/src/executor.rs",
    "crates/simkit/src/lease.rs",
];

/// Files exempt from `atomic-persistence` (the atomic protocols themselves).
const ATOMIC_PERSISTENCE_ALLOWED: &[&str] = &[
    "crates/simkit/src/persist.rs",
    "crates/simkit/src/persist/compress.rs",
    "crates/simkit/src/lease.rs",
    "crates/simkit/src/supervise.rs",
    "crates/simkit/src/faults.rs",
];

/// Crates whose library code is under `panic-hygiene`.
const PANIC_HYGIENE_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/mdp/src/",
    "crates/lyapunov/src/",
    "crates/simkit/src/",
];

/// True for files that are test/bench/example code by *path* (in addition
/// to `#[cfg(test)]` regions inside library files).
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|part| part == "tests" || part == "benches" || part == "examples")
}

/// Runs every applicable rule over one parsed file.
pub fn check_file(file: &SourceFile) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let path = file.rel_path.as_str();
    let test_file = is_test_path(path);

    if !test_file {
        if !WALL_CLOCK_ALLOWED.contains(&path) {
            check_wall_clock(file, &mut out);
        }
        if !THREAD_POOL_ALLOWED.contains(&path) {
            check_thread_pool(file, &mut out);
        }
        if !ATOMIC_PERSISTENCE_ALLOWED.contains(&path) {
            check_atomic_persistence(file, &mut out);
        }
        check_ordered_iteration(file, &mut out);
        if PANIC_HYGIENE_SCOPE.iter().any(|p| path.starts_with(p)) {
            check_panic_hygiene(file, &mut out);
        }
    }
    // Safety comments are required everywhere, test code included: the
    // only unsafe in the workspace *is* in test shims.
    check_safety_comments(file, &mut out);
    // Overlapping path patterns (e.g. `std::fs::File::create`) can hit one
    // line twice; one finding per (rule, line) is enough.
    out.sort_by_key(|f| (f.rule, f.line));
    out.dedup_by_key(|f| (f.rule, f.line));
    out
}

/// True when `tokens[i..]` spells `first :: … :: last` (a path ending in
/// `last`, with only `:` separators and intermediate idents between).
fn path_call(tokens: &[Token], i: usize, first: &str, last: &str) -> bool {
    if tokens[i].ident() != Some(first) {
        return false;
    }
    let mut j = i + 1;
    // Require `::` immediately after, then accept `segment ::` repeats.
    loop {
        if !(j + 1 < tokens.len() && tokens[j].is_punct(':') && tokens[j + 1].is_punct(':')) {
            return false;
        }
        j += 2;
        match tokens.get(j).and_then(Token::ident) {
            Some(seg) if seg == last => return true,
            Some(_) => j += 1,
            None => return false,
        }
    }
}

fn check_wall_clock(file: &SourceFile, out: &mut Vec<RawFinding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test_region(toks[i].line) {
            continue;
        }
        for ty in ["Instant", "SystemTime"] {
            if path_call(toks, i, ty, "now") {
                out.push(RawFinding {
                    rule: "wall-clock",
                    line: toks[i].line,
                    message: format!(
                        "`{ty}::now()` outside simkit::{{lease,supervise,time}} breaks replay determinism"
                    ),
                });
            }
        }
    }
}

fn check_thread_pool(file: &SourceFile, out: &mut Vec<RawFinding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test_region(toks[i].line) {
            continue;
        }
        if toks[i].ident() == Some("spawn") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            out.push(RawFinding {
                rule: "thread-pool",
                line: toks[i].line,
                message: "thread spawn outside simkit::executor / lease::Heartbeat creates \
                          untracked concurrency"
                    .to_string(),
            });
        }
    }
}

fn check_atomic_persistence(file: &SourceFile, out: &mut Vec<RawFinding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test_region(toks[i].line) {
            continue;
        }
        let hit = if path_call(toks, i, "File", "create")
            || path_call(toks, i, "File", "create_new")
            || path_call(toks, i, "File", "options")
        {
            Some("`File::create`-family call")
        } else if path_call(toks, i, "fs", "write") {
            // `std::fs::write` also matches: the walk starts at `fs`.
            Some("`fs::write` call")
        } else if toks[i].ident() == Some("OpenOptions") {
            Some("`OpenOptions` use")
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(RawFinding {
                rule: "atomic-persistence",
                line: toks[i].line,
                message: format!(
                    "{what} outside simkit::{{persist,lease,supervise,faults}} bypasses the \
                     tmp-rename atomic-artifact path (use ArtifactWriter)"
                ),
            });
        }
    }
}

fn check_ordered_iteration(file: &SourceFile, out: &mut Vec<RawFinding>) {
    let toks = &file.tokens;
    for t in toks {
        if file.in_test_region(t.line) {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = t.ident() {
            out.push(RawFinding {
                rule: "ordered-iteration",
                line: t.line,
                message: format!(
                    "`{name}` in non-test code: iteration order is nondeterministic; use \
                     BTreeMap/BTreeSet or sorted iteration"
                ),
            });
        }
    }
}

fn check_panic_hygiene(file: &SourceFile, out: &mut Vec<RawFinding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test_region(toks[i].line) {
            continue;
        }
        let t = &toks[i];
        let next_is = |c| toks.get(i + 1).is_some_and(|n: &Token| n.is_punct(c));
        let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
        let hit = match t.ident() {
            Some(m @ ("unwrap" | "expect")) if prev_is_dot && next_is('(') => {
                Some(format!("`.{m}(..)`"))
            }
            Some("panic") if next_is('!') => Some("`panic!(..)`".to_string()),
            _ => None,
        };
        if let Some(what) = hit {
            out.push(RawFinding {
                rule: "panic-hygiene",
                line: t.line,
                message: format!(
                    "{what} in library code of a panic-fenced crate: return a structured \
                     error, or waive naming the invariant that makes this unreachable"
                ),
            });
        }
    }
}

fn check_safety_comments(file: &SourceFile, out: &mut Vec<RawFinding>) {
    for t in &file.tokens {
        if t.ident() != Some("unsafe") {
            continue;
        }
        if has_safety_comment(file, t.line) {
            continue;
        }
        out.push(RawFinding {
            rule: "safety-comments",
            line: t.line,
            message: "`unsafe` without a `// SAFETY:` comment on the same line or immediately \
                      above"
                .to_string(),
        });
    }
}

/// True when a `SAFETY:` comment sits on `line` or in the contiguous
/// comment/attribute block directly above it.
fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    let safety_on = |l: u32| {
        file.comments
            .iter()
            .any(|c| c.line == l && c.text.contains("SAFETY:"))
    };
    if safety_on(line) {
        return true;
    }
    let mut l = line - 1;
    while l >= 1 {
        let text = file
            .lines
            .get(l as usize - 1)
            .map(|s| s.trim())
            .unwrap_or("");
        if text.starts_with("//") || text.starts_with("/*") || text.starts_with('*') {
            if safety_on(l) {
                return true;
            }
        } else if !(text.is_empty() || text.starts_with("#[")) {
            return false;
        }
        l -= 1;
    }
    false
}
