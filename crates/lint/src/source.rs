//! Per-file analysis context: lexed tokens, `#[cfg(test)]` regions, and
//! inline waivers.
//!
//! # Waiver syntax
//!
//! ```text
//! some_call(); // lint:allow(rule-id): why this exception is sound
//! ```
//!
//! A *trailing* waiver (code before it on the line) covers that line only.
//! A waiver on its own line covers the **next item**: everything from the
//! following statement or declaration through its terminating `;` or the
//! matching `}` of its first brace block — so one waiver above a `fn` can
//! cover every occurrence inside the body, keeping justified exceptions
//! readable instead of repeated per line.
//!
//! A comment is only recognised as a waiver when its text *begins* with the
//! marker; doc comments that merely mention the syntax are ignored.

use crate::lexer::{lex, Comment, Lexed, Token};
use std::ops::RangeInclusive;

/// A parsed inline waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id this waiver exempts.
    pub rule: String,
    /// The mandatory free-form justification.
    pub reason: String,
    /// Line of the waiver comment itself.
    pub line: u32,
    /// Inclusive line range the waiver covers.
    pub covers: RangeInclusive<u32>,
}

/// A syntactically invalid waiver comment (reported, never honoured).
#[derive(Debug, Clone)]
pub struct BadWaiver {
    pub line: u32,
    pub message: String,
}

/// One file ready for rule checks.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    pub lines: Vec<String>,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<RangeInclusive<u32>>,
    pub waivers: Vec<Waiver>,
    pub bad_waivers: Vec<BadWaiver>,
}

/// The marker a waiver comment must begin with.
const WAIVER_MARKER: &str = "lint:allow";

impl SourceFile {
    /// Parses `source` as the file at `rel_path` (workspace-relative).
    pub fn parse(rel_path: &str, source: &str, known_rules: &[&str]) -> SourceFile {
        let Lexed { tokens, comments } = lex(source);
        let lines: Vec<String> = source.lines().map(str::to_string).collect();
        let test_regions = find_test_regions(&tokens);
        let (waivers, bad_waivers) = parse_waivers(&comments, &tokens, known_rules);
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
            tokens,
            comments,
            test_regions,
            waivers,
            bad_waivers,
        }
    }

    /// True when `line` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions.iter().any(|r| r.contains(&line))
    }

    /// Source text of a 1-based line, trimmed, for finding snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Finds `#[cfg(test)] mod … { … }` and `#[test] fn … { … }` line ranges.
fn find_test_regions(tokens: &[Token]) -> Vec<RangeInclusive<u32>> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Scan the attribute body up to its closing `]` (attributes in
            // this workspace never nest brackets around a bare `test`).
            let attr_line = tokens[i].line;
            let mut j = i + 2;
            let mut is_test_attr = false;
            let mut body_len = 0usize;
            while j < tokens.len() && !tokens[j].is_punct(']') && body_len < 32 {
                if tokens[j].ident() == Some("test") {
                    is_test_attr = true;
                }
                j += 1;
                body_len += 1;
            }
            if is_test_attr && j < tokens.len() {
                // Skip any further attributes, then span the item.
                let mut k = j + 1;
                while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[')
                {
                    k += 2;
                    while k < tokens.len() && !tokens[k].is_punct(']') {
                        k += 1;
                    }
                    k += 1;
                }
                if let Some(end) = item_end(tokens, k) {
                    regions.push(attr_line..=tokens[end].line);
                    i = end + 1;
                    continue;
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// Given the index of an item's first token, returns the index of its last
/// token: the matching `}` of the first brace block opened at the item's
/// depth, or the `;` that terminates a braceless item.
fn item_end(tokens: &[Token], start: usize) -> Option<usize> {
    let depth = tokens.get(start)?.depth;
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        // The enclosing scope closed before the item found a terminator
        // (e.g. a waiver above the tail expression of a block): the item
        // cannot extend past its scope.
        if t.depth < depth && t.is_punct('}') {
            return Some(i);
        }
        if t.depth == depth && t.is_punct(';') {
            return Some(i);
        }
        if t.depth == depth && t.is_punct('{') {
            // Find the matching close: the next `}` recorded at this depth.
            let mut j = i + 1;
            while j < tokens.len() {
                if tokens[j].depth == depth && tokens[j].is_punct('}') {
                    return Some(j);
                }
                j += 1;
            }
            return Some(tokens.len() - 1);
        }
        i += 1;
    }
    None
}

/// Parses waiver comments, resolving each one's coverage range.
fn parse_waivers(
    comments: &[Comment],
    tokens: &[Token],
    known_rules: &[&str],
) -> (Vec<Waiver>, Vec<BadWaiver>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let text = c.text.trim_start();
        if !text.starts_with(WAIVER_MARKER) {
            continue;
        }
        let rest = &text[WAIVER_MARKER.len()..];
        let parsed = parse_waiver_body(rest);
        let (rule, reason) = match parsed {
            Ok(pair) => pair,
            Err(msg) => {
                bad.push(BadWaiver {
                    line: c.line,
                    message: msg,
                });
                continue;
            }
        };
        if !known_rules.contains(&rule.as_str()) {
            bad.push(BadWaiver {
                line: c.line,
                message: format!("waiver names unknown rule `{rule}`"),
            });
            continue;
        }
        let covers = if c.trailing {
            c.line..=c.line
        } else {
            next_item_range(tokens, c.line)
        };
        waivers.push(Waiver {
            rule,
            reason,
            line: c.line,
            covers,
        });
    }
    (waivers, bad)
}

/// Parses `(rule-id): reason` after the marker.
fn parse_waiver_body(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return Err("expected `(rule-id)` after `lint:allow`".to_string());
    };
    let Some(close) = body.find(')') else {
        return Err("unclosed `(` in waiver".to_string());
    };
    let rule = body[..close].trim().to_string();
    if rule.is_empty() || !rule.chars().all(|ch| ch.is_ascii_lowercase() || ch == '-') {
        return Err(format!("invalid rule id `{rule}` in waiver"));
    }
    let after = body[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return Err("waiver must carry a `: reason`".to_string());
    };
    let reason = reason.trim().to_string();
    if reason.is_empty() {
        return Err("waiver reason must not be empty".to_string());
    }
    Ok((rule, reason))
}

/// Coverage of a standalone waiver at `line`: the next item or statement.
fn next_item_range(tokens: &[Token], line: u32) -> RangeInclusive<u32> {
    let start = tokens.iter().position(|t| t.line > line);
    match start {
        Some(s) => match item_end(tokens, s) {
            Some(e) => line..=tokens[e].line,
            None => line..=tokens.last().map_or(line, |t| t.line),
        },
        // Nothing follows; the waiver covers only its own line (and will
        // be reported unused).
        None => line..=line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["panic-hygiene", "wall-clock"];

    #[test]
    fn trailing_waiver_covers_one_line() {
        let src = "fn f() {\n    x.unwrap(); // lint:allow(panic-hygiene): invariant\n}\n";
        let f = SourceFile::parse("a.rs", src, RULES);
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].covers, 2..=2);
        assert_eq!(f.waivers[0].reason, "invariant");
    }

    #[test]
    fn standalone_waiver_covers_next_item() {
        let src = "\
// lint:allow(panic-hygiene): whole fn is invariant-checked
fn f() {
    a.unwrap();
    b.unwrap();
}
fn g() {}
";
        let f = SourceFile::parse("a.rs", src, RULES);
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].covers, 1..=5);
    }

    #[test]
    fn standalone_waiver_covers_braceless_statement() {
        let src = "// lint:allow(wall-clock): one-off\nlet t = now();\nlet u = 1;\n";
        let f = SourceFile::parse("a.rs", src, RULES);
        assert_eq!(f.waivers[0].covers, 1..=2);
    }

    #[test]
    fn waiver_on_tail_expression_stays_inside_its_scope() {
        let src = "\
fn f() -> u32 {
    // lint:allow(panic-hygiene): tail expression
    x.unwrap()
}
fn g() {
    let y = 1;
}
";
        let f = SourceFile::parse("a.rs", src, RULES);
        // Coverage must end at f's closing brace, not leak into g.
        assert!(*f.waivers[0].covers.end() <= 4);
    }

    #[test]
    fn doc_comments_mentioning_syntax_are_not_waivers() {
        let src = "/// Use `lint:allow(panic-hygiene): reason` to waive.\nfn f() {}\n";
        let f = SourceFile::parse("a.rs", src, RULES);
        assert!(f.waivers.is_empty());
        assert!(f.bad_waivers.is_empty());
    }

    #[test]
    fn malformed_waivers_are_reported() {
        for src in [
            "// lint:allow(panic-hygiene)\nfn f() {}\n", // missing reason
            "// lint:allow(panic-hygiene):\nfn f() {}\n", // empty reason
            "// lint:allow(no-such-rule): reason\nfn f() {}\n", // unknown rule
            "// lint:allow panic-hygiene: reason\nfn f() {}\n", // missing parens
        ] {
            let f = SourceFile::parse("a.rs", src, RULES);
            assert!(f.waivers.is_empty(), "src: {src}");
            assert_eq!(f.bad_waivers.len(), 1, "src: {src}");
        }
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
fn also_prod() {}
";
        let f = SourceFile::parse("a.rs", src, RULES);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(3));
        assert!(f.in_test_region(5));
        assert!(!f.in_test_region(7));
    }

    #[test]
    fn test_attr_fn_is_a_test_region() {
        let src = "#[test]\nfn t() {\n    x.unwrap();\n}\nfn prod() {}\n";
        let f = SourceFile::parse("a.rs", src, RULES);
        assert!(f.in_test_region(3));
        assert!(!f.in_test_region(5));
    }

    #[test]
    fn cfg_feature_is_not_a_test_region() {
        let src = "#[cfg(feature = \"test\")]\nfn gated() {}\n";
        let f = SourceFile::parse("a.rs", src, RULES);
        // "test" only appears inside a string literal.
        assert!(!f.in_test_region(2));
    }
}
