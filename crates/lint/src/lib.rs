//! `aoi-lint` — a static workspace invariant checker.
//!
//! Every guarantee the campaign stack sells — bit-identical replays,
//! crash-safe artifacts, panic-isolated cells — is enforced dynamically by
//! proptests, counting allocators, and the crash-point sweep. This crate is
//! the static twin: a comment/string/raw-string-aware lexical pass over the
//! workspace's own source that proves the confinement rules those suites
//! can only catch after the fact, at the commit that introduces a
//! violation.
//!
//! Exceptions are inline waivers, visible and justified in place:
//!
//! ```text
//! let t = Instant::now(); // lint:allow(wall-clock): measurement harness output
//! ```
//!
//! or, on the line above an item, covering the whole item. See
//! [`rules::RULES`] for the rule set and `aoi-lint --explain <rule>` for
//! the rationale behind each.
//!
//! The crate is std-only by design: it must build offline, before any
//! other workspace crate, and lint itself.

pub mod lexer;
pub mod rules;
pub mod source;

use rules::{check_file, waivable_rule_ids, RawFinding};
use source::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// One finding, waived or not.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    pub line: u32,
    pub message: String,
    /// Trimmed source line, for context in reports.
    pub snippet: String,
    /// The waiver reason when this finding is covered by one.
    pub waived: Option<String>,
}

impl Finding {
    /// True when the finding counts against the exit status.
    pub fn is_violation(&self) -> bool {
        self.waived.is_none()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = if self.waived.is_some() {
            " (waived)"
        } else {
            ""
        };
        write!(
            f,
            "{}:{}: [{}]{} {}\n    {}",
            self.file, self.line, self.rule, status, self.message, self.snippet
        )
    }
}

/// Result of scanning a set of files.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a waiver.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_violation())
    }

    /// Number of unwaived findings.
    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }

    /// Number of waived findings.
    pub fn waived_count(&self) -> usize {
        self.findings.len() - self.violation_count()
    }

    /// Renders the machine-readable `--json` form (hand-rolled: the
    /// workspace serde is a no-op stub and this crate is std-only).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"rule\": {}, ", json_str(&f.rule)));
            s.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            s.push_str(&format!("\"line\": {}, ", f.line));
            s.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            s.push_str(&format!("\"snippet\": {}, ", json_str(&f.snippet)));
            match &f.waived {
                Some(reason) => {
                    s.push_str(&format!(
                        "\"waived\": true, \"reason\": {}",
                        json_str(reason)
                    ));
                }
                None => s.push_str("\"waived\": false"),
            }
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"violations\": {},\n  \"waived\": {}\n}}\n",
            self.files_scanned,
            self.violation_count(),
            self.waived_count()
        ));
        s
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Scans one file's source as if it lived at `rel_path` in the workspace.
///
/// This is the unit the fixture tests drive: the path determines which
/// rules are in scope, so a fixture can opt into e.g. `panic-hygiene` by
/// claiming a `crates/core/src/…` path.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let known = waivable_rule_ids();
    let file = SourceFile::parse(rel_path, source, &known);
    let raw = check_file(&file);
    let mut used = vec![false; file.waivers.len()];
    let mut findings = Vec::with_capacity(raw.len());
    for RawFinding {
        rule,
        line,
        message,
    } in raw
    {
        let waiver = file
            .waivers
            .iter()
            .enumerate()
            .find(|(_, w)| w.rule == rule && w.covers.contains(&line));
        let waived = waiver.map(|(idx, w)| {
            used[idx] = true;
            w.reason.clone()
        });
        findings.push(Finding {
            rule: rule.to_string(),
            file: rel_path.to_string(),
            line,
            message,
            snippet: file.snippet(line),
            waived,
        });
    }
    for bw in &file.bad_waivers {
        findings.push(Finding {
            rule: "waiver-syntax".to_string(),
            file: rel_path.to_string(),
            line: bw.line,
            message: bw.message.clone(),
            snippet: file.snippet(bw.line),
            waived: None,
        });
    }
    for (idx, w) in file.waivers.iter().enumerate() {
        if !used[idx] {
            findings.push(Finding {
                rule: "unused-waiver".to_string(),
                file: rel_path.to_string(),
                line: w.line,
                message: format!(
                    "waiver for `{}` covers no violation (lines {}..={}); delete it or move it \
                     next to the code it justifies",
                    w.rule,
                    w.covers.start(),
                    w.covers.end()
                ),
                snippet: file.snippet(w.line),
                waived: None,
            });
        }
    }
    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    findings
}

/// Directories (workspace-relative) never scanned.
const EXCLUDED_DIRS: &[&str] = &[
    "target",
    ".git",
    ".github",
    // Fixtures contain violations *on purpose*.
    "crates/lint/fixtures",
];

/// Scans every `.rs` file under `root` (a workspace checkout).
///
/// Returns an error only for I/O problems; findings — including in the
/// linter's own source — land in the [`Report`].
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in files {
        let text =
            std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("read {rel}: {e}"))?;
        report.findings.extend(scan_source(&rel, &text));
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Recursively collects workspace-relative `.rs` paths.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if EXCLUDED_DIRS.contains(&rel.as_str()) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated form of `path`.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waived_finding_is_not_a_violation() {
        let src = "fn f() {\n    let t = std::time::Instant::now(); \
                   // lint:allow(wall-clock): unit test of the waiver machinery\n}\n";
        let findings = scan_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].is_violation());
        assert_eq!(
            findings[0].waived.as_deref(),
            Some("unit test of the waiver machinery")
        );
    }

    #[test]
    fn unused_waiver_is_reported() {
        let src = "// lint:allow(wall-clock): nothing here uses the clock\nfn f() {}\n";
        let findings = scan_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unused-waiver");
        assert!(findings[0].is_violation());
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_mask() {
        let src = "fn f() {\n    let t = std::time::Instant::now(); \
                   // lint:allow(thread-pool): wrong rule\n}\n";
        let findings = scan_source("crates/core/src/x.rs", src);
        // The wall-clock hit stays a violation AND the waiver is unused.
        assert_eq!(findings.iter().filter(|f| f.is_violation()).count(), 2);
    }

    #[test]
    fn json_escapes_and_counts() {
        let report = Report {
            findings: vec![Finding {
                rule: "wall-clock".into(),
                file: "a\"b.rs".into(),
                line: 3,
                message: "line\nbreak".into(),
                snippet: "\tsnip".into(),
                waived: None,
            }],
            files_scanned: 1,
        };
        let json = report.to_json();
        assert!(json.contains("\"a\\\"b.rs\""));
        assert!(json.contains("line\\nbreak"));
        assert!(json.contains("\"violations\": 1"));
    }

    #[test]
    fn test_paths_are_exempt_from_scoped_rules() {
        let src = "fn helper() { x.unwrap(); }\n";
        assert!(scan_source("crates/core/tests/t.rs", src).is_empty());
        assert!(scan_source("crates/core/benches/b.rs", src).is_empty());
        assert!(scan_source("examples/e.rs", src).is_empty());
        assert_eq!(scan_source("crates/core/src/l.rs", src).len(), 1);
    }

    #[test]
    fn safety_rule_applies_even_in_tests() {
        let src = "fn t() { unsafe { danger() } }\n";
        let findings = scan_source("crates/core/tests/t.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "safety-comments");
        let ok = "fn t() {\n    // SAFETY: fixture\n    unsafe { danger() }\n}\n";
        assert!(scan_source("crates/core/tests/t.rs", ok).is_empty());
    }
}
