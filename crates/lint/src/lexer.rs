//! A minimal, lossy Rust lexer that is exact about the three things the
//! rules need: what is *code*, what is a *comment*, and where the *braces*
//! are.
//!
//! The lexer understands line comments (`//`, `///`, `//!`), nested block
//! comments, string literals with escapes, raw (and byte / C) strings with
//! arbitrary `#` fencing, character literals vs. lifetimes, and numeric
//! literals — so a rule that scans for `Instant::now` can never be fooled
//! by the same text inside a string, a doc example, or a comment. It does
//! **not** build a syntax tree: every rule in this workspace is expressible
//! over the token stream plus brace depth.

/// What a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword; the text is stored verbatim.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Any literal: string, raw string, byte string, char, or number.
    /// Rules never need the contents, only the fact that it is not code.
    Literal,
    /// A lifetime such as `'static` (distinguished from char literals).
    Lifetime,
}

/// One lexed token with its position.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Brace depth at the token: `{` carries the depth *before* it opens,
    /// `}` the depth *after* it closes, so a matching pair shares a value.
    pub depth: u32,
    pub kind: TokKind,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment (line or block) with its position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text *after* the `//` / `/*` opener (closer stripped too).
    pub text: String,
    /// True when code tokens precede the comment on the same line
    /// (a "trailing" comment, e.g. `foo(); // note`).
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments.
///
/// The lexer is total: malformed input (unterminated strings, stray bytes)
/// never panics, it simply consumes to end-of-file. That keeps the linter
/// usable on any text the workspace might contain.
pub fn lex(source: &str) -> Lexed {
    let b = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut depth: u32 = 0;
    // Whether a code token has been emitted on the current line (for
    // trailing-comment detection).
    let mut code_on_line = false;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                code_on_line = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment (also doc comments: the third `/` or `!`
                // simply becomes part of the text).
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: source[start..j].to_string(),
                    trailing: code_on_line,
                });
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, possibly nested.
                let start_line = line;
                let text_start = i + 2;
                let mut level = 1u32;
                let mut j = i + 2;
                while j < b.len() && level > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        level += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        level -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let text_end = j.saturating_sub(2).max(text_start);
                out.comments.push(Comment {
                    line: start_line,
                    text: source[text_start..text_end].to_string(),
                    trailing: code_on_line,
                });
                i = j;
            }
            b'"' => {
                let start_line = line;
                i = consume_string(b, i + 1, &mut line);
                out.tokens.push(Token {
                    line: start_line,
                    depth,
                    kind: TokKind::Literal,
                });
                code_on_line = true;
            }
            b'\'' => {
                // Lifetime vs. char literal. `'ident` not followed by a
                // closing quote is a lifetime; everything else is a char.
                let start_line = line;
                let is_lifetime =
                    i + 1 < b.len() && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_') && {
                        // Scan the identifier after the quote; a lifetime
                        // never ends in `'`.
                        let mut j = i + 1;
                        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                            j += 1;
                        }
                        !(j < b.len() && b[j] == b'\'')
                    };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        line: start_line,
                        depth,
                        kind: TokKind::Lifetime,
                    });
                    i = j;
                } else {
                    i = consume_char_literal(b, i + 1, &mut line);
                    out.tokens.push(Token {
                        line: start_line,
                        depth,
                        kind: TokKind::Literal,
                    });
                }
                code_on_line = true;
            }
            c if c.is_ascii_digit() => {
                let start_line = line;
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        j += 1;
                    } else if d == b'.' && j + 1 < b.len() && b[j + 1].is_ascii_digit() {
                        // `1.5` continues the number; `1..5` and `x.0.meth()`
                        // stop at the dot so ranges and field access lex as
                        // punctuation.
                        j += 2;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line: start_line,
                    depth,
                    kind: TokKind::Literal,
                });
                code_on_line = true;
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                let ident = &source[start..j];
                // Raw / byte / C string prefixes: the *whole* identifier
                // must be a prefix and be immediately followed by the
                // literal opener.
                let next = b.get(j).copied();
                let raw_prefix =
                    matches!(ident, "r" | "br" | "cr") && matches!(next, Some(b'"') | Some(b'#'));
                let plain_prefix =
                    matches!(ident, "b" | "c") && matches!(next, Some(b'"') | Some(b'\''));
                if raw_prefix {
                    let start_line = line;
                    i = consume_raw_string(b, j, &mut line);
                    out.tokens.push(Token {
                        line: start_line,
                        depth,
                        kind: TokKind::Literal,
                    });
                } else if plain_prefix {
                    let start_line = line;
                    if b[j] == b'"' {
                        i = consume_string(b, j + 1, &mut line);
                    } else {
                        i = consume_char_literal(b, j + 1, &mut line);
                    }
                    out.tokens.push(Token {
                        line: start_line,
                        depth,
                        kind: TokKind::Literal,
                    });
                } else {
                    out.tokens.push(Token {
                        line,
                        depth,
                        kind: TokKind::Ident(ident.to_string()),
                    });
                    i = j;
                }
                code_on_line = true;
            }
            b'{' => {
                out.tokens.push(Token {
                    line,
                    depth,
                    kind: TokKind::Punct('{'),
                });
                depth += 1;
                code_on_line = true;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                out.tokens.push(Token {
                    line,
                    depth,
                    kind: TokKind::Punct('}'),
                });
                code_on_line = true;
                i += 1;
            }
            _ => {
                // Any other byte (operators, non-ASCII) is one punct token.
                let ch = source[i..].chars().next().unwrap_or('?');
                out.tokens.push(Token {
                    line,
                    depth,
                    kind: TokKind::Punct(ch),
                });
                code_on_line = true;
                i += ch.len_utf8();
            }
        }
    }
    out
}

/// Consumes a double-quoted string body starting *after* the opening quote;
/// returns the index just past the closing quote.
fn consume_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a char / byte-char literal body starting *after* the opening
/// quote; returns the index just past the closing quote.
fn consume_char_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                // Unterminated char literal; bail at end of line so the
                // rest of the file still lexes sensibly.
                *line += 1;
                return i + 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string starting at the `#`s / quote after the `r` / `br` /
/// `cr` prefix; returns the index just past the closing fence.
fn consume_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        // Not actually a raw string (e.g. `r#ident` raw identifier); leave
        // the cursor where it is and let the main loop re-lex.
        return i;
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_not_tokenized() {
        let src = r###"
// Instant::now() in a comment
/* HashMap in a block /* nested */ comment */
let a = "Instant::now()";
let b = r#"HashMap "quoted" inside raw"#;
let c = b"unwrap()";
real_ident();
"###;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn brace_depth_matches_pairs() {
        let src = "mod m { fn f() { g(); } }";
        let lexed = lex(src);
        let braces: Vec<(char, u32)> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Punct(c @ ('{' | '}')) => Some((c, t.depth)),
                _ => None,
            })
            .collect();
        assert_eq!(braces, vec![('{', 0), ('{', 1), ('}', 1), ('}', 0)]);
    }

    #[test]
    fn trailing_comments_are_flagged() {
        let src = "code(); // trailing\n// standalone\n";
        let lexed = lex(src);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        // `pair.0.unwrap()` must expose `unwrap` as an identifier.
        let ids = idents("pair.0.unwrap()");
        assert!(ids.contains(&"unwrap".to_string()));
        // but `1.5` lexes as one literal, and `0..10` as two.
        assert!(idents("let x = 1.5e3; let r = 0..10;").contains(&"let".to_string()));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let src = "let a = \"one\ntwo\";\nafter();";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.ident() == Some("after"))
            .expect("after token");
        assert_eq!(after.line, 3);
    }
}
