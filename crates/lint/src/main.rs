//! `aoi-lint` binary: scan the workspace, report invariant violations.
//!
//! Exit codes: `0` clean (waived findings allowed), `1` unwaived
//! violations, `2` usage or I/O error.

use aoi_lint::rules::{rule, RULES};
use aoi_lint::scan_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
aoi-lint — static workspace invariant checker

USAGE:
    aoi-lint [--root DIR] [--json]
    aoi-lint --explain RULE
    aoi-lint --list

OPTIONS:
    --root DIR      Workspace root to scan (default: current directory)
    --json          Machine-readable findings on stdout
    --explain RULE  Print the rationale behind one rule
    --list          List all rules with one-line summaries
    --help          This text

Waive a finding in place, with a mandatory reason:
    offending_call(); // lint:allow(rule-id): why this exception is sound
A waiver on its own line covers the following item (fn, impl, statement).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list" => {
                for r in RULES {
                    println!("{:<20} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(id) = args.get(i + 1) else {
                    eprintln!("--explain needs a rule id (try --list)");
                    return ExitCode::from(2);
                };
                match rule(id) {
                    Some(r) => {
                        println!("{} — {}\n\n{}", r.id, r.summary, r.explain);
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!("unknown rule `{id}` (try --list)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--root" => {
                let Some(dir) = args.get(i + 1) else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aoi-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for f in report.violations() {
            println!("{f}");
        }
        println!(
            "aoi-lint: {} file(s), {} violation(s), {} waived",
            report.files_scanned,
            report.violation_count(),
            report.waived_count()
        );
    }
    if report.violation_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
