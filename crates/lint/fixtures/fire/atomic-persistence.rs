//! Fire fixture: raw file creation outside the atomic persistence layer.

use std::fs;
use std::fs::File;
use std::path::Path;

pub fn dump(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    fs::write(path, bytes)
}

pub fn open_final(path: &Path) -> std::io::Result<File> {
    File::create(path)
}
