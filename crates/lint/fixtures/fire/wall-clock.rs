//! Fire fixture: wall-clock reads outside the sanctioned modules.

use std::time::{Instant, SystemTime};

pub fn elapsed_ms() -> u128 {
    let start = Instant::now();
    expensive();
    start.elapsed().as_millis()
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}

fn expensive() {}
