//! Fire fixture: malformed waivers, each a `waiver-syntax` violation.

// lint:allow(wall-clock)
pub fn missing_reason() {}

// lint:allow(no-such-rule): names a rule the linter has never heard of
pub fn unknown_rule() {}

// lint:allow wall-clock: forgot the parentheses
pub fn missing_parens() {}
