//! Fire fixture: a stale waiver — the clock read it justified is gone.

// lint:allow(wall-clock): the Instant::now below was removed in a refactor
pub fn pure_now() -> u32 {
    42
}
