//! Fire fixture: an `unsafe` block with no `// SAFETY:` comment.

pub fn read_raw(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}
