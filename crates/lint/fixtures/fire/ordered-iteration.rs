//! Fire fixture: a HashMap in non-test code.

use std::collections::HashMap;

pub fn tally(xs: &[u64]) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}
