//! Fire fixture: a thread spawn outside simkit::executor / lease::Heartbeat.

pub fn fan_out() {
    let handle = std::thread::spawn(run);
    let _ = handle.join();
}

fn run() {}
