//! Fire fixture: unwrap / expect / panic! in panic-fenced library code.

pub fn headline(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap();
    if !first.is_finite() {
        panic!("non-finite headline");
    }
    *first
}

pub fn second(xs: &[f64]) -> f64 {
    *xs.get(1).expect("at least two samples")
}
