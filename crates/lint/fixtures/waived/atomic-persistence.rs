//! Waived fixture: a standalone waiver covering the tail expression below it.

use std::fs;
use std::path::Path;

pub fn dump(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    // lint:allow(atomic-persistence): fixture — writes the tmp sibling of a rename-into-place pair
    fs::write(path, bytes)
}
