//! Waived fixture: per-line waivers on membership-only HashMap uses.

use std::collections::HashMap; // lint:allow(ordered-iteration): fixture — membership only, order never observed

pub fn contains(map: &HashMap<u64, u64>, k: u64) -> bool { // lint:allow(ordered-iteration): fixture — membership only
    map.contains_key(&k)
}
