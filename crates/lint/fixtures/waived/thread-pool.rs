//! Waived fixture: a trailing waiver covering one line.

pub fn fan_out() {
    let handle = std::thread::spawn(run); // lint:allow(thread-pool): fixture — sanctioned helper thread
    let _ = handle.join();
}

fn run() {}
