//! Waived fixture: an item-level waiver naming the invariant.

// lint:allow(panic-hygiene): fixture — slice verified non-empty by the caller's validate()
pub fn headline(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}
