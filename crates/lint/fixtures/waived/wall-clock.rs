//! Waived fixture: an item-level waiver covering a whole function.

use std::time::Instant;

// lint:allow(wall-clock): fixture — measurement harness whose reported product IS elapsed wall time
pub fn elapsed_ms() -> u128 {
    let start = Instant::now();
    expensive();
    start.elapsed().as_millis()
}

fn expensive() {}
