//! Waived fixture: one `unsafe` satisfied by a SAFETY comment, one by a waiver.

pub fn read_documented(ptr: *const u8) -> u8 {
    // SAFETY: fixture — caller guarantees `ptr` is valid, aligned, and live.
    unsafe { *ptr }
}

pub fn read_waived(ptr: *const u8) -> u8 {
    unsafe { *ptr } // lint:allow(safety-comments): fixture — soundness argued in the module docs
}
