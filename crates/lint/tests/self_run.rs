//! The linter's own acceptance gate: the workspace — this crate included —
//! scans clean. Any new violation anywhere in the tree fails this test
//! before it ever reaches CI's `aoi-lint --json` job.

use aoi_lint::scan_workspace;
use std::path::Path;

#[test]
fn workspace_has_zero_unwaived_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root).expect("workspace scan must succeed");
    let violations: Vec<String> = report.violations().map(|f| f.to_string()).collect();
    assert!(
        violations.is_empty(),
        "unwaived violations in the workspace:\n{}",
        violations.join("\n")
    );
    // Guard against the scan silently walking the wrong directory: the
    // workspace has far more than 50 Rust files.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    // The waiver inventory is intentional: each one was justified in
    // review. A collapse to zero means the scan lost its waiver parsing.
    assert!(
        report.waived_count() > 0,
        "expected at least one waived finding in the workspace"
    );
}
