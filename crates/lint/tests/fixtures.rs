//! Fixture suite: every rule has a firing case and a waived case, and
//! deleting any single waiver from a waived fixture re-fires the rule.
//!
//! Fixtures live under `crates/lint/fixtures/` (excluded from workspace
//! scans — they contain violations on purpose) and are scanned through
//! [`aoi_lint::scan_source`] under a virtual `crates/core/src/` path so
//! every scoped rule is in force.

use aoi_lint::{scan_source, Finding};

/// Virtual path that opts fixtures into every scoped rule.
const FIXTURE_PATH: &str = "crates/core/src/fixture_under_test.rs";

/// (rule id, fire fixture, waived fixture). The two hygiene rules have no
/// waived form — they are unwaivable by construction.
const WAIVABLE: &[(&str, &str, &str)] = &[
    (
        "wall-clock",
        include_str!("../fixtures/fire/wall-clock.rs"),
        include_str!("../fixtures/waived/wall-clock.rs"),
    ),
    (
        "thread-pool",
        include_str!("../fixtures/fire/thread-pool.rs"),
        include_str!("../fixtures/waived/thread-pool.rs"),
    ),
    (
        "atomic-persistence",
        include_str!("../fixtures/fire/atomic-persistence.rs"),
        include_str!("../fixtures/waived/atomic-persistence.rs"),
    ),
    (
        "ordered-iteration",
        include_str!("../fixtures/fire/ordered-iteration.rs"),
        include_str!("../fixtures/waived/ordered-iteration.rs"),
    ),
    (
        "panic-hygiene",
        include_str!("../fixtures/fire/panic-hygiene.rs"),
        include_str!("../fixtures/waived/panic-hygiene.rs"),
    ),
    (
        "safety-comments",
        include_str!("../fixtures/fire/safety-comments.rs"),
        include_str!("../fixtures/waived/safety-comments.rs"),
    ),
];

fn violations(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.is_violation()).collect()
}

#[test]
fn every_fire_fixture_fires_its_rule_and_only_its_rule() {
    for (rule, fire, _) in WAIVABLE {
        let findings = scan_source(FIXTURE_PATH, fire);
        let viols = violations(&findings);
        assert!(
            viols.iter().any(|f| f.rule == *rule),
            "fire fixture for `{rule}` produced no `{rule}` violation: {findings:?}"
        );
        for f in &viols {
            assert_eq!(
                f.rule, *rule,
                "fire fixture for `{rule}` leaked a `{}` violation at line {}",
                f.rule, f.line
            );
        }
        assert!(
            findings.iter().all(|f| f.waived.is_none()),
            "fire fixture for `{rule}` unexpectedly contains a waiver"
        );
    }
}

#[test]
fn every_waived_fixture_is_clean_but_not_silent() {
    for (rule, _, waived) in WAIVABLE {
        let findings = scan_source(FIXTURE_PATH, waived);
        let viols = violations(&findings);
        assert!(
            viols.is_empty(),
            "waived fixture for `{rule}` still has violations: {viols:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.rule == *rule && f.waived.is_some()),
            "waived fixture for `{rule}` produced no waived `{rule}` finding — \
             the fixture no longer exercises the rule"
        );
    }
}

/// Removes the `idx`-th waiver comment from `src` (whole line for a
/// standalone waiver, the comment tail for a trailing one).
fn strip_waiver(src: &str, idx: usize) -> String {
    let mut seen = 0usize;
    let mut out = Vec::new();
    for line in src.lines() {
        if let Some(pos) = line.find("// lint:allow") {
            if seen == idx {
                seen += 1;
                let head = line[..pos].trim_end();
                if head.is_empty() {
                    continue; // standalone waiver: drop the whole line
                }
                out.push(head.to_string());
                continue;
            }
            seen += 1;
        }
        out.push(line.to_string());
    }
    out.join("\n")
}

#[test]
fn deleting_any_single_waiver_refires_the_rule() {
    for (rule, _, waived) in WAIVABLE {
        let n_waivers = waived.matches("// lint:allow").count();
        assert!(n_waivers >= 1, "waived fixture for `{rule}` has no waivers");
        for idx in 0..n_waivers {
            let stripped = strip_waiver(waived, idx);
            let findings = scan_source(FIXTURE_PATH, &stripped);
            assert!(
                findings.iter().any(|f| f.is_violation() && f.rule == *rule),
                "removing waiver #{idx} from the `{rule}` fixture did not \
                 re-fire the rule — the waiver was load-bearing for nothing"
            );
        }
    }
}

#[test]
fn malformed_waivers_are_violations_themselves() {
    let src = include_str!("../fixtures/fire/waiver-syntax.rs");
    let findings = scan_source(FIXTURE_PATH, src);
    let viols = violations(&findings);
    assert_eq!(
        viols.len(),
        3,
        "expected one waiver-syntax violation per malformed waiver: {viols:?}"
    );
    assert!(viols.iter().all(|f| f.rule == "waiver-syntax"));
}

#[test]
fn stale_waivers_are_violations_themselves() {
    let src = include_str!("../fixtures/fire/unused-waiver.rs");
    let findings = scan_source(FIXTURE_PATH, src);
    let viols = violations(&findings);
    assert_eq!(viols.len(), 1, "{viols:?}");
    assert_eq!(viols[0].rule, "unused-waiver");
}

#[test]
fn test_regions_inside_library_files_are_exempt_from_scoped_rules() {
    let src = "\
pub fn prod() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u32> = None;
        x.unwrap();
        let _ = std::time::Instant::now();
    }
}
";
    let findings = scan_source(FIXTURE_PATH, src);
    assert!(
        findings.is_empty(),
        "scoped rules fired inside #[cfg(test)]: {findings:?}"
    );
}

#[test]
fn item_level_waiver_covers_every_hit_in_the_item() {
    let src = "\
// lint:allow(panic-hygiene): fixture — every access is bounds-checked one line above
pub fn f(a: Option<u32>, b: Option<u32>) -> u32 {
    let a = a.unwrap();
    a + b.expect(\"checked\")
}
pub fn g(c: Option<u32>) -> u32 {
    c.unwrap()
}
";
    let findings = scan_source(FIXTURE_PATH, src);
    // Both hits in `f` are waived; the hit in `g` is outside the item.
    assert_eq!(findings.iter().filter(|f| f.waived.is_some()).count(), 2);
    let viols = violations(&findings);
    assert_eq!(viols.len(), 1, "{viols:?}");
    assert_eq!(viols[0].rule, "panic-hygiene");
}
