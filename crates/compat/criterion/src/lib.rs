//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset of the criterion API used by this workspace's
//! benches: `Criterion::benchmark_group` / `bench_function`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function,
//! bench_with_input, finish}`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple calibrated wall-clock loop over an adaptive
//! iteration count, reporting the mean together with the p50/p95 of the
//! per-batch times — so the BENCH trajectory captures tail latency, not
//! just the average — with none of criterion's heavier statistics. Passing
//! `--test` (as `cargo bench -- --test` does) runs every benchmark body
//! exactly once, which keeps CI smoke runs fast. Passing `--json PATH`
//! additionally writes every report as machine-readable JSON to `PATH`
//! when the harness finishes (the `BENCH_*.json` files in the repo root
//! are produced this way).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle passed to benchmark functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
    json_path: Option<std::path::PathBuf>,
    json_entries: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            sample_size: 20,
            json_path: None,
            json_entries: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a harness from the process arguments (`--test` selects
    /// run-once smoke mode, `--json PATH` arms the JSON report sink; all
    /// other harness flags are ignored).
    pub fn configure_from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let json_path = args
            .iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from);
        Criterion {
            test_mode,
            json_path,
            ..Criterion::default()
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, mut f: F) {
        let report = run_benchmark(self.test_mode, self.sample_size, &mut f);
        let name = name.to_string();
        print_report(&name, &report, None);
        self.record(&name, &report, None);
    }

    /// Appends one report to the pending `--json` entries (no-op without
    /// the flag).
    fn record(&mut self, name: &str, report: &Report, throughput: Option<&Throughput>) {
        if self.json_path.is_none() {
            return;
        }
        let throughput_field = match throughput {
            Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
            Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
            None => String::new(),
        };
        self.json_entries.push(format!(
            "{{\"name\":\"{}\",\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"iters\":{}{}}}",
            json_escape(name),
            report.mean.as_nanos(),
            report.p50.as_nanos(),
            report.p95.as_nanos(),
            report.iters,
            throughput_field,
        ));
    }

    /// Prints the closing summary and flushes the `--json` report, if armed
    /// (called by `criterion_main!`).
    pub fn final_summary(&self) {
        if self.test_mode {
            println!("criterion-compat: all benchmarks executed once (--test mode)");
        }
        if let Some(path) = &self.json_path {
            let body = format!(
                "{{\"benchmarks\":[\n{}\n]}}\n",
                self.json_entries.join(",\n")
            );
            // Mirror the workspace's tmp-rename protocol so an interrupted
            // bench run can never leave a torn report under the final name
            // (this shim cannot depend on simkit::persist).
            let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
            // lint:allow(atomic-persistence): this writes the *temporary*
            // sibling of a rename-into-place pair; the final path is only
            // ever produced by the atomic rename below.
            let written = std::fs::write(&tmp, body).and_then(|()| std::fs::rename(&tmp, path));
            if let Err(e) = written {
                let _ = std::fs::remove_file(&tmp);
                eprintln!(
                    "criterion-compat: cannot write --json {}: {e}",
                    path.display()
                );
            } else {
                println!(
                    "criterion-compat: wrote {} reports to {}",
                    self.json_entries.len(),
                    path.display()
                );
            }
        }
    }
}

/// Escapes a benchmark name for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares work-per-iteration so rates can be reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let report = run_benchmark(self.criterion.test_mode, samples, &mut f);
        let name = format!("{}/{}", self.name, id);
        print_report(&name, &report, self.throughput.as_ref());
        self.criterion
            .record(&name, &report, self.throughput.as_ref());
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from a bare parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to benchmark bodies.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    mean: Duration,
    p50: Duration,
    p95: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `f` (or runs it once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.mean = Duration::ZERO;
            self.p50 = Duration::ZERO;
            self.p95 = Duration::ZERO;
            self.iters = 1;
            return;
        }
        // Calibrate: grow the batch until one batch costs >= 2 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        // Measure: `samples` batches; report the mean per iteration plus
        // the p50/p95 of the per-batch iteration times (tail latency).
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut batch_ns: Vec<f64> = Vec::with_capacity(self.samples.max(1));
        for _ in 0..self.samples.max(1) {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            batch_ns.push(elapsed.as_nanos() as f64 / batch as f64);
            total += elapsed;
            iters += batch;
        }
        self.mean = total / iters.max(1) as u32;
        // The calibrated batch always does real work, so a measured tail
        // must never report as zero: sub-nanosecond per-iteration times
        // (tiny bodies the calibration cap could not stretch to 2 ms, or
        // hosts with a coarse monotonic clock) round *up* to 1 ns instead
        // of truncating to 0.
        self.p50 = Duration::from_nanos(percentile_of(&mut batch_ns, 50.0).max(1.0) as u64);
        self.p95 = Duration::from_nanos(percentile_of(&mut batch_ns, 95.0).max(1.0) as u64);
        self.iters = iters;
    }
}

/// Linear-interpolation percentile of the (unsorted) per-batch samples.
///
/// NaN batch times are skipped rather than fed to the comparator (a
/// panicking comparator here would abort the whole bench harness); with
/// no valid samples at all the percentile is reported as 0.
fn percentile_of(samples: &mut [f64], p: f64) -> f64 {
    // `total_cmp` is a total order: -NaN sorts before every number and
    // +NaN after, so the valid samples end up in one contiguous run.
    samples.sort_by(f64::total_cmp);
    let start = samples
        .iter()
        .position(|x| !x.is_nan())
        .unwrap_or(samples.len());
    let end = samples
        .iter()
        .rposition(|x| !x.is_nan())
        .map_or(0, |i| i + 1);
    let valid = &samples[start..end.max(start)];
    if valid.is_empty() {
        return 0.0;
    }
    let rank = p / 100.0 * (valid.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    valid[lo] * (1.0 - frac) + valid[hi] * frac
}

struct Report {
    mean: Duration,
    p50: Duration,
    p95: Duration,
    iters: u64,
    test_mode: bool,
}

fn run_benchmark<F: FnMut(&mut Bencher)>(test_mode: bool, samples: usize, f: &mut F) -> Report {
    let mut bencher = Bencher {
        test_mode,
        samples,
        mean: Duration::ZERO,
        p50: Duration::ZERO,
        p95: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    Report {
        mean: bencher.mean,
        p50: bencher.p50,
        p95: bencher.p95,
        iters: bencher.iters,
        test_mode,
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn print_report(name: &str, report: &Report, throughput: Option<&Throughput>) {
    if report.test_mode {
        println!("test {name} ... ok (ran once)");
        return;
    }
    let ns = report.mean.as_nanos();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0 => {
            format!("  ({:.0} elem/s)", *n as f64 / report.mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if ns > 0 => {
            format!("  ({:.0} B/s)", *n as f64 / report.mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<48} time: {:>12}/iter  p50: {:>12}  p95: {:>12}  over {} iters{rate}",
        format_duration(report.mean),
        format_duration(report.p50),
        format_duration(report.p95),
        report.iters
    );
}

/// Groups benchmark functions under one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut calls = 0;
        let mut c = Criterion {
            test_mode: true,
            sample_size: 5,
            ..Criterion::default()
        };
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn groups_chain_and_finish() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 5,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, n| {
            b.iter(|| n * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn measurement_mode_reports_nonzero_time() {
        let mut c = Criterion {
            test_mode: false,
            sample_size: 2,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("m");
        group.sample_size(2).bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..1000u64).sum::<u64>()))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn percentiles_interpolate() {
        let mut xs = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile_of(&mut xs, 0.0), 1.0);
        assert_eq!(percentile_of(&mut xs, 50.0), 2.5);
        assert_eq!(percentile_of(&mut xs, 100.0), 4.0);
        // p95 of 4 samples: rank 2.85 between 3 and 4.
        assert!((percentile_of(&mut xs, 95.0) - 3.85).abs() < 1e-12);
        assert_eq!(percentile_of(&mut [], 50.0), 0.0);
    }

    #[test]
    fn percentiles_skip_nan_batch_times() {
        // Regression: a NaN batch time used to panic the sort comparator
        // and with it the whole bench harness.
        let mut xs = vec![4.0, f64::NAN, 1.0, 3.0, f64::NAN, 2.0];
        assert_eq!(percentile_of(&mut xs, 0.0), 1.0);
        assert_eq!(percentile_of(&mut xs, 50.0), 2.5);
        assert_eq!(percentile_of(&mut xs, 100.0), 4.0);
        assert_eq!(percentile_of(&mut [f64::NAN, f64::NAN], 50.0), 0.0);
    }

    #[test]
    fn measurement_records_tail_percentiles() {
        let mut bencher = Bencher {
            test_mode: false,
            samples: 4,
            mean: Duration::ZERO,
            p50: Duration::ZERO,
            p95: Duration::ZERO,
            iters: 0,
        };
        bencher.iter(|| std::hint::black_box((0..2000u64).sum::<u64>()));
        assert!(bencher.iters > 0);
        assert!(bencher.p50 > Duration::ZERO);
        // Tail percentiles are ordered: p50 <= p95.
        assert!(bencher.p95 >= bencher.p50);
    }

    /// Sub-nanosecond per-iteration times must round up, not truncate the
    /// tail report to zero (the old `as u64` truncation made this test
    /// flaky on fast hosts).
    #[test]
    fn sub_nanosecond_bodies_still_report_positive_tails() {
        let mut bencher = Bencher {
            test_mode: false,
            samples: 2,
            mean: Duration::ZERO,
            p50: Duration::ZERO,
            p95: Duration::ZERO,
            iters: 0,
        };
        bencher.iter(|| std::hint::black_box(1u64));
        assert!(bencher.p50 > Duration::ZERO);
        assert!(bencher.p95 >= bencher.p50);
    }

    #[test]
    fn json_entries_flush_to_the_sink_path() {
        let path =
            std::env::temp_dir().join(format!("criterion-compat-json-{}.json", std::process::id()));
        let mut c = Criterion {
            test_mode: true,
            sample_size: 2,
            json_path: Some(path.clone()),
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(3));
        group.bench_function("one", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("solo \"quoted\"", |b| b.iter(|| 2 + 2));
        c.final_summary();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\":\"g/one\""), "{body}");
        assert!(body.contains("\"elements\":3"), "{body}");
        assert!(body.contains("solo \\\"quoted\\\""), "{body}");
        assert!(body.starts_with("{\"benchmarks\":["), "{body}");
        assert!(body.trim_end().ends_with("]}"), "{body}");
        std::fs::remove_file(&path).ok();
    }
}
