//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! This workspace builds in an environment with no access to crates.io, and
//! nothing in it actually serializes — the `#[derive(Serialize, Deserialize)]`
//! annotations exist so the types are ready for the real serde once the build
//! environment has network access. These derives therefore accept the same
//! syntax (including `#[serde(...)]` helper attributes) and expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: parses nothing, emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: parses nothing, emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
