//! Offline stand-in for the `serde` crate.
//!
//! Provides just enough surface for `use serde::{Deserialize, Serialize};`
//! plus derive-position usage to compile: the derive macros (re-exported from
//! the sibling no-op `serde_derive`) and empty marker traits of the same
//! names. Nothing in this workspace serializes at runtime; the annotations
//! keep the types ready for the real serde.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (never implemented or required
/// by this stand-in; the derive expands to nothing).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (never implemented or
/// required by this stand-in; the derive expands to nothing).
pub trait Deserialize<'de> {}
