//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map` / `prop_filter`, range and tuple strategies,
//! [`collection::vec`], [`bool::ANY`], [`ProptestConfig`](test_runner::ProptestConfig),
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros.
//!
//! Differences from the real crate: cases are generated from a deterministic
//! per-test seed (override with the `PROPTEST_RNG_SEED` environment
//! variable), failures are reported by panicking without input shrinking,
//! and `prop_assume!` simply skips the current case.

#![forbid(unsafe_code)]

/// Test-runner configuration and the deterministic case RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic generator driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator from the test name (stable across runs) or
        /// from `PROPTEST_RNG_SEED` when set.
        pub fn for_test(name: &str) -> Self {
            let seed = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(seed ^ h))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test-case values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` derives
        /// from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects generated values failing `pred` (resamples, up to a cap).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: String,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("strategy filter rejected 1000 candidates: {}", self.whence);
        }
    }

    /// A strategy producing one fixed (cloned) value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact count or a (half-open or
    /// inclusive) range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a test running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let case = || $body;
                case();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a property within a [`proptest!`] body (panics on failure; this
/// stand-in performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..10, 0.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(n in 2usize..8, x in -1.0f64..1.0) {
            prop_assert!((2..8).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u32..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            for x in &v {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn map_and_flat_map_compose(
            v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0usize..10, n))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn assume_skips(pair in arb_pair()) {
            prop_assume!(pair.0 > 2);
            prop_assert!(pair.0 > 2);
        }

        #[test]
        fn filter_retries(n in (0usize..100).prop_filter("even", |n| n % 2 == 0)) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn booleans_vary(flags in crate::collection::vec(crate::bool::ANY, 64)) {
            // 64 coin flips virtually never agree unanimously.
            prop_assert!(flags.iter().any(|&b| b) && flags.iter().any(|&b| !b));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
