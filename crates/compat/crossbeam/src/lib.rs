//! Offline stand-in for the `crossbeam` crate: scoped threads implemented
//! over `std::thread::scope`, exposing crossbeam's closure signature (the
//! spawned closure receives the scope, enabling nested spawns).

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    /// Handle for spawning threads tied to the enclosing [`scope`].
    #[derive(Clone, Copy, Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread; the closure receives the scope for nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            // lint:allow(thread-pool): this *is* the scoped-thread primitive
            // simkit::executor builds its one pool on; nothing else calls it.
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope in which borrowing spawned threads join before
    /// return. Always `Ok` here: `std::thread::scope` resumes unwinding on
    /// child panics instead of collecting them, matching crossbeam's
    /// behaviour closely enough for `.expect(..)`-style call sites.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = vec![1u64, 2, 3, 4];
        let total = std::sync::Mutex::new(0u64);
        super::thread::scope(|scope| {
            for &x in &data {
                let total = &total;
                scope.spawn(move |_| {
                    *total.lock().unwrap() += x;
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.into_inner().unwrap(), 10);
    }

    #[test]
    fn nested_spawns_work() {
        let hit = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            let hit = &hit;
            scope.spawn(move |inner| {
                inner.spawn(move |_| hit.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .expect("no panics");
        assert!(hit.load(std::sync::atomic::Ordering::SeqCst));
    }
}
