//! Offline stand-in for `parking_lot`, implemented over `std::sync` with
//! parking_lot's poison-free API (locking never returns a `Result`).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Mutual exclusion with parking_lot's panic-free `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (poisoning is ignored, as in parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
