//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so this crate provides a
//! real, deterministic implementation of the `rand` surface the workspace
//! uses:
//!
//! * [`RngCore`] — the object-safe generator core,
//! * [`Rng`] — the extension trait with `gen`, `gen_range` and `gen_bool`,
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] — xoshiro256++ seeded through SplitMix64.
//!
//! The generator is **not** bit-compatible with the real `StdRng` (ChaCha12);
//! everything in this workspace only relies on determinism under a fixed seed
//! and on reasonable statistical quality, both of which xoshiro256++
//! provides.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Object-safe core of a random-number generator.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits (the stand-in for
/// `rand`'s `Standard` distribution).
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the stand-in for `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening-multiply mapping of a raw `u64` onto `0..span`.
fn mul_shift(raw: u64, span: u64) -> u64 {
    ((u128::from(raw) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_shift(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every raw value is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + mul_shift(rng.next_u64(), span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard against round-up onto the excluded endpoint.
                if v < self.end { v } else { self.end.next_down() }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution (uniform bits
    /// for integers, uniform `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded through the SplitMix64 expander as its authors recommend.
    ///
    /// Not bit-compatible with the real `rand::rngs::StdRng`; deterministic
    /// under [`SeedableRng::seed_from_u64`] and statistically strong for
    /// simulation use.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for c in counts {
            let frac = c as f64 / 50_000.0;
            assert!((frac - 0.2).abs() < 0.02, "frac {frac}");
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(3u32..=7);
            assert!((3..=7).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&v));
        }
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynamic: &mut dyn RngCore = &mut rng;
        let x: f64 = Rng::gen::<f64>(dynamic);
        assert!((0.0..1.0).contains(&x));
        let y = Rng::gen_range(dynamic, 0usize..10);
        assert!(y < 10);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }
}
