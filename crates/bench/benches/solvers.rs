//! Criterion benches: MDP solver scaling on the per-RSU cache MDP, and the
//! compiled-CSR-kernel vs trait-callback comparison tracked by the BENCH
//! trajectory.

use aoi_cache::{Age, RsuSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdp::solver::{PolicyIteration, QLearning, ValueIteration};
use mdp::{CompiledMdp, FiniteMdp, ProductSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec(n_contents: usize, cap: u32) -> RsuSpec {
    let popularity: Vec<f64> = (0..n_contents).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = popularity.iter().sum();
    RsuSpec {
        max_ages: (0..n_contents)
            .map(|i| Age::new(cap - 1 - (i as u32 % 2)).expect("non-zero"))
            .collect(),
        popularity: popularity.into_iter().map(|p| p / total).collect(),
        age_cap: Age::new(cap).expect("non-zero"),
        weight: 1.0,
        update_cost: 0.3,
    }
}

fn bench_value_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_iteration");
    group.sample_size(10);
    for (n, cap) in [(2usize, 6u32), (3, 6), (4, 6)] {
        let s = spec(n, cap);
        let mdp = s.mdp().expect("valid spec");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}states", mdp.n_states())),
            &mdp,
            |b, mdp| {
                b.iter(|| {
                    ValueIteration::new(0.9)
                        .tolerance(1e-6)
                        .solve(mdp)
                        .expect("solves")
                })
            },
        );
    }
    group.finish();
}

/// The headline comparison: value iteration through the trait callback
/// (re-deriving every transition row per sweep) against the compiled CSR
/// kernel, at a small and a large per-RSU state space. `compile+solve`
/// includes the one-off compilation; `solve_compiled` measures pure sweep
/// throughput on a prebuilt kernel (the steady state for simulators, which
/// compile each RSU once).
fn bench_compiled_vs_callback(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiled_vs_callback");
    group.sample_size(10);
    // (label, contents, age cap): 216 states vs 4096 states.
    for (label, n, cap) in [("small_216", 3usize, 6u32), ("large_4096", 4, 8)] {
        let s = spec(n, cap);
        let mdp = s.mdp().expect("valid spec");
        let kernel = mdp.compile().expect("compiles");
        let vi = ValueIteration::new(0.95).tolerance(1e-9);
        group.bench_with_input(BenchmarkId::new("callback", label), &mdp, |b, mdp| {
            b.iter(|| vi.solve_callback(mdp).expect("solves"))
        });
        group.bench_with_input(BenchmarkId::new("compile+solve", label), &mdp, |b, mdp| {
            b.iter(|| vi.solve(mdp).expect("solves"))
        });
        group.bench_with_input(
            BenchmarkId::new("solve_compiled", label),
            &kernel,
            |b, kernel| b.iter(|| vi.solve_compiled(kernel).expect("solves")),
        );
        let pi = PolicyIteration::new(0.95);
        group.bench_with_input(BenchmarkId::new("pi_callback", label), &mdp, |b, mdp| {
            b.iter(|| pi.solve_callback(mdp).expect("solves"))
        });
        group.bench_with_input(
            BenchmarkId::new("pi_solve_compiled", label),
            &kernel,
            |b, kernel| b.iter(|| pi.solve_compiled(kernel).expect("solves")),
        );
    }
    group.finish();
}

/// One full Bellman sweep over the kernel through the given Q backend:
/// per-state max over valid actions into `out`, then buffer swap.
fn sweeps_with(
    kernel: &CompiledMdp,
    sweeps: usize,
    q: impl Fn(&CompiledMdp, usize, usize, &[f64], f64) -> Option<f64>,
) -> Vec<f64> {
    let n = kernel.n_states();
    let mut values = vec![0.0f64; n];
    let mut out = vec![0.0f64; n];
    for _ in 0..sweeps {
        for (s, slot) in out.iter_mut().enumerate() {
            let mut best = f64::NEG_INFINITY;
            for a in 0..kernel.n_actions() {
                if let Some(qv) = q(kernel, s, a, &values, 0.95) {
                    if qv > best {
                        best = qv;
                    }
                }
            }
            *slot = best;
        }
        std::mem::swap(&mut values, &mut out);
    }
    values
}

/// Pure sweep-kernel throughput (state backups per second): the padded-lane
/// gather (`q_value`) against the reference scalar gather (`q_value_scalar`)
/// on the same prebuilt kernels — the isolated before/after for the PR7
/// data-parallel restructuring, with the end-to-end number tracked by
/// `solve_compiled` above. Throughput is counted in state backups
/// (`n_states × sweeps`).
fn bench_sweep_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_kernel");
    group.sample_size(10);
    const SWEEPS: usize = 8;
    for (label, n, cap) in [("small_216", 3usize, 6u32), ("large_4096", 4, 8)] {
        let kernel = spec(n, cap)
            .mdp()
            .expect("valid spec")
            .compile()
            .expect("compiles");
        group.throughput(criterion::Throughput::Elements(
            (kernel.n_states() * SWEEPS) as u64,
        ));
        group.bench_with_input(BenchmarkId::new("scalar", label), &kernel, |b, kernel| {
            b.iter(|| {
                std::hint::black_box(sweeps_with(kernel, SWEEPS, |k, s, a, v, g| {
                    k.q_value_scalar(s, a, v, g)
                }))
            })
        });
        group.bench_with_input(BenchmarkId::new("lanes", label), &kernel, |b, kernel| {
            b.iter(|| {
                std::hint::black_box(sweeps_with(kernel, SWEEPS, |k, s, a, v, g| {
                    k.q_value(s, a, v, g)
                }))
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked", label), &kernel, |b, kernel| {
            b.iter(|| {
                let n = kernel.n_states();
                let mut values = vec![0.0f64; n];
                let mut out = vec![0.0f64; n];
                for _ in 0..SWEEPS {
                    kernel.backup_block(0..n, &values, &mut out, 0.95);
                    std::mem::swap(&mut values, &mut out);
                }
                std::hint::black_box(values)
            })
        });
    }
    group.finish();
}

/// One-off cost of compiling a model into the CSR kernel (the price paid to
/// unlock the fast sweeps above).
fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_mdp");
    group.sample_size(10);
    for (label, n, cap) in [("small_216", 3usize, 6u32), ("large_4096", 4, 8)] {
        let mdp = spec(n, cap).mdp().expect("valid spec");
        group.bench_with_input(BenchmarkId::from_parameter(label), &mdp, |b, mdp| {
            b.iter(|| CompiledMdp::compile(mdp).expect("compiles"))
        });
    }
    group.finish();
}

fn bench_q_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("q_learning");
    group.sample_size(10);
    let s = spec(3, 6);
    let mdp = s.mdp().expect("valid spec");
    for steps in [10_000usize, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                QLearning::new(0.9)
                    .steps(steps)
                    .learn(&mdp, &mut rng)
                    .expect("learns")
            })
        });
    }
    group.finish();
}

/// The experiment engine on the grid presets: how much a whole multi-cell
/// grid costs end to end (policy solves on shared compiled kernels plus
/// the simulation loops), serial vs auto-sized executor fan-out. On
/// multicore hosts the auto variant also measures the cell-level
/// parallelism win; on single-CPU hosts the two coincide.
fn bench_experiment_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_grid");
    group.sample_size(10);
    let serial = aoi_cache::presets::smoke_grid().workers(1);
    group.bench_function("smoke_2x2_serial", |b| {
        b.iter(|| serial.run().expect("runs"))
    });
    let auto = aoi_cache::presets::smoke_grid();
    group.bench_function("smoke_2x2_auto", |b| b.iter(|| auto.run().expect("runs")));
    group.finish();
}

fn bench_state_encoding(c: &mut Criterion) {
    let space = ProductSpace::new(vec![9; 5]).expect("fits");
    let coords = vec![3usize, 7, 1, 8, 0];
    c.bench_function("product_space_encode_decode", |b| {
        b.iter(|| {
            let idx = space.encode(std::hint::black_box(&coords)).expect("valid");
            std::hint::black_box(space.decode(idx))
        })
    });
}

fn bench_transition_row(c: &mut Criterion) {
    let s = spec(5, 9);
    let mdp = s.mdp().expect("valid spec");
    let mut buf = Vec::new();
    c.bench_function("cache_mdp_transition_row", |b| {
        let mut state = 0usize;
        b.iter(|| {
            mdp.transitions(std::hint::black_box(state), 2, &mut buf);
            state = (state + 9973) % mdp.n_states();
            std::hint::black_box(buf.len())
        })
    });
}

criterion_group!(
    benches,
    bench_value_iteration,
    bench_compiled_vs_callback,
    bench_sweep_kernel,
    bench_compile,
    bench_q_learning,
    bench_experiment_grid,
    bench_state_encoding,
    bench_transition_row
);
criterion_main!(benches);
