//! Criterion benches: end-to-end experiment throughput.
//!
//! `bench_fig1a` / `bench_fig1b` time reduced-scale versions of the two
//! paper artifacts (small enough to iterate; the full-scale binaries are
//! `cargo run --release -p aoi-bench --bin fig1a` / `fig1b`). `bench_joint`
//! times the two-stage scheme per slot on the vanet substrate.

use aoi_cache::presets::fig1b_policies;
use aoi_cache::{
    compare_service, run_joint, CachePolicyKind, CacheScenario, CacheSimulation, JointScenario,
    ServiceScenario,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_fig1a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1a");
    group.sample_size(10);
    let scenario = CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 3,
        age_cap: 6,
        max_age_min: 3,
        max_age_max: 5,
        horizon: 1000,
        ..CacheScenario::default()
    };
    let sim = CacheSimulation::new(scenario).expect("valid scenario");
    group.throughput(Throughput::Elements(scenario.horizon as u64));
    group.bench_function("solve_and_run_vi", |b| {
        b.iter(|| {
            std::hint::black_box(
                sim.run(CachePolicyKind::ValueIteration { gamma: 0.95 })
                    .expect("runs"),
            )
        })
    });
    group.bench_function("run_myopic", |b| {
        b.iter(|| std::hint::black_box(sim.run(CachePolicyKind::Myopic).expect("runs")))
    });
    group.finish();
}

fn bench_fig1b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1b");
    let scenario = ServiceScenario {
        horizon: 1000,
        ..ServiceScenario::default()
    };
    group.throughput(Throughput::Elements(3 * scenario.horizon as u64));
    group.bench_function("three_policies_1000_slots", |b| {
        b.iter(|| {
            std::hint::black_box(compare_service(&scenario, &fig1b_policies()).expect("runs"))
        })
    });
    group.finish();
}

fn bench_joint(c: &mut Criterion) {
    let mut group = c.benchmark_group("joint");
    group.sample_size(10);
    let mut scenario = JointScenario::default();
    scenario.network.n_regions = 8;
    scenario.network.n_rsus = 2;
    scenario.network.road_length_m = 1600.0;
    scenario.horizon = 500;
    scenario.warmup = 20;
    group.throughput(Throughput::Elements(scenario.horizon as u64));
    group.bench_function("two_stage_500_slots", |b| {
        b.iter(|| std::hint::black_box(run_joint(&scenario).expect("runs")))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1a, bench_fig1b, bench_joint);
criterion_main!(benches);
