//! The simulation step-loop benchmarks backing the allocation-free hot
//! path: per-slot state encoding and policy decisions at fig1a scale, the
//! full step loop under every [`RecordingMode`], the fig1b service loop,
//! and an allocation census comparing the modes (and the pre-refactor
//! `Vec`-per-encode path) on the fig1a preset.

use aoi_cache::presets::{fig1a_scenario, fig1b_scenario};
use aoi_cache::{
    Age, AgeVector, CachePolicyKind, CacheSimulation, CompiledRsuMdp, RecordingMode, RsuSpec,
    ServicePolicyKind,
};
use criterion::{criterion_group, Criterion};
use mdp::ProductSpace;
use simkit::executor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a pure pass-through to the System allocator; the only addition is
// a relaxed atomic counter, which cannot affect GlobalAlloc's contract.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards `System.alloc`'s own contract unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the caller upholds GlobalAlloc's layout contract, which is
        // forwarded verbatim to the System allocator.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards `System.dealloc`'s own contract unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by the matching alloc/realloc below,
        // which delegate to System, so System may free it.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards `System.realloc`'s own contract unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` obey the caller's GlobalAlloc contract and
        // came from System via this allocator.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// One RSU of the fig1a preset (5 contents at age cap 9 → 59 049 states).
fn fig1a_rsu_spec() -> RsuSpec {
    let scenario = fig1a_scenario();
    let sim = CacheSimulation::new(scenario).expect("valid preset");
    sim.specs()[0].clone()
}

/// The per-slot policy decision at fig1a scale: the historical path
/// materialized a `Vec<usize>` of age coordinates per decision
/// (`ProductSpace::encode(&ages.coords())`); the current path streams them
/// (`encode_state` → `encode_iter`). Same table lookup either way, so the
/// gap is exactly the per-slot allocation cost the refactor removed.
fn bench_decide(c: &mut Criterion) {
    let spec = fig1a_rsu_spec();
    let compiled = CompiledRsuMdp::from_spec(&spec).expect("compiles");
    let policy = mdp::solver::ValueIteration::new(0.95)
        .solve_compiled(&compiled.kernel)
        .expect("solves")
        .policy;
    let model = &compiled.model;
    let cap = spec.age_cap;
    let ages = AgeVector::from_ages(
        (0..spec.n_contents())
            .map(|h| Age::new(1 + (h as u32 * 3) % cap.get()).expect(">= 1"))
            .collect(),
        cap,
    )
    .expect("within cap");
    let legacy_space =
        ProductSpace::new(vec![cap.get() as usize; spec.n_contents()]).expect("fits");

    let mut group = c.benchmark_group("sim_step/decide");
    group.bench_function("legacy_alloc_encode", |b| {
        b.iter(|| {
            let coords = std::hint::black_box(&ages).coords();
            let state = legacy_space.encode(&coords).expect("within cap");
            policy.action(state).checked_sub(1)
        })
    });
    group.bench_function("streamed_encode", |b| {
        b.iter(|| {
            let state = model.encode_state(std::hint::black_box(&ages), 0);
            policy.action(state).checked_sub(1)
        })
    });
    group.finish();
}

/// The full fig1a step loop (4 RSUs × 5 contents × 1000 slots) under every
/// trace-retention mode; the policy is myopic so the loop body, not an MDP
/// solve, dominates. Throughput differences between the modes come from
/// trace retention alone — every statistic is identical.
fn bench_step_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step/fig1a");
    group.sample_size(10);
    let scenario = fig1a_scenario();
    group.throughput(criterion::Throughput::Elements(scenario.horizon as u64));
    let sim = CacheSimulation::new(scenario).expect("valid preset");
    for (label, mode) in [
        ("full", RecordingMode::Full),
        ("decimate10", RecordingMode::Decimate(10)),
        ("summary_only", RecordingMode::SummaryOnly),
    ] {
        let sim = sim.clone().with_recording(mode);
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(sim.run(CachePolicyKind::Myopic).expect("runs")))
        });
    }
    group.finish();
}

/// Lockstep batched replicates of the fig1a cell (`aoi_cache::run_batch`,
/// SummaryOnly): 8 seed replicates advanced serially one-by-one versus in
/// lockstep chunks of 1/2/8 through the structure-of-arrays batch kernel.
/// Throughput is per replicate-slot (8 × horizon elements), so the ratio of
/// `serial_x8` to `lockstep_b8` is the per-slot speedup of the batched step
/// path; every variant returns bit-identical reports.
fn bench_batched_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step/batched");
    group.sample_size(20);
    let scenario = fig1a_scenario();
    const REPLICATES: u64 = 8;
    group.throughput(criterion::Throughput::Elements(
        REPLICATES * scenario.horizon as u64,
    ));
    let sims: Vec<CacheSimulation> = (0..REPLICATES)
        .map(|i| {
            CacheSimulation::new(aoi_cache::CacheScenario {
                seed: scenario.seed + i,
                ..scenario
            })
            .expect("valid preset")
            .with_recording(RecordingMode::SummaryOnly)
        })
        .collect();
    group.bench_function("serial_x8", |b| {
        b.iter(|| {
            for sim in &sims {
                std::hint::black_box(sim.run(CachePolicyKind::Myopic).expect("runs"));
            }
        })
    });
    for batch in [1usize, 2, 8] {
        group.bench_function(format!("lockstep_b{batch}"), |b| {
            b.iter(|| {
                for chunk in sims.chunks(batch) {
                    let refs: Vec<&CacheSimulation> = chunk.iter().collect();
                    std::hint::black_box(
                        aoi_cache::run_batch(&refs, CachePolicyKind::Myopic).expect("runs"),
                    );
                }
            })
        });
    }
    group.finish();
}

/// The fig1b service loop (1000 slots, Lyapunov rule): already
/// allocation-free per slot; tracked here so regressions in the stage-2
/// step path show up alongside the stage-1 numbers.
fn bench_service_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step/fig1b");
    let scenario = fig1b_scenario();
    group.throughput(criterion::Throughput::Elements(scenario.horizon as u64));
    group.bench_function("lyapunov", |b| {
        b.iter(|| {
            std::hint::black_box(
                aoi_cache::run_service(&scenario, ServicePolicyKind::Lyapunov { v: 20.0 })
                    .expect("runs"),
            )
        })
    });
    group.finish();
}

/// Allocation census on the fig1a preset: allocations per run and the
/// per-slot delta (run at 1000 vs 500 slots), per recording mode, plus the
/// count the pre-refactor encode path would have added back. Every mode
/// must show a per-slot delta of exactly zero.
fn allocation_report() {
    println!("\nsim_step allocation census (fig1a preset, myopic policy):");
    let scenario = fig1a_scenario();
    let slots_per_run = scenario.n_rsus as u64 * scenario.horizon as u64;
    for (label, mode) in [
        ("full", RecordingMode::Full),
        ("decimate10", RecordingMode::Decimate(10)),
        ("summary_only", RecordingMode::SummaryOnly),
    ] {
        let long = CacheSimulation::new(scenario)
            .expect("valid preset")
            .with_recording(mode);
        let short = CacheSimulation::new(aoi_cache::CacheScenario {
            horizon: scenario.horizon / 2,
            ..scenario
        })
        .expect("valid preset")
        .with_recording(mode);
        executor::serialized(|| {
            let _ = long.run(CachePolicyKind::Myopic).expect("warm-up");
            let _ = short.run(CachePolicyKind::Myopic).expect("warm-up");
            let per_long = allocations_during(|| {
                let _ = long.run(CachePolicyKind::Myopic).expect("runs");
            });
            let per_short = allocations_during(|| {
                let _ = short.run(CachePolicyKind::Myopic).expect("runs");
            });
            println!(
                "  {label:<12} {per_long:>5} allocations/run, per-slot delta {} \
                 (1000 vs 500 slots)",
                per_long as i64 - per_short as i64
            );
        });
    }
    println!(
        "  (pre-refactor decide path: one coords Vec per RSU-slot = {slots_per_run} \
         extra allocations/run on this preset)"
    );
}

criterion_group!(
    benches,
    bench_decide,
    bench_step_loop,
    bench_batched_step,
    bench_service_loop
);

fn main() {
    let mut criterion = Criterion::configure_from_args();
    benches(&mut criterion);
    allocation_report();
    criterion.final_summary();
}
