//! Criterion benches: Lyapunov controller and queue primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lyapunov::{DecisionOption, DriftPlusPenalty, Queue, ServiceController};

fn menu(n: usize) -> Vec<DecisionOption> {
    (0..n)
        .map(|i| DecisionOption::new(i as f64 * 0.5, i as f64))
        .collect()
}

fn bench_dpp_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpp_decide");
    for n in [2usize, 8, 32] {
        let options = menu(n);
        let dpp = DriftPlusPenalty::new(20.0).expect("valid V");
        group.bench_with_input(BenchmarkId::from_parameter(n), &options, |b, options| {
            let mut q = 0.0;
            b.iter(|| {
                q = (q + 1.7) % 100.0;
                std::hint::black_box(dpp.decide(q, options).expect("non-empty"))
            })
        });
    }
    group.finish();
}

fn bench_controller_step(c: &mut Criterion) {
    let options = menu(4);
    c.bench_function("service_controller_step", |b| {
        let mut ctl = ServiceController::new(20.0).expect("valid V");
        b.iter(|| std::hint::black_box(ctl.step(0.9, &options).expect("steps")))
    });
}

fn bench_queue_step(c: &mut Criterion) {
    c.bench_function("queue_step", |b| {
        let mut q = Queue::new();
        b.iter(|| std::hint::black_box(q.step(1.3, 1.1)))
    });
}

/// A whole stage-2 ensemble grid through the experiment engine (the Fig. 1b
/// policy menu over replicate arrival traces): controller decisions, queue
/// dynamics and the engine's cell fan-out, end to end.
fn bench_service_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_grid");
    group.sample_size(10);
    let plan = aoi_cache::presets::fig1b_ensemble(3);
    group.bench_function("fig1b_3traces", |b| b.iter(|| plan.run().expect("runs")));
    group.finish();
}

criterion_group!(
    benches,
    bench_dpp_decide,
    bench_controller_step,
    bench_queue_step,
    bench_service_grid
);
criterion_main!(benches);
