//! Shared helpers for the experiment binaries.

#![forbid(unsafe_code)]

/// Extracts every `--workers N` flag from `args` (removing flag and value
/// in place, last occurrence winning) and validates `N >= 1`; the
/// remaining entries are the binary's positional arguments.
///
/// `N == 1` means fully serial execution; larger values pin the executor
/// fan-out. `0` is rejected — it would match neither documented mode.
///
/// # Errors
///
/// Returns a message when the flag's value is missing, not an integer, or
/// zero.
pub fn take_workers_flag(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    let mut workers = None;
    while let Some(pos) = args.iter().position(|a| a == "--workers") {
        args.remove(pos);
        let value = (pos < args.len()).then(|| args.remove(pos));
        let n: usize = value
            .as_deref()
            .and_then(|v| v.parse().ok())
            .filter(|n| *n >= 1)
            .ok_or_else(|| "--workers needs a positive integer".to_string())?;
        workers = Some(n);
    }
    Ok(workers)
}

/// [`take_workers_flag`] for binaries that take no positional arguments:
/// parses the whole command line, erroring on anything but `--workers N`.
///
/// # Errors
///
/// Returns a message for an invalid `--workers` value or any leftover
/// argument.
pub fn workers_flag_only() -> Result<Option<usize>, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let workers = take_workers_flag(&mut args)?;
    if let Some(arg) = args.first() {
        return Err(format!("unrecognized argument: {arg}"));
    }
    Ok(workers)
}

/// Extracts every `--out DIR` flag from `args` (removing flag and value in
/// place, last occurrence winning) and creates the directory. Binaries
/// with the flag **persist their run artifacts** into `DIR` as
/// `simkit::persist` JSONL files — traces spill to disk as they are
/// produced, so even a `Full`-recording grid retains no trace in memory.
///
/// # Errors
///
/// Returns a message when the flag's value is missing or the directory
/// cannot be created.
pub fn take_out_flag(args: &mut Vec<String>) -> Result<Option<std::path::PathBuf>, String> {
    let mut out = None;
    while let Some(pos) = args.iter().position(|a| a == "--out") {
        args.remove(pos);
        let value = (pos < args.len()).then(|| args.remove(pos));
        let dir = value.ok_or_else(|| "--out needs a directory path".to_string())?;
        out = Some(std::path::PathBuf::from(dir));
    }
    if let Some(dir) = &out {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create --out directory {}: {e}", dir.display()))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn absent_flag_leaves_args_untouched() {
        let mut a = args(&["3"]);
        assert_eq!(take_workers_flag(&mut a), Ok(None));
        assert_eq!(a, args(&["3"]));
    }

    #[test]
    fn flag_is_extracted_anywhere() {
        let mut a = args(&["--workers", "4", "3"]);
        assert_eq!(take_workers_flag(&mut a), Ok(Some(4)));
        assert_eq!(a, args(&["3"]));
        let mut a = args(&["3", "--workers", "1"]);
        assert_eq!(take_workers_flag(&mut a), Ok(Some(1)));
        assert_eq!(a, args(&["3"]));
    }

    #[test]
    fn rejects_zero_missing_and_garbage_values() {
        assert!(take_workers_flag(&mut args(&["--workers", "0"])).is_err());
        assert!(take_workers_flag(&mut args(&["--workers"])).is_err());
        assert!(take_workers_flag(&mut args(&["--workers", "many"])).is_err());
    }

    #[test]
    fn last_occurrence_wins() {
        let mut a = args(&["--workers", "2", "--workers", "5"]);
        assert_eq!(take_workers_flag(&mut a), Ok(Some(5)));
        assert!(a.is_empty());
    }

    #[test]
    fn out_flag_is_extracted_and_creates_the_directory() {
        let mut a = args(&["3"]);
        assert_eq!(take_out_flag(&mut a), Ok(None));
        let dir = std::env::temp_dir().join(format!("aoi-bench-out-{}", std::process::id()));
        let dir_str = dir.display().to_string();
        let mut a = args(&["--out", &dir_str, "3"]);
        assert_eq!(take_out_flag(&mut a), Ok(Some(dir.clone())));
        assert_eq!(a, args(&["3"]));
        assert!(dir.is_dir());
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(take_out_flag(&mut args(&["--out"])).is_err());
    }
}
