//! Shared helpers for the experiment binaries: one command-line parser
//! for the flags every bin repeats, plus the series-shaping helpers the
//! figure renderers share.
//!
//! Each binary declares a [`CliSpec`] — which of the common flags it
//! accepts (`--workers`, `--out`, `--compress`, `--resume`, `--horizon`)
//! and at most one positional argument — and calls
//! [`CliSpec::parse`]. The spec renders one consistent `--help` text per
//! bin and produces one consistent error-message style, instead of the
//! hand-rolled per-bin loops the flags used to be parsed with.

#![forbid(unsafe_code)]

use aoi_cache::persist::Compression;
use simkit::TimeSeries;
use std::path::PathBuf;

/// Returns `series` re-labeled `name` (a [`TimeSeries`] name is fixed at
/// construction; the figure bins re-label downsampled or windowed series
/// for plot legends).
pub fn rename(series: TimeSeries, name: impl Into<String>) -> TimeSeries {
    let mut out = TimeSeries::with_capacity(name, series.len());
    for p in series.iter() {
        out.push(p.slot, p.value);
    }
    out
}

/// Extracts `len` consecutive full-resolution points starting at `start`,
/// labeled `name` (stride-downsampling would alias the periodic AoI
/// sawtooths the figures plot into flat lines).
pub fn window_of(
    series: &TimeSeries,
    start: usize,
    len: usize,
    name: impl Into<String>,
) -> TimeSeries {
    let mut out = TimeSeries::with_capacity(name, len);
    for p in series.iter().skip(start).take(len) {
        out.push(p.slot, p.value);
    }
    out
}

/// The Fig. 1a-style rendering window at a given horizon: `(warmup,
/// window)` — nominally slots 100..220, clamped so a shrunk `--horizon`
/// still leaves a non-empty window. Shared by the live `fig1a` bin and
/// the offline `aoi-artifacts render` so the two figures cannot diverge.
pub fn figure_window(horizon: usize) -> (usize, usize) {
    let warmup = 100usize.min(horizon / 2);
    (warmup, 120usize.min(horizon - warmup))
}

/// One optional positional argument of a binary.
#[derive(Debug, Clone, Copy)]
pub struct Positional {
    /// Display name in the usage line (e.g. `"n_seeds"`).
    pub name: &'static str,
    /// One-line description for `--help`.
    pub help: &'static str,
}

/// One bin-specific flag beyond the shared set — parsed, validated and
/// listed in `--help` with the same style as the shared flags.
#[derive(Debug, Clone, Copy)]
pub struct ExtraFlag {
    /// The flag itself, with leading dashes (e.g. `"--rate"`).
    pub name: &'static str,
    /// Display name of the flag's value (e.g. `"R"`); `None` for a
    /// boolean flag.
    pub value: Option<&'static str>,
    /// One-line description for `--help`.
    pub help: &'static str,
}

/// Which of the shared command-line flags a binary accepts.
///
/// ```no_run
/// let args = aoi_bench::CliSpec {
///     bin: "ensemble",
///     about: "ensemble figures",
///     workers: true,
///     out: true,
///     resume: true,
///     claim: true,
///     horizon: true,
///     batch: true,
///     positional: Some(aoi_bench::Positional {
///         name: "n_seeds",
///         help: "seed replicates per policy (default 5)",
///     }),
///     extras: &[],
/// }
/// .parse()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CliSpec {
    /// Binary name shown in usage/error text.
    pub bin: &'static str,
    /// One-line description shown by `--help`.
    pub about: &'static str,
    /// Accept `--workers N` (executor fan-out override; `1` = serial).
    pub workers: bool,
    /// Accept `--out DIR` (persist run artifacts into `DIR`) and, with
    /// it, `--compress` (write the artifacts through the
    /// `simkit::persist::compress` codec, `.z` files).
    pub out: bool,
    /// Accept `--resume` (skip cells whose `--out` artifact verifies).
    pub resume: bool,
    /// Accept `--claim` (run as one worker of a multi-process campaign:
    /// claim cells via lease files beside the `--out` artifacts) and, with
    /// it, `--worker-id ID`, `--lease-ttl-ms N` and `--max-attempts N`
    /// (retry budget before a failing cell is quarantined).
    pub claim: bool,
    /// Accept `--horizon N` (override every scenario's horizon).
    pub horizon: bool,
    /// Accept `--batch N` (lockstep batch width for cache-grid cells; see
    /// [`aoi_cache::ExperimentPlan::batch`] — results are bit-identical
    /// for every width).
    pub batch: bool,
    /// At most one positional argument.
    pub positional: Option<Positional>,
    /// Bin-specific flags beyond the shared set (read back with
    /// [`CliArgs::extra`] / [`CliArgs::extra_flag`]).
    pub extras: &'static [ExtraFlag],
}

impl CliSpec {
    /// A spec accepting no flag at all (every bin still gets `--help`).
    pub const fn bare(bin: &'static str, about: &'static str) -> Self {
        CliSpec {
            bin,
            about,
            workers: false,
            out: false,
            resume: false,
            claim: false,
            horizon: false,
            batch: false,
            positional: None,
            extras: &[],
        }
    }

    /// Parses the process arguments against this spec. `--help`/`-h`
    /// prints the usage text and exits. The `--out` directory is created.
    ///
    /// # Errors
    ///
    /// Returns one-line messages (shared style across every bin) for
    /// unknown flags, missing or invalid values, flag combinations
    /// (`--compress`/`--resume` without `--out`), or a surplus positional.
    pub fn parse(&self) -> Result<CliArgs, String> {
        match self.parse_from(std::env::args().skip(1).collect()) {
            // `--help` surfaces from parse_from as the usage text.
            Err(text) if text == self.usage() => {
                println!("{text}");
                std::process::exit(0);
            }
            other => other,
        }
    }

    /// [`parse`](CliSpec::parse) over an explicit argument vector
    /// (testable; no `--help` side effect — the caller sees it as an
    /// error listing the usage).
    pub fn parse_from(&self, args: Vec<String>) -> Result<CliArgs, String> {
        let mut parsed = CliArgs {
            workers: None,
            out: None,
            compression: Compression::None,
            resume: false,
            claim: false,
            worker_id: None,
            lease_ttl_ms: None,
            max_attempts: None,
            horizon: None,
            batch: None,
            positional: None,
            extras: Vec::new(),
        };
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(self.usage()),
                "--workers" if self.workers => {
                    let n: usize = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| self.error("--workers needs a positive integer"))?;
                    parsed.workers = Some(n);
                }
                "--out" if self.out => {
                    let dir = iter
                        .next()
                        .filter(|v| !v.starts_with("--"))
                        .ok_or_else(|| self.error("--out needs a directory path"))?;
                    parsed.out = Some(PathBuf::from(dir));
                }
                "--compress" if self.out => parsed.compression = Compression::Deflate,
                "--resume" if self.resume => parsed.resume = true,
                "--claim" if self.claim => parsed.claim = true,
                "--worker-id" if self.claim => {
                    let id = iter
                        .next()
                        .filter(|v| !v.is_empty() && !v.starts_with("--"))
                        .ok_or_else(|| self.error("--worker-id needs a non-empty id"))?;
                    parsed.worker_id = Some(id);
                }
                "--lease-ttl-ms" if self.claim => {
                    let n: u64 = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| self.error("--lease-ttl-ms needs a positive integer"))?;
                    parsed.lease_ttl_ms = Some(n);
                }
                "--max-attempts" if self.claim => {
                    let n: u32 = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| self.error("--max-attempts needs a positive integer"))?;
                    parsed.max_attempts = Some(n);
                }
                "--batch" if self.batch => {
                    let n: usize = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| self.error("--batch needs a positive integer"))?;
                    parsed.batch = Some(n);
                }
                "--horizon" if self.horizon => {
                    let n: usize = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| self.error("--horizon needs a positive integer"))?;
                    parsed.horizon = Some(n);
                }
                other => {
                    if let Some(flag) = self.extras.iter().find(|f| f.name == other) {
                        let value =
                            match flag.value {
                                Some(what) => {
                                    iter.next().filter(|v| !v.starts_with("--")).ok_or_else(
                                        || self.error(&format!("{} needs a {what}", flag.name)),
                                    )?
                                }
                                None => String::new(),
                            };
                        parsed.extras.push((flag.name, value));
                    } else if other.starts_with('-') {
                        return Err(self.error(&format!("unrecognized flag '{arg}'")));
                    } else {
                        match (self.positional, &parsed.positional) {
                            (Some(_), None) => parsed.positional = Some(arg),
                            _ => return Err(self.error(&format!("unrecognized argument '{arg}'"))),
                        }
                    }
                }
            }
        }
        if parsed.compression == Compression::Deflate && parsed.out.is_none() {
            return Err(self.error("--compress needs --out DIR"));
        }
        if parsed.resume && parsed.out.is_none() {
            return Err(self.error("--resume needs --out DIR"));
        }
        if parsed.claim && !(parsed.resume && parsed.out.is_some()) {
            return Err(self.error("--claim needs --resume and --out DIR"));
        }
        if !parsed.claim
            && (parsed.worker_id.is_some()
                || parsed.lease_ttl_ms.is_some()
                || parsed.max_attempts.is_some())
        {
            return Err(self.error("--worker-id/--lease-ttl-ms/--max-attempts need --claim"));
        }
        if let Some(dir) = &parsed.out {
            std::fs::create_dir_all(dir).map_err(|e| {
                self.error(&format!(
                    "cannot create --out directory {}: {e}",
                    dir.display()
                ))
            })?;
        }
        Ok(parsed)
    }

    fn error(&self, why: &str) -> String {
        format!("{}: {why} (try --help)", self.bin)
    }

    /// The `--help` text: usage line plus one row per accepted flag.
    pub fn usage(&self) -> String {
        let mut text = format!("{} — {}\n\nUsage: {}", self.bin, self.about, self.bin);
        if let Some(p) = self.positional {
            text.push_str(&format!(" [{}]", p.name));
        }
        text.push_str(" [FLAGS]\n\nFlags:\n");
        if let Some(p) = self.positional {
            text.push_str(&format!("  {:<14} {}\n", p.name, p.help));
        }
        for flag in self.extras {
            let head = match flag.value {
                Some(what) => format!("{} {what}", flag.name),
                None => flag.name.to_string(),
            };
            text.push_str(&format!("  {head:<14} {}\n", flag.help));
        }
        if self.workers {
            text.push_str("  --workers N    pin the executor fan-out to N workers (1 = serial)\n");
        }
        if self.out {
            text.push_str(
                "  --out DIR      persist run artifacts (simkit::persist JSONL) into DIR\n",
            );
            text.push_str("  --compress     write --out artifacts compressed (.z files)\n");
        }
        if self.resume {
            text.push_str("  --resume       skip cells whose --out artifact already verifies\n");
        }
        if self.claim {
            text.push_str(
                "  --claim        run as one worker of a multi-process campaign: claim cells\n                 via lease files beside the --out artifacts (needs --resume)\n",
            );
            text.push_str("  --worker-id ID    lease owner id (default: derived from the pid)\n");
            text.push_str(
                "  --lease-ttl-ms N  lease time-to-live before a dead worker's cells are\n                    taken over (default 30000)\n",
            );
            text.push_str(
                "  --max-attempts N  attempts before a failing cell is quarantined and the\n                    campaign continues without it (default 3)\n",
            );
        }
        if self.horizon {
            text.push_str("  --horizon N    override every scenario's horizon (quick runs/CI)\n");
        }
        if self.batch {
            text.push_str(
                "  --batch N      advance N seed replicates of each cell in lockstep\n                 (bit-identical results for every N; default 1)\n",
            );
        }
        text.push_str("  --help         show this text\n");
        text
    }
}

/// The parsed shared flags of a binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// `--workers N`, when accepted and given.
    pub workers: Option<usize>,
    /// `--out DIR`, when accepted and given (the directory exists).
    pub out: Option<PathBuf>,
    /// [`Compression::Deflate`] when `--compress` was given.
    pub compression: Compression,
    /// Whether `--resume` was given.
    pub resume: bool,
    /// Whether `--claim` was given (implies `--resume` and `--out`).
    pub claim: bool,
    /// `--worker-id ID`, when accepted and given.
    pub worker_id: Option<String>,
    /// `--lease-ttl-ms N`, when accepted and given.
    pub lease_ttl_ms: Option<u64>,
    /// `--max-attempts N`, when accepted and given.
    pub max_attempts: Option<u32>,
    /// `--horizon N`, when accepted and given.
    pub horizon: Option<usize>,
    /// `--batch N`, when accepted and given.
    pub batch: Option<usize>,
    /// The positional argument, when accepted and given.
    pub positional: Option<String>,
    /// Values of the spec's bin-specific [`ExtraFlag`]s, in occurrence
    /// order (boolean flags record an empty value).
    pub extras: Vec<(&'static str, String)>,
}

impl CliArgs {
    /// The value of a value-taking [`ExtraFlag`] (last occurrence wins),
    /// if given.
    pub fn extra(&self, name: &str) -> Option<&str> {
        self.extras
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether a boolean [`ExtraFlag`] was given.
    pub fn extra_flag(&self, name: &str) -> bool {
        self.extras.iter().any(|(n, _)| *n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CliSpec {
        CliSpec {
            bin: "demo",
            about: "test spec",
            workers: true,
            out: true,
            resume: true,
            claim: true,
            horizon: true,
            batch: true,
            positional: Some(Positional {
                name: "n",
                help: "a number",
            }),
            extras: &[
                ExtraFlag {
                    name: "--rate",
                    value: Some("R"),
                    help: "a number flag",
                },
                ExtraFlag {
                    name: "--fast",
                    value: None,
                    help: "a boolean flag",
                },
            ],
        }
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_args_parse_to_defaults() {
        let parsed = spec().parse_from(Vec::new()).unwrap();
        assert_eq!(parsed.workers, None);
        assert_eq!(parsed.out, None);
        assert_eq!(parsed.compression, Compression::None);
        assert!(!parsed.resume);
        assert_eq!(parsed.horizon, None);
        assert_eq!(parsed.batch, None);
        assert_eq!(parsed.positional, None);
    }

    #[test]
    fn flags_parse_in_any_order() {
        let dir = std::env::temp_dir().join(format!("aoi-bench-cli-{}", std::process::id()));
        let dir_str = dir.display().to_string();
        let parsed = spec()
            .parse_from(args(&[
                "7",
                "--workers",
                "4",
                "--out",
                &dir_str,
                "--compress",
                "--resume",
                "--horizon",
                "200",
                "--batch",
                "8",
            ]))
            .unwrap();
        assert_eq!(parsed.workers, Some(4));
        assert_eq!(parsed.out.as_deref(), Some(dir.as_path()));
        assert!(dir.is_dir(), "--out must create the directory");
        assert_eq!(parsed.compression, Compression::Deflate);
        assert!(parsed.resume);
        assert_eq!(parsed.horizon, Some(200));
        assert_eq!(parsed.batch, Some(8));
        assert_eq!(parsed.positional.as_deref(), Some("7"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_share_one_style() {
        for bad in [
            args(&["--workers"]),
            args(&["--workers", "0"]),
            args(&["--workers", "many"]),
            args(&["--horizon", "0"]),
            args(&["--batch", "0"]),
            args(&["--batch"]),
            args(&["--out"]),
            args(&["--nope"]),
            args(&["1", "2"]),
            args(&["--compress"]),
            args(&["--resume"]),
            args(&["--claim"]),
            args(&["--worker-id", "w1"]),
            args(&["--lease-ttl-ms", "0"]),
            args(&["--max-attempts", "3"]),
            args(&["--max-attempts", "0"]),
        ] {
            let err = spec().parse_from(bad.clone()).unwrap_err();
            assert!(
                err.starts_with("demo: ") && err.contains("(try --help)"),
                "style of {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn claim_flags_parse_and_validate() {
        let dir = std::env::temp_dir().join(format!("aoi-bench-claim-{}", std::process::id()));
        let dir_str = dir.display().to_string();
        let parsed = spec()
            .parse_from(args(&[
                "--out",
                &dir_str,
                "--resume",
                "--claim",
                "--worker-id",
                "w-test",
                "--lease-ttl-ms",
                "2500",
                "--max-attempts",
                "2",
            ]))
            .unwrap();
        assert!(parsed.claim);
        assert_eq!(parsed.worker_id.as_deref(), Some("w-test"));
        assert_eq!(parsed.lease_ttl_ms, Some(2500));
        assert_eq!(parsed.max_attempts, Some(2));
        // --claim without --resume is rejected.
        assert!(spec()
            .parse_from(args(&["--out", &dir_str, "--claim"]))
            .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unaccepted_flags_are_rejected() {
        let bare = CliSpec::bare("bare", "no flags");
        for flag in [
            "--workers",
            "--out",
            "--compress",
            "--resume",
            "--claim",
            "--horizon",
            "--batch",
        ] {
            assert!(
                bare.parse_from(args(&[flag, "1"])).is_err(),
                "{flag} must be rejected by a bare spec"
            );
        }
        assert!(bare.parse_from(args(&["extra"])).is_err());
        assert!(bare.parse_from(Vec::new()).is_ok());
    }

    #[test]
    fn extras_parse_and_render() {
        let parsed = spec()
            .parse_from(args(&["--rate", "3.5", "--fast"]))
            .unwrap();
        assert_eq!(parsed.extra("--rate"), Some("3.5"));
        assert!(parsed.extra_flag("--fast"));
        assert_eq!(parsed.extra("--missing"), None);
        // The last occurrence of a value flag wins.
        let parsed = spec()
            .parse_from(args(&["--rate", "1", "--rate", "2"]))
            .unwrap();
        assert_eq!(parsed.extra("--rate"), Some("2"));
        // A value flag without its value fails in the shared style.
        let err = spec().parse_from(args(&["--rate"])).unwrap_err();
        assert!(err.starts_with("demo: ") && err.contains("--rate"));
        // Help lists extras; specs without them reject them.
        let usage = spec().usage();
        assert!(usage.contains("--rate R") && usage.contains("--fast"));
        assert!(CliSpec::bare("bare", "x")
            .parse_from(args(&["--rate", "1"]))
            .is_err());
    }

    #[test]
    fn help_lists_exactly_the_accepted_flags() {
        let full = spec().usage();
        for needle in [
            "--workers",
            "--out",
            "--compress",
            "--resume",
            "--claim",
            "--worker-id",
            "--lease-ttl-ms",
            "--max-attempts",
            "--horizon",
            "--batch",
        ] {
            assert!(full.contains(needle), "{needle} missing from {full}");
        }
        let bare = CliSpec::bare("bare", "no flags").usage();
        for needle in [
            "--workers",
            "--out",
            "--compress",
            "--resume",
            "--claim",
            "--horizon",
            "--batch",
        ] {
            assert!(!bare.contains(needle), "{needle} leaked into {bare}");
        }
        assert!(bare.contains("--help"));
        // --help surfaces as an Err carrying the usage text.
        assert_eq!(spec().parse_from(args(&["--help"])).unwrap_err(), full);
    }
}
