//! Extension figure — the Lyapunov `V` tradeoff curve.
//!
//! Sweeps the tradeoff coefficient of the paper's Eq. 5 and reports the
//! time-average cost and backlog at each point: the canonical `O(1/V)`
//! cost gap versus `O(V)` queue growth of Lyapunov optimization. Points
//! are independent, so the sweep fans out on the shared executor (which
//! also returns them in input order — no collect-and-sort needed);
//! `--workers N` pins the fan-out, defaulting to available parallelism.

use aoi_cache::presets::fig1b_scenario;
use aoi_cache::{run_service, ServicePolicyKind, ServiceScenario};
use lyapunov::analysis::{has_v_tradeoff_signature, TradeoffPoint};
use simkit::executor;
use simkit::table::{fmt_f64, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = ServiceScenario {
        horizon: 20_000,
        ..fig1b_scenario()
    };
    let vs: Vec<f64> = (0..9).map(|i| 2f64.powi(i)).collect();

    let args = aoi_bench::CliSpec {
        workers: true,
        ..aoi_bench::CliSpec::bare("ext_v_sweep", "Lyapunov V tradeoff curve (Eq. 5)")
    }
    .parse()?;
    let workers = args
        .workers
        .unwrap_or_else(|| executor::worker_count(vs.len(), true, 1));
    let points: Vec<TradeoffPoint> = executor::parallel_map(workers, &vs, |_, &v| {
        let report =
            run_service(&scenario, ServicePolicyKind::Lyapunov { v }).expect("scenario is valid");
        TradeoffPoint {
            v,
            mean_cost: report.mean_cost,
            mean_backlog: report.mean_queue,
        }
    });

    let mut table = Table::new(["V", "mean cost", "mean queue"]);
    for p in &points {
        table.row([fmt_f64(p.v), fmt_f64(p.mean_cost), fmt_f64(p.mean_backlog)]);
    }
    println!("{}", table.render());
    println!(
        "O(1/V) cost / O(V) queue signature holds: {}",
        has_v_tradeoff_signature(&points, 0.02)
    );
    println!("csv:\n{}", table.to_csv());
    Ok(())
}
