//! Extension figure — the Lyapunov `V` tradeoff curve.
//!
//! Sweeps the tradeoff coefficient of the paper's Eq. 5 and reports the
//! time-average cost and backlog at each point: the canonical `O(1/V)`
//! cost gap versus `O(V)` queue growth of Lyapunov optimization. Points
//! are independent, so the sweep fans out across threads.

use aoi_cache::presets::fig1b_scenario;
use aoi_cache::{run_service, ServicePolicyKind, ServiceScenario};
use lyapunov::analysis::{has_v_tradeoff_signature, TradeoffPoint};
use parking_lot::Mutex;
use simkit::table::{fmt_f64, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = ServiceScenario {
        horizon: 20_000,
        ..fig1b_scenario()
    };
    let vs: Vec<f64> = (0..9).map(|i| 2f64.powi(i)).collect();

    let points = Mutex::new(Vec::<TradeoffPoint>::new());
    crossbeam::thread::scope(|scope| {
        for &v in &vs {
            let scenario = &scenario;
            let points = &points;
            scope.spawn(move |_| {
                let report = run_service(scenario, ServicePolicyKind::Lyapunov { v })
                    .expect("scenario is valid");
                points.lock().push(TradeoffPoint {
                    v,
                    mean_cost: report.mean_cost,
                    mean_backlog: report.mean_queue,
                });
            });
        }
    })
    .expect("worker threads do not panic");

    let mut points = points.into_inner();
    points.sort_by(|a, b| a.v.partial_cmp(&b.v).expect("finite V"));

    let mut table = Table::new(["V", "mean cost", "mean queue"]);
    for p in &points {
        table.row([fmt_f64(p.v), fmt_f64(p.mean_cost), fmt_f64(p.mean_backlog)]);
    }
    println!("{}", table.render());
    println!(
        "O(1/V) cost / O(V) queue signature holds: {}",
        has_v_tradeoff_signature(&points, 0.02)
    );
    println!("csv:\n{}", table.to_csv());
    Ok(())
}
