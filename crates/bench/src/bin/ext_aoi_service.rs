//! Extension — the paper's Eq. 4 AoI requirement, enforced.
//!
//! Fig. 1b only exercises queue stability; Eq. 4 additionally demands
//! `Σ A(α[t]) ≤ A^max` on served content. This experiment runs the
//! virtual-queue controller that enforces the requirement (choosing per
//! slot between the aging cached copy and a surcharged always-fresh MBS
//! fetch) against freshness-oblivious cache-only and MBS-only baselines,
//! and sweeps the age target.

use aoi_cache::{run_freshness_service, FreshnessScenario, SourcingMode};
use simkit::table::{fmt_f64, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    aoi_bench::CliSpec::bare(
        "ext_aoi_service",
        "Eq. 4 AoI requirement enforced via virtual queues",
    )
    .parse()?;
    let scenario = FreshnessScenario::default();
    println!(
        "cache refresh period {} (mean cache age {:.1}), age target {}, V = {}\n",
        scenario.cache_refresh_period,
        scenario.mean_cache_age(),
        scenario.age_target,
        scenario.v
    );

    let mut table = Table::new([
        "mode",
        "mean served age",
        "target met",
        "mbs fraction",
        "mean cost",
        "mean queue",
        "stability",
    ]);
    for mode in [
        SourcingMode::Adaptive,
        SourcingMode::CacheOnly,
        SourcingMode::MbsOnly,
    ] {
        let r = run_freshness_service(&scenario, mode)?;
        table.row([
            mode.label().to_string(),
            fmt_f64(r.mean_served_age),
            format!("{}", r.constraint_met),
            fmt_f64(r.mbs_fraction()),
            fmt_f64(r.mean_cost),
            fmt_f64(r.mean_queue),
            format!("{:?}", r.stability),
        ]);
    }
    println!("{}", table.render());

    // Sweep the age target: tighter targets buy freshness with MBS money.
    let mut sweep = Table::new(["age target", "mean served age", "mbs fraction", "mean cost"]);
    for target in [1.5, 2.0, 3.0, 4.0, 6.0, 9.0] {
        let s = FreshnessScenario {
            age_target: target,
            ..scenario.clone()
        };
        let r = run_freshness_service(&s, SourcingMode::Adaptive)?;
        sweep.row([
            fmt_f64(target),
            fmt_f64(r.mean_served_age),
            fmt_f64(r.mbs_fraction()),
            fmt_f64(r.mean_cost),
        ]);
    }
    println!("{}", sweep.render());
    println!("csv:\n{}", sweep.to_csv());
    Ok(())
}
