//! Fig. 1b — "delay-aware content service".
//!
//! Reproduces the paper's second evaluation artifact: the UV latency
//! (request backlog `Q[t]`) of one RSU over 1000 slots under the proposed
//! Lyapunov drift-plus-penalty rule, compared against the two baseline
//! extremes the paper's own Eq. 5 sanity analysis describes: always-serve
//! (latency-greedy) and cost-greedy (never serve while idling is free).
//!
//! All three policies face the identical Poisson arrival trace.
//!
//! ```sh
//! cargo run --release -p aoi-bench --bin fig1b [--out DIR] [--compress] [--horizon N]
//! ```
//!
//! With `--out DIR` each policy's queue/cost series is persisted as a
//! `simkit::persist` artifact (`DIR/fig1b-<policy>.trace.jsonl`;
//! `--compress` writes `.z` files through the streaming codec).

use aoi_cache::presets::{fig1b_policies, fig1b_scenario};
use aoi_cache::{compare_service, write_service_artifact_with, ServiceScenario};
use simkit::plot::AsciiPlot;
use simkit::table::{fmt_f64, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = aoi_bench::CliSpec {
        bin: "fig1b",
        about: "Fig. 1b — UV latency under the proposed service rule and two baselines",
        workers: false,
        out: true,
        resume: false,
        claim: false,
        horizon: true,
        batch: false,
        positional: None,
        extras: &[],
    }
    .parse()?;
    let scenario = ServiceScenario {
        horizon: args.horizon.unwrap_or(fig1b_scenario().horizon),
        ..fig1b_scenario()
    };
    println!(
        "Fig. 1b scenario: Poisson({}) arrivals, {} service levels, V = {}, horizon {}\n",
        scenario.arrival_rate,
        scenario.levels.len(),
        scenario.v,
        scenario.horizon
    );
    let reports = compare_service(&scenario, &fig1b_policies())?;
    if let Some(dir) = &args.out {
        for report in &reports {
            let path = args
                .compression
                .apply_to(&dir.join(format!("fig1b-{}.trace.jsonl", report.policy)));
            write_service_artifact_with(&scenario, report, &path, args.compression)?;
            println!("artifacts: wrote {}", path.display());
        }
        println!();
    }

    let mut plot = AsciiPlot::new("Fig. 1b: UV latency Q[t]", 72, 14).y_label("queue length");
    for r in &reports {
        let named = aoi_bench::rename(r.queue.downsample(72), r.policy.clone());
        plot = plot.series(&named);
    }
    println!("{}", plot.render());

    let mut table = Table::new([
        "policy",
        "mean queue",
        "final queue",
        "mean cost",
        "served",
        "stability",
    ]);
    for r in &reports {
        table.row([
            r.policy.clone(),
            fmt_f64(r.mean_queue),
            fmt_f64(r.queue.last().map_or(0.0, |p| p.value)),
            fmt_f64(r.mean_cost),
            fmt_f64(r.total_served),
            format!("{:?}", r.stability),
        ]);
    }
    println!("{}", table.render());

    println!(
        "csv: slot,{}",
        reports
            .iter()
            .map(|r| r.policy.clone())
            .collect::<Vec<_>>()
            .join(",")
    );
    for i in (0..scenario.horizon).step_by(25) {
        let row: Vec<String> = reports
            .iter()
            .map(|r| format!("{}", r.queue.iter().nth(i).map_or(0.0, |p| p.value)))
            .collect();
        println!("csv: {},{}", i, row.join(","));
    }
    Ok(())
}
