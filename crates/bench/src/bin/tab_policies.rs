//! Extension table — cache-policy comparison at the paper's Fig. 1a scale.
//!
//! Runs every stage-1 policy on the identical 4×5 scenario (same catalog,
//! initial ages and popularity) and reports the reward / staleness / cost
//! profile of each. Not a paper artifact (the paper reports no tables);
//! this is the standard ablation for the design choices in DESIGN.md.
//!
//! ```sh
//! cargo run --release -p aoi-bench --bin tab_policies [--out DIR] [--compress]
//! ```
//!
//! With `--out DIR` each policy's run spills its AoI traces to
//! `DIR/tab-<i>-<policy>.trace.jsonl` as it executes — the table is then
//! produced without ever holding a full trace in memory (`--compress`
//! writes `.z` files through the streaming codec).

use aoi_cache::presets::fig1a_scenario;
use aoi_cache::{CachePolicyKind, CacheSimulation};
use simkit::table::{fmt_f64, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = aoi_bench::CliSpec {
        bin: "tab_policies",
        about: "cache-policy comparison table at the paper's Fig. 1a scale",
        workers: false,
        out: true,
        resume: false,
        claim: false,
        horizon: false,
        batch: false,
        positional: None,
        extras: &[],
    }
    .parse()?;
    let scenario = fig1a_scenario();
    let sim = CacheSimulation::new(scenario)?;

    let kinds = [
        CachePolicyKind::ValueIteration { gamma: 0.95 },
        CachePolicyKind::AverageReward,
        CachePolicyKind::QLearning {
            gamma: 0.95,
            steps: 400_000,
        },
        CachePolicyKind::Myopic,
        CachePolicyKind::Index { threshold: 0.05 },
        CachePolicyKind::AgeThreshold { margin: 1 },
        CachePolicyKind::Periodic { period: 1 },
        CachePolicyKind::Random { probability: 0.5 },
        CachePolicyKind::Never,
    ];

    let mut table = Table::new([
        "policy",
        "cum. reward",
        "mean aoi/max",
        "violation rate",
        "updates/slot",
        "cost/slot",
    ]);
    for (i, kind) in kinds.into_iter().enumerate() {
        let r = match &args.out {
            Some(dir) => {
                let path = args
                    .compression
                    .apply_to(&dir.join(format!("tab-{i}-{}.trace.jsonl", kind.label())));
                sim.run_artifact_with(kind, &path, args.compression)?
            }
            None => sim.run(kind)?,
        };
        eprintln!("ran {}", r.policy);
        table.row([
            r.policy.clone(),
            fmt_f64(r.final_cumulative_reward()),
            fmt_f64(r.mean_aoi_ratio),
            fmt_f64(r.violation_rate()),
            fmt_f64(r.updates_per_slot()),
            fmt_f64(r.mean_cost),
        ]);
    }
    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());
    Ok(())
}
