//! Extension table — cache-policy comparison at the paper's Fig. 1a scale.
//!
//! Runs every stage-1 policy on the identical 4×5 scenario (same catalog,
//! initial ages and popularity) and reports the reward / staleness / cost
//! profile of each. Not a paper artifact (the paper reports no tables);
//! this is the standard ablation for the design choices in DESIGN.md.
//!
//! ```sh
//! cargo run --release -p aoi-bench --bin tab_policies [--out DIR]
//! ```
//!
//! With `--out DIR` each policy's run spills its AoI traces to
//! `DIR/tab-<i>-<policy>.trace.jsonl` as it executes — the table is then
//! produced without ever holding a full trace in memory.

use aoi_cache::presets::fig1a_scenario;
use aoi_cache::{CachePolicyKind, CacheSimulation};
use simkit::table::{fmt_f64, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let out = aoi_bench::take_out_flag(&mut args)?;
    if let Some(arg) = args.first() {
        return Err(format!("unrecognized argument: {arg}").into());
    }
    let scenario = fig1a_scenario();
    let sim = CacheSimulation::new(scenario)?;

    let kinds = [
        CachePolicyKind::ValueIteration { gamma: 0.95 },
        CachePolicyKind::AverageReward,
        CachePolicyKind::QLearning {
            gamma: 0.95,
            steps: 400_000,
        },
        CachePolicyKind::Myopic,
        CachePolicyKind::Index { threshold: 0.05 },
        CachePolicyKind::AgeThreshold { margin: 1 },
        CachePolicyKind::Periodic { period: 1 },
        CachePolicyKind::Random { probability: 0.5 },
        CachePolicyKind::Never,
    ];

    let mut table = Table::new([
        "policy",
        "cum. reward",
        "mean aoi/max",
        "violation rate",
        "updates/slot",
        "cost/slot",
    ]);
    for (i, kind) in kinds.into_iter().enumerate() {
        let r = match &out {
            Some(dir) => {
                let path = dir.join(format!("tab-{i}-{}.trace.jsonl", kind.label()));
                sim.run_artifact(kind, &path)?
            }
            None => sim.run(kind)?,
        };
        eprintln!("ran {}", r.policy);
        table.row([
            r.policy.clone(),
            fmt_f64(r.final_cumulative_reward()),
            fmt_f64(r.mean_aoi_ratio),
            fmt_f64(r.violation_rate()),
            fmt_f64(r.updates_per_slot()),
            fmt_f64(r.mean_cost),
        ]);
    }
    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());
    Ok(())
}
