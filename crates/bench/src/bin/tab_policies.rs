//! Extension table — cache-policy comparison at the paper's Fig. 1a scale.
//!
//! Runs every stage-1 policy on the identical 4×5 scenario (same catalog,
//! initial ages and popularity) and reports the reward / staleness / cost
//! profile of each. Not a paper artifact (the paper reports no tables);
//! this is the standard ablation for the design choices in DESIGN.md.

use aoi_cache::presets::fig1a_scenario;
use aoi_cache::{CachePolicyKind, CacheSimulation};
use simkit::table::{fmt_f64, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = fig1a_scenario();
    let sim = CacheSimulation::new(scenario)?;

    let kinds = [
        CachePolicyKind::ValueIteration { gamma: 0.95 },
        CachePolicyKind::AverageReward,
        CachePolicyKind::QLearning {
            gamma: 0.95,
            steps: 400_000,
        },
        CachePolicyKind::Myopic,
        CachePolicyKind::Index { threshold: 0.05 },
        CachePolicyKind::AgeThreshold { margin: 1 },
        CachePolicyKind::Periodic { period: 1 },
        CachePolicyKind::Random { probability: 0.5 },
        CachePolicyKind::Never,
    ];

    let mut table = Table::new([
        "policy",
        "cum. reward",
        "mean aoi/max",
        "violation rate",
        "updates/slot",
        "cost/slot",
    ]);
    for kind in kinds {
        let r = sim.run(kind)?;
        eprintln!("ran {}", r.policy);
        table.row([
            r.policy.clone(),
            fmt_f64(r.final_cumulative_reward()),
            fmt_f64(r.mean_aoi_ratio),
            fmt_f64(r.violation_rate()),
            fmt_f64(r.updates_per_slot()),
            fmt_f64(r.mean_cost),
        ]);
    }
    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());
    Ok(())
}
