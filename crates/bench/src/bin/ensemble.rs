//! Ensemble figures — the paper's curves as multi-seed means with 95% CI
//! bands, produced by the experiment engine.
//!
//! Runs the Fig. 1a cache grid (policy menu × seed replicates, cells
//! concurrent on the shared executor, one compiled MDP kernel per RSU per
//! replicate) and the Fig. 1b service grid, then renders the mean
//! cumulative-reward / backlog curves with their confidence bands and a
//! per-policy summary table.
//!
//! ```sh
//! cargo run --release -p aoi-bench --bin ensemble [n_seeds] [--workers N]
//! ```
//!
//! `--workers N` pins the cell fan-out to exactly `N` workers (`1` runs
//! fully serial); without it the executor sizes itself from the host's
//! available parallelism. Reports are bit-identical either way.

use aoi_cache::presets::{fig1a_ensemble, fig1b_ensemble};
use aoi_cache::{ExperimentPlan, ExperimentReport};
use simkit::plot::AsciiPlot;
use simkit::table::{fmt_f64, Table};
use simkit::TimeSeries;

/// Applies a `--workers N` override to a plan, if one was given.
fn with_workers(plan: ExperimentPlan, workers: Option<usize>) -> ExperimentPlan {
    match workers {
        Some(n) => plan.workers(n),
        None => plan,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let workers = aoi_bench::take_workers_flag(&mut args)?;
    if args.len() > 1 {
        return Err(format!("unrecognized argument: {}", args[1]).into());
    }
    let n_seeds: u64 = match args.first() {
        Some(arg) => arg
            .parse()
            .map_err(|_| format!("unrecognized argument: {arg}"))?,
        None => 5,
    };

    // --- Fig. 1a ensemble: cache policies × seeds -----------------------
    let plan = with_workers(fig1a_ensemble(n_seeds), workers);
    println!(
        "Fig. 1a ensemble: {} cells ({} policies x {} seeds)\n",
        plan.n_cells(),
        plan.n_cells() / plan.n_replicates(),
        plan.n_replicates()
    );
    let cache = plan.run()?;
    print_summary(&cache, "final cumulative reward");
    plot_means(
        &cache,
        "cumulative MBS reward (ensemble mean over seeds)",
        120,
    );

    // --- Fig. 1b ensemble: service policies × arrival traces ------------
    let plan = with_workers(fig1b_ensemble(n_seeds), workers);
    println!(
        "\nFig. 1b ensemble: {} cells ({} policies x {} arrival traces)\n",
        plan.n_cells(),
        plan.n_cells() / plan.n_replicates(),
        plan.n_replicates()
    );
    let service = plan.run()?;
    print_summary(&service, "final backlog");
    plot_means(&service, "request backlog (ensemble mean over traces)", 120);
    Ok(())
}

fn print_summary(report: &ExperimentReport, what: &str) {
    let mut table = Table::new(["policy", what, "± 95% CI", "replicates"]);
    for ensemble in &report.ensembles {
        table.row([
            ensemble.label.clone(),
            fmt_f64(ensemble.curve.final_mean()),
            fmt_f64(ensemble.curve.final_ci_half_width()),
            ensemble.curve.replicates.to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn plot_means(report: &ExperimentReport, title: &str, max_points: usize) {
    let renamed: Vec<TimeSeries> = report
        .ensembles
        .iter()
        .map(|e| {
            let down = e.curve.mean.downsample(max_points);
            let mut named = TimeSeries::with_capacity(e.label.clone(), down.len());
            named.extend(down.iter().map(|p| (p.slot, p.value)));
            named
        })
        .collect();
    let mut plot = AsciiPlot::new(title, 72, 16).x_label("slot");
    for series in &renamed {
        plot = plot.series(series);
    }
    println!("{}", plot.render());
}
