//! Ensemble figures — the paper's curves as multi-seed means with 95% CI
//! bands, produced by the experiment engine.
//!
//! Runs the Fig. 1a cache grid (policy menu × seed replicates, cells
//! concurrent on the shared executor, one compiled MDP kernel per RSU per
//! replicate) and the Fig. 1b service grid **streamed**
//! ([`ExperimentPlan::run_ensembles`]: one replicate wave at a time), then
//! renders the mean cumulative-reward / backlog curves with their
//! confidence bands and a per-policy summary table.
//!
//! ```sh
//! cargo run --release -p aoi-bench --bin ensemble -- \
//!     [n_seeds] [--workers N] [--out DIR] [--compress] [--resume] [--horizon N] \
//!     [--batch N] [--claim] [--worker-id ID] [--lease-ttl-ms N] [--max-attempts N]
//! ```
//!
//! `--batch N` advances up to `N` seed replicates of each cache cell in
//! lockstep through the structure-of-arrays batch kernel
//! ([`aoi_cache::run_batch`]); every report, curve and artifact byte is
//! identical for every `N` (the service grid runs per-cell regardless).
//!
//! `--workers N` pins the cell fan-out to exactly `N` workers (`1` runs
//! fully serial); without it the executor sizes itself from the host's
//! available parallelism. Reports are bit-identical either way.
//!
//! `--out DIR` persists run artifacts into `DIR`: every cell spills its
//! traces to `cell-s<scenario>-r<replicate>-p<policy>.trace.jsonl` *as it
//! runs* — so the grid's peak memory stays O(contents) even in `Full`
//! recording mode — and each `(scenario, policy)` group writes its mean/CI
//! curve to `ensemble-s<scenario>-p<policy>.jsonl`. Artifacts re-read
//! bit-identically (`simkit::persist`); the rendered figures are identical
//! with or without the flag. `--compress` writes every artifact through
//! the streaming codec (`.z` files, typically 3–6× smaller); `--resume`
//! skips any cell whose artifact from a previous run still verifies
//! (intact footer, matching configuration) and recomputes the rest — the
//! final figures are bit-identical to a cold run.
//!
//! `--claim` (with `--resume`) turns the run into **one worker of a
//! distributed campaign**: before recomputing a cell the worker claims
//! the cell's lease file beside its artifact, so K `ensemble --resume
//! --claim` processes sharing one `--out` directory partition the grid
//! with no coordinator. A SIGKILLed worker's leases expire after
//! `--lease-ttl-ms` (default 30000) and its unfinished cells are taken
//! over; every worker's final figures are bit-identical to a cold
//! single-process run. Campaigns are **supervised**: a cell that panics
//! or errors is retried up to `--max-attempts` times (default 3, with
//! deterministic jittered backoff) and then *quarantined* — a
//! `cell-….quarantine.jsonl` marker lands beside its missing artifact,
//! the campaign continues, and this bin exits with status **3** so
//! orchestration can tell a degraded campaign from a clean one (0) or a
//! hard failure (1). Every claim/retry/quarantine is appended to the
//! worker's `events-<id>.jsonl` health journal (`aoi-artifacts health`
//! folds them into a post-mortem). See the README's "Distributed
//! campaigns" section.

use aoi_cache::presets::{fig1a_ensemble, fig1b_ensemble};
use aoi_cache::{EnsembleSummary, ExperimentPlan, ResumeReport};
use simkit::plot::AsciiPlot;
use simkit::table::{fmt_f64, Table};
use simkit::TimeSeries;

/// Applies the shared command-line overrides to a preset plan.
fn configure(plan: ExperimentPlan, args: &aoi_bench::CliArgs, tag: &str) -> ExperimentPlan {
    let plan = match args.workers {
        Some(n) => plan.workers(n),
        None => plan,
    };
    let plan = match args.horizon {
        Some(h) => plan.horizon(h),
        None => plan,
    };
    let plan = match args.batch {
        Some(n) => plan.batch(n),
        None => plan,
    };
    match &args.out {
        Some(dir) => {
            let plan = plan
                .artifact_dir(dir.join(tag))
                .compress(args.compression)
                .resume(args.resume)
                .claim(args.claim);
            let plan = match &args.worker_id {
                Some(id) => plan.worker_id(id.clone()),
                None => plan,
            };
            let plan = match args.lease_ttl_ms {
                Some(ttl) => plan.lease_ttl_ms(ttl),
                None => plan,
            };
            match args.max_attempts {
                Some(n) => plan.max_attempts(n),
                None => plan,
            }
        }
        None => plan,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Test-only fault injection (SIMKIT_FAULT=kill:N / fail-writes:N /
    // delay:N:MS / corrupt-tail:N): lets the crash-safety suite interrupt
    // this bin mid-grid. Unset in normal use — and a no-op then.
    simkit::faults::arm_from_env()?;
    let args = aoi_bench::CliSpec {
        bin: "ensemble",
        about: "Figs. 1a/1b as multi-seed mean ± CI ensembles (streamed experiment engine)",
        workers: true,
        out: true,
        resume: true,
        claim: true,
        horizon: true,
        batch: true,
        positional: Some(aoi_bench::Positional {
            name: "n_seeds",
            help: "seed replicates per policy (default 5)",
        }),
        extras: &[],
    }
    .parse()?;
    let n_seeds: u64 = match &args.positional {
        Some(arg) => arg
            .parse()
            .map_err(|_| format!("unrecognized argument: {arg}"))?,
        None => 5,
    };

    // --- Fig. 1a ensemble: cache policies × seeds -----------------------
    let plan = configure(fig1a_ensemble(n_seeds), &args, "fig1a");
    println!(
        "Fig. 1a ensemble: {} cells ({} policies x {} seeds)\n",
        plan.n_cells(),
        plan.n_cells() / plan.n_replicates(),
        plan.n_replicates()
    );
    let (cache, resume) = plan.run_ensembles_resumable()?;
    let mut quarantined = resume.quarantined.len();
    print_resume(&resume, args.resume);
    print_summary(&cache, "final cumulative reward");
    plot_means(
        &cache,
        "cumulative MBS reward (ensemble mean over seeds)",
        120,
    );

    // --- Fig. 1b ensemble: service policies × arrival traces ------------
    let plan = configure(fig1b_ensemble(n_seeds), &args, "fig1b");
    println!(
        "\nFig. 1b ensemble: {} cells ({} policies x {} arrival traces)\n",
        plan.n_cells(),
        plan.n_cells() / plan.n_replicates(),
        plan.n_replicates()
    );
    let (service, resume) = plan.run_ensembles_resumable()?;
    quarantined += resume.quarantined.len();
    print_resume(&resume, args.resume);
    print_summary(&service, "final backlog");
    plot_means(&service, "request backlog (ensemble mean over traces)", 120);

    if let Some(dir) = &args.out {
        println!(
            "\nartifacts: per-cell traces and per-group ensemble curves under {}",
            dir.display()
        );
    }
    if quarantined > 0 {
        // Exit 3 distinguishes "finished, but degraded" from a clean run
        // (0) and a hard failure (1): the figures above fold only the
        // surviving replicates, and the quarantine markers say why.
        eprintln!(
            "warning: {quarantined} cell(s) quarantined after exhausting their retry budget \
             — see the cell-*.quarantine.jsonl markers and `aoi-artifacts health`"
        );
        std::process::exit(3);
    }
    Ok(())
}

fn print_resume(resume: &ResumeReport, resuming: bool) {
    if resuming {
        println!("resume: {resume}\n");
    }
}

fn print_summary(ensembles: &[EnsembleSummary], what: &str) {
    let mut table = Table::new(["policy", what, "± 95% CI", "replicates"]);
    for ensemble in ensembles {
        table.row([
            ensemble.label.clone(),
            fmt_f64(ensemble.curve.final_mean()),
            fmt_f64(ensemble.curve.final_ci_half_width()),
            ensemble.curve.replicates.to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn plot_means(ensembles: &[EnsembleSummary], title: &str, max_points: usize) {
    let renamed: Vec<TimeSeries> = ensembles
        .iter()
        .map(|e| aoi_bench::rename(e.curve.mean.downsample(max_points), e.label.clone()))
        .collect();
    let mut plot = AsciiPlot::new(title, 72, 16).x_label("slot");
    for series in &renamed {
        plot = plot.series(series);
    }
    println!("{}", plot.render());
}
