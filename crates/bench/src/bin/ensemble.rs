//! Ensemble figures — the paper's curves as multi-seed means with 95% CI
//! bands, produced by the experiment engine.
//!
//! Runs the Fig. 1a cache grid (policy menu × seed replicates, cells
//! concurrent on the shared executor, one compiled MDP kernel per RSU per
//! replicate) and the Fig. 1b service grid, then renders the mean
//! cumulative-reward / backlog curves with their confidence bands and a
//! per-policy summary table.
//!
//! ```sh
//! cargo run --release -p aoi-bench --bin ensemble [n_seeds]
//! ```

use aoi_cache::presets::{fig1a_ensemble, fig1b_ensemble};
use aoi_cache::ExperimentReport;
use simkit::plot::AsciiPlot;
use simkit::table::{fmt_f64, Table};
use simkit::TimeSeries;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);

    // --- Fig. 1a ensemble: cache policies × seeds -----------------------
    let plan = fig1a_ensemble(n_seeds);
    println!(
        "Fig. 1a ensemble: {} cells ({} policies x {} seeds)\n",
        plan.n_cells(),
        plan.n_cells() / plan.n_replicates(),
        plan.n_replicates()
    );
    let cache = plan.run()?;
    print_summary(&cache, "final cumulative reward");
    plot_means(
        &cache,
        "cumulative MBS reward (ensemble mean over seeds)",
        120,
    );

    // --- Fig. 1b ensemble: service policies × arrival traces ------------
    let plan = fig1b_ensemble(n_seeds);
    println!(
        "\nFig. 1b ensemble: {} cells ({} policies x {} arrival traces)\n",
        plan.n_cells(),
        plan.n_cells() / plan.n_replicates(),
        plan.n_replicates()
    );
    let service = plan.run()?;
    print_summary(&service, "final backlog");
    plot_means(&service, "request backlog (ensemble mean over traces)", 120);
    Ok(())
}

fn print_summary(report: &ExperimentReport, what: &str) {
    let mut table = Table::new(["policy", what, "± 95% CI", "replicates"]);
    for ensemble in &report.ensembles {
        table.row([
            ensemble.label.clone(),
            fmt_f64(ensemble.curve.final_mean()),
            fmt_f64(ensemble.curve.final_ci_half_width()),
            ensemble.curve.replicates.to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn plot_means(report: &ExperimentReport, title: &str, max_points: usize) {
    let renamed: Vec<TimeSeries> = report
        .ensembles
        .iter()
        .map(|e| {
            let down = e.curve.mean.downsample(max_points);
            let mut named = TimeSeries::with_capacity(e.label.clone(), down.len());
            named.extend(down.iter().map(|p| (p.slot, p.value)));
            named
        })
        .collect();
    let mut plot = AsciiPlot::new(title, 72, 16).x_label("slot");
    for series in &renamed {
        plot = plot.series(series);
    }
    println!("{}", plot.render());
}
