//! Ensemble figures — the paper's curves as multi-seed means with 95% CI
//! bands, produced by the experiment engine.
//!
//! Runs the Fig. 1a cache grid (policy menu × seed replicates, cells
//! concurrent on the shared executor, one compiled MDP kernel per RSU per
//! replicate) and the Fig. 1b service grid **streamed**
//! ([`ExperimentPlan::run_ensembles`]: one replicate wave at a time), then
//! renders the mean cumulative-reward / backlog curves with their
//! confidence bands and a per-policy summary table.
//!
//! ```sh
//! cargo run --release -p aoi-bench --bin ensemble [n_seeds] [--workers N] [--out DIR]
//! ```
//!
//! `--workers N` pins the cell fan-out to exactly `N` workers (`1` runs
//! fully serial); without it the executor sizes itself from the host's
//! available parallelism. Reports are bit-identical either way.
//!
//! `--out DIR` persists run artifacts into `DIR`: every cell spills its
//! traces to `cell-s<scenario>-r<replicate>-p<policy>.trace.jsonl` *as it
//! runs* — so the grid's peak memory stays O(contents) even in `Full`
//! recording mode — and each `(scenario, policy)` group writes its mean/CI
//! curve to `ensemble-s<scenario>-p<policy>.jsonl`. Artifacts re-read
//! bit-identically (`simkit::persist`); the rendered figures are identical
//! with or without the flag.

use aoi_cache::presets::{fig1a_ensemble, fig1b_ensemble};
use aoi_cache::{EnsembleSummary, ExperimentPlan};
use simkit::plot::AsciiPlot;
use simkit::table::{fmt_f64, Table};
use simkit::TimeSeries;
use std::path::PathBuf;

/// Applies the `--workers N` / `--out DIR` overrides to a plan.
fn configure(
    plan: ExperimentPlan,
    workers: Option<usize>,
    out: &Option<PathBuf>,
    tag: &str,
) -> ExperimentPlan {
    let plan = match workers {
        Some(n) => plan.workers(n),
        None => plan,
    };
    match out {
        Some(dir) => plan.artifact_dir(dir.join(tag)),
        None => plan,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let workers = aoi_bench::take_workers_flag(&mut args)?;
    let out = aoi_bench::take_out_flag(&mut args)?;
    if args.len() > 1 {
        return Err(format!("unrecognized argument: {}", args[1]).into());
    }
    let n_seeds: u64 = match args.first() {
        Some(arg) => arg
            .parse()
            .map_err(|_| format!("unrecognized argument: {arg}"))?,
        None => 5,
    };

    // --- Fig. 1a ensemble: cache policies × seeds -----------------------
    let plan = configure(fig1a_ensemble(n_seeds), workers, &out, "fig1a");
    println!(
        "Fig. 1a ensemble: {} cells ({} policies x {} seeds)\n",
        plan.n_cells(),
        plan.n_cells() / plan.n_replicates(),
        plan.n_replicates()
    );
    let cache = plan.run_ensembles()?;
    print_summary(&cache, "final cumulative reward");
    plot_means(
        &cache,
        "cumulative MBS reward (ensemble mean over seeds)",
        120,
    );

    // --- Fig. 1b ensemble: service policies × arrival traces ------------
    let plan = configure(fig1b_ensemble(n_seeds), workers, &out, "fig1b");
    println!(
        "\nFig. 1b ensemble: {} cells ({} policies x {} arrival traces)\n",
        plan.n_cells(),
        plan.n_cells() / plan.n_replicates(),
        plan.n_replicates()
    );
    let service = plan.run_ensembles()?;
    print_summary(&service, "final backlog");
    plot_means(&service, "request backlog (ensemble mean over traces)", 120);

    if let Some(dir) = &out {
        println!(
            "\nartifacts: per-cell traces and per-group ensemble curves under {}",
            dir.display()
        );
    }
    Ok(())
}

fn print_summary(ensembles: &[EnsembleSummary], what: &str) {
    let mut table = Table::new(["policy", what, "± 95% CI", "replicates"]);
    for ensemble in ensembles {
        table.row([
            ensemble.label.clone(),
            fmt_f64(ensemble.curve.final_mean()),
            fmt_f64(ensemble.curve.final_ci_half_width()),
            ensemble.curve.replicates.to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn plot_means(ensembles: &[EnsembleSummary], title: &str, max_points: usize) {
    let renamed: Vec<TimeSeries> = ensembles
        .iter()
        .map(|e| {
            let down = e.curve.mean.downsample(max_points);
            let mut named = TimeSeries::with_capacity(e.label.clone(), down.len());
            named.extend(down.iter().map(|p| (p.slot, p.value)));
            named
        })
        .collect();
    let mut plot = AsciiPlot::new(title, 72, 16).x_label("slot");
    for series in &renamed {
        plot = plot.series(series);
    }
    println!("{}", plot.render());
}
