//! Extension — the full two-stage scheme on the vehicular-network
//! substrate: cache policies × service policies on the identical road,
//! traffic and request stream.

use aoi_cache::presets::joint_scenario;
use aoi_cache::{run_joint, CachePolicyKind, ServicePolicyKind};
use simkit::table::{fmt_f64, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    aoi_bench::CliSpec::bare(
        "ext_joint",
        "two-stage joint runs on the vehicular-network substrate",
    )
    .parse()?;
    let base = joint_scenario();
    println!(
        "network: {:.0} m road, {} regions, {} RSUs, horizon {}\n",
        base.network.road_length_m, base.network.n_regions, base.network.n_rsus, base.horizon
    );

    let cache_kinds = [
        CachePolicyKind::Myopic,
        CachePolicyKind::AgeThreshold { margin: 1 },
        CachePolicyKind::Periodic { period: 1 },
        CachePolicyKind::Never,
    ];
    let service_kinds = [
        ServicePolicyKind::Lyapunov { v: 20.0 },
        ServicePolicyKind::AlwaysServe,
        ServicePolicyKind::CostGreedy,
    ];

    let mut table = Table::new([
        "cache policy",
        "service policy",
        "freshness %",
        "mean queue",
        "svc cost/slot",
        "upd cost/slot",
        "stale cost/slot",
        "total cost/slot",
    ]);
    for ck in cache_kinds {
        for sk in service_kinds {
            let mut s = base.clone();
            s.cache_policy = ck;
            s.service_policy = sk;
            let r = run_joint(&s)?;
            table.row([
                ck.label().to_string(),
                sk.label().to_string(),
                fmt_f64(r.freshness_rate() * 100.0),
                fmt_f64(r.mean_queue),
                fmt_f64(r.mean_service_cost),
                fmt_f64(r.mean_update_cost),
                fmt_f64(r.mean_stale_cost),
                fmt_f64(r.mean_total_cost()),
            ]);
        }
    }
    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());
    Ok(())
}
