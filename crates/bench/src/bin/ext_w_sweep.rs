//! Extension figure — the Eq. 1 weight `w` tradeoff curve.
//!
//! Sweeps the AoI-utility weight of the paper's reward and reports how the
//! optimal MDP policy's behaviour moves along the freshness/cost curve:
//! small `w` ⇒ updates are not worth their cost (stale caches, no spend);
//! large `w` ⇒ the MBS pays for maximal freshness every slot.

use aoi_cache::{CachePolicyKind, CacheScenario, CacheSimulation};
use simkit::executor;
use simkit::table::{fmt_f64, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A per-RSU problem small enough that the exact solver re-solves
    // instantly for every w.
    let base = CacheScenario {
        n_rsus: 2,
        regions_per_rsu: 3,
        age_cap: 7,
        max_age_min: 3,
        max_age_max: 6,
        update_cost: 1.0,
        horizon: 4000,
        ..CacheScenario::default()
    };
    let ws = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4];

    // Points are independent; the shared executor fans them out and
    // returns them in input (ascending-w) order. `--workers N` pins the
    // fan-out; the default sizes from the host.
    let args = aoi_bench::CliSpec {
        workers: true,
        ..aoi_bench::CliSpec::bare("ext_w_sweep", "Eq. 1 weight w tradeoff curve")
    }
    .parse()?;
    let workers = args
        .workers
        .unwrap_or_else(|| executor::worker_count(ws.len(), true, 1));
    let rows: Vec<(f64, f64, f64, f64)> = executor::parallel_map(workers, &ws, |_, &w| {
        let scenario = CacheScenario { weight: w, ..base };
        let sim = CacheSimulation::new(scenario).expect("scenario is valid");
        let r = sim
            .run(CachePolicyKind::ValueIteration { gamma: 0.95 })
            .expect("solver succeeds");
        (w, r.mean_aoi_ratio, r.updates_per_slot(), r.mean_cost)
    });

    let mut table = Table::new(["w", "mean aoi/max", "updates/slot", "cost/slot"]);
    for (w, aoi, upd, cost) in &rows {
        table.row([fmt_f64(*w), fmt_f64(*aoi), fmt_f64(*upd), fmt_f64(*cost)]);
    }
    println!("{}", table.render());

    // Sanity of the sweep's shape: staleness must not increase with w.
    let monotone = rows.windows(2).all(|p| p[1].1 <= p[0].1 + 0.05);
    println!("staleness non-increasing in w: {monotone}");
    println!("csv:\n{}", table.to_csv());
    Ok(())
}
