//! Fig. 1a — "AoI-aware content caching".
//!
//! Reproduces the paper's first evaluation artifact: 4 RSUs × 5 contents
//! (20 contents managed by the MBS), 1000 slots, random initial AoI and
//! per-content `A^max`. The proposed MDP update policy keeps each managed
//! content's AoI below its maximum while the cumulative MBS reward keeps
//! rising.
//!
//! Output: the AoI traces of two selected contents of RSU 1 (the two most
//! popular, which the optimal policy maintains), the cumulative reward
//! curve, an ASCII rendering of both, and CSV for external plotting.
//!
//! ```sh
//! cargo run --release -p aoi-bench --bin fig1a [--out DIR] [--compress] [--horizon N]
//! ```
//!
//! With `--out DIR` the run **spills** its AoI traces to
//! `DIR/fig1a.trace.jsonl` slot by slot (no full trace stays in memory,
//! even in `Full` recording mode) and the figure below is rendered from
//! the **re-read** artifact — the round trip is bit-identical.
//! `--compress` streams the artifact through the
//! `simkit::persist::compress` codec instead (`fig1a.trace.jsonl.z`).

use aoi_cache::persist::read_artifact;
use aoi_cache::presets::{fig1a_policy, fig1a_scenario};
use aoi_cache::{CacheScenario, CacheSimulation};
use simkit::plot::AsciiPlot;
use simkit::table::{fmt_f64, Table};
use simkit::TimeSeries;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = aoi_bench::CliSpec {
        bin: "fig1a",
        about: "Fig. 1a — AoI traces and cumulative reward of the proposed MDP policy",
        workers: false,
        out: true,
        resume: false,
        claim: false,
        horizon: true,
        batch: false,
        positional: None,
        extras: &[],
    }
    .parse()?;
    let scenario = CacheScenario {
        horizon: args.horizon.unwrap_or(fig1a_scenario().horizon),
        ..fig1a_scenario()
    };
    println!(
        "Fig. 1a scenario: {} RSUs x {} contents, horizon {}, seed {}\n",
        scenario.n_rsus, scenario.regions_per_rsu, scenario.horizon, scenario.seed
    );
    let sim = CacheSimulation::new(scenario)?;
    let (report, artifact) = match &args.out {
        Some(dir) => {
            let path = args.compression.apply_to(&dir.join("fig1a.trace.jsonl"));
            let report = sim.run_artifact_with(fig1a_policy(), &path, args.compression)?;
            let artifact = read_artifact(&path)?;
            println!(
                "artifacts: traces spilled to and re-read from {}\n",
                path.display()
            );
            (report, Some(artifact))
        }
        None => (sim.run(fig1a_policy())?, None),
    };
    // With --out the report holds no traces — the figure's series come
    // from the re-read artifact (channels are in rsu-major content order).
    let per = scenario.regions_per_rsu;
    let aoi = |rsu: usize, content: usize| -> &TimeSeries {
        match &artifact {
            Some(a) => &a.channels[rsu * per + content].series,
            None => report.aoi_trace(rsu, content),
        }
    };

    // The paper: "we select two contents in the cache of RSU 1 and show
    // them over time". Select, among the contents of RSU 1 that the policy
    // *maintains* (post-warm-up ages never exceed A^max), the two with the
    // largest sawtooth amplitude — the visually informative traces.
    let rsu = 0usize;
    let spec = &sim.specs()[rsu];
    let (warmup, window) = aoi_bench::figure_window(scenario.horizon);
    let mut candidates: Vec<(usize, f64)> = (0..spec.popularity.len())
        .filter_map(|h| {
            let tail: Vec<f64> = aoi(rsu, h).values().skip(warmup).collect();
            let max = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = tail.iter().copied().fold(f64::INFINITY, f64::min);
            let maintained = max <= f64::from(spec.max_ages[h].get());
            maintained.then_some((h, max - min))
        })
        .collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite amplitudes"));
    let c1 = candidates.first().map_or(0, |c| c.0);
    let c2 = candidates.get(1).map_or(1, |c| c.0);

    let trace1 = aoi_bench::window_of(
        aoi(rsu, c1),
        warmup,
        window,
        format!("content {c1} (Amax={})", spec.max_ages[c1].get()),
    );
    let trace2 = aoi_bench::window_of(
        aoi(rsu, c2),
        warmup,
        window,
        format!("content {c2} (Amax={})", spec.max_ages[c2].get()),
    );
    let plot = AsciiPlot::new(
        format!(
            "Fig. 1a (top): AoI of two contents of RSU 1, slots {warmup}..{}",
            warmup + window
        ),
        72,
        12,
    )
    .series(&trace1)
    .series(&trace2)
    .y_label("AoI (slots)");
    println!("{}", plot.render());

    let reward = aoi_bench::rename(
        report.cumulative_reward.downsample(72),
        "cumulative reward".to_string(),
    );
    let plot = AsciiPlot::new("Fig. 1a (bottom): cumulative MBS reward", 72, 10)
        .series(&reward)
        .y_label("reward");
    println!("{}", plot.render());

    let mut summary = Table::new(["metric", "value"]);
    summary
        .row(["policy", report.policy.as_str()])
        .row([
            "final cumulative reward",
            &fmt_f64(report.final_cumulative_reward()),
        ])
        .row(["updates per slot", &fmt_f64(report.updates_per_slot())])
        .row(["mean AoI / Amax", &fmt_f64(report.mean_aoi_ratio)])
        .row([
            "violation rate (all 20 contents)",
            &fmt_f64(report.violation_rate()),
        ])
        .row([
            "selected contents max AoI",
            &fmt_f64(
                aoi(rsu, c1)
                    .max()
                    .unwrap_or(0.0)
                    .max(aoi(rsu, c2).max().unwrap_or(0.0)),
            ),
        ]);
    println!("{}", summary.render());

    // CSV of the full-resolution series the paper plots.
    println!("csv: slot,aoi_content_{c1},aoi_content_{c2},cumulative_reward");
    let t1 = aoi(rsu, c1);
    let t2 = aoi(rsu, c2);
    for ((p1, p2), pr) in t1
        .iter()
        .zip(t2.iter())
        .zip(report.cumulative_reward.iter())
    {
        if p1.slot.index() % 25 == 0 {
            println!(
                "csv: {},{},{},{:.2}",
                p1.slot.index(),
                p1.value,
                p2.value,
                pr.value
            );
        }
    }
    Ok(())
}
