//! Extension — solver scaling on the per-RSU cache MDP.
//!
//! Wall-clock time of the exact and learning solvers as the state space
//! grows (`A_cap^{L′}` states), and the realized reward of each on the
//! same simulated horizon. This quantifies the practical limit of the
//! exact approach and where Q-learning takes over.

use aoi_cache::{CachePolicyKind, CacheScenario, CacheSimulation};
use simkit::table::{fmt_f64, Table};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    aoi_bench::CliSpec::bare("ext_scaling", "exact vs learning solver scaling ladder").parse()?;
    let mut table = Table::new([
        "contents/RSU",
        "age cap",
        "states",
        "solver",
        "solve+run (s)",
        "cum. reward",
    ]);

    // (L', cap) ladder: states = cap^L'.
    let ladder = [(2usize, 6u32), (3, 6), (4, 8), (5, 9)];
    for (per_rsu, cap) in ladder {
        let scenario = CacheScenario {
            n_rsus: 1,
            regions_per_rsu: per_rsu,
            age_cap: cap,
            max_age_min: 3,
            max_age_max: cap.saturating_sub(1).max(3),
            horizon: 1000,
            seed: 99,
            ..CacheScenario::default()
        };
        let sim = CacheSimulation::new(scenario)?;
        let states = (cap as usize).pow(per_rsu as u32);

        let solvers: Vec<CachePolicyKind> = vec![
            CachePolicyKind::ValueIteration { gamma: 0.95 },
            CachePolicyKind::QLearning {
                gamma: 0.95,
                steps: 30 * states, // scale exploration with the space
            },
            CachePolicyKind::Myopic,
        ];
        for kind in solvers {
            // lint:allow(wall-clock): solve-time measurement harness — the
            // elapsed wall time IS the reported result, not simulation state.
            let start = Instant::now();
            let report = sim.run(kind)?;
            let elapsed = start.elapsed().as_secs_f64();
            table.row([
                format!("{per_rsu}"),
                format!("{cap}"),
                format!("{states}"),
                report.policy.clone(),
                fmt_f64(elapsed),
                fmt_f64(report.final_cumulative_reward()),
            ]);
            eprintln!(
                "{per_rsu} contents, {states} states, {}: {elapsed:.2}s",
                report.policy
            );
        }
    }
    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());
    Ok(())
}
