//! `aoi-artifacts` — offline toolbox for `simkit::persist` run artifacts.
//!
//! Every `--out` directory the experiment binaries produce is a set of
//! self-describing JSONL artifacts (plain or compressed — readers detect
//! the encoding from the file's first bytes). This tool works on those
//! files **without re-running anything**:
//!
//! * `inspect PATH...` — manifest, channel and footer summary per artifact;
//! * `render DIR` — re-create the Fig. 1a / Fig. 1b style plots offline
//!   from the artifacts under `DIR`;
//! * `verify PATH... [--config-hash HEX]` — full structural check (intact
//!   footer / compressed end marker and checksum), optional config-hash
//!   match, and a **re-read bit-identity** check: the artifact is
//!   re-serialized and read back, and both in-memory forms must be equal
//!   (this exercises the shortest-round-trip float encoding end to end);
//! * `diff DIR_A DIR_B` — compare two artifact directories record by
//!   record (pairing `x.jsonl` with `x.jsonl.z`, so a compressed and a
//!   plain run of the same grid diff as equal);
//! * `health DIR` — campaign post-mortem from the supervision telemetry
//!   under `DIR`: folds every worker's `events-*.jsonl` health journal
//!   into a per-worker event-count table (claims, steals, retries,
//!   backoffs, quarantines, lost heartbeats) and lists every
//!   `cell-*.quarantine.jsonl` marker with its worker, attempt count and
//!   failure message — exiting 1 when any cell is quarantined, so
//!   orchestration can gate on a degraded campaign;
//! * `merge OUT_DIR SRC_DIR...` — fuse the partial artifact directories of
//!   a distributed campaign into one: every **verified** cell artifact is
//!   copied into `OUT_DIR` (conflicts between sources are resolved by the
//!   rule *verified wins*; two verified copies must be identical, and a
//!   config-hash or seed mismatch is an error), then every `(scenario,
//!   policy)` ensemble artifact is **recomputed from the merged cells** —
//!   byte-identical to what the experiment engine itself would write.
//!
//! `verify`, `diff` and `merge` exit non-zero on any
//! failure/difference/conflict, so CI can assert round trips, resume
//! bit-identity and campaign merges end to end.
//!
//! ```sh
//! cargo run --release -p aoi-bench --bin aoi-artifacts -- inspect out/fig1a
//! cargo run --release -p aoi-bench --bin aoi-artifacts -- render out
//! cargo run --release -p aoi-bench --bin aoi-artifacts -- verify out --config-hash 1a2b…
//! cargo run --release -p aoi-bench --bin aoi-artifacts -- diff out-cold out-resumed
//! cargo run --release -p aoi-bench --bin aoi-artifacts -- health out
//! cargo run --release -p aoi-bench --bin aoi-artifacts -- merge out out-worker1 out-worker2
//! ```

use aoi_cache::persist::{read_artifact, Artifact, ArtifactKind, ArtifactWriter, PersistError};
use simkit::plot::AsciiPlot;
use simkit::supervise::{self, EventKind};
use simkit::table::{fmt_f64, Table};
use simkit::TimeSeries;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "aoi-artifacts — offline toolbox for simkit::persist run artifacts

Usage:
  aoi-artifacts inspect PATH...                 manifest/channel/footer summary
  aoi-artifacts render DIR                      re-create figure plots offline
  aoi-artifacts verify PATH... [--config-hash HEX]
                                                footer + hash + re-read bit-identity
  aoi-artifacts diff DIR_A DIR_B                compare two artifact directories
  aoi-artifacts health DIR                      campaign post-mortem: per-worker
                                                event counts from the health
                                                journals plus every quarantined
                                                cell's marker
  aoi-artifacts merge OUT_DIR SRC_DIR...        fuse partial campaign directories
                                                (verified cells win; ensembles
                                                recomputed from the merged cells)

PATH may be an artifact file or a directory (searched recursively for
*.jsonl / *.jsonl.z; health journals and quarantine markers are
telemetry, not artifacts, and are skipped). verify, diff and merge exit
1 on failure/difference/conflict; health exits 1 when any cell is
quarantined.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("health") => cmd_health(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!(
            "aoi-artifacts: unknown subcommand '{other}'\n\n{USAGE}"
        )),
        None => Err(format!(
            "aoi-artifacts: a subcommand is required\n\n{USAGE}"
        )),
    };
    match result {
        Ok(clean) if clean => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

/// Expands each argument into artifact files: a file stands for itself, a
/// directory for every `*.jsonl` / `*.jsonl.z` under it (recursively),
/// sorted for deterministic output.
fn discover(paths: &[String]) -> Result<Vec<PathBuf>, String> {
    fn walk(dir: &Path, into: &mut Vec<PathBuf>) -> Result<(), String> {
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            if path.is_dir() {
                walk(&path, into)?;
            } else if is_artifact_name(&path) {
                into.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    for arg in paths {
        let path = PathBuf::from(arg);
        if path.is_dir() {
            walk(&path, &mut files)?;
        } else if path.is_file() {
            files.push(path);
        } else {
            return Err(format!("no such file or directory: {arg}"));
        }
    }
    files.sort();
    if files.is_empty() {
        return Err("no artifact files found".to_string());
    }
    Ok(files)
}

fn is_artifact_name(path: &Path) -> bool {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    // Health journals and quarantine markers also end in .jsonl, but they
    // are worker telemetry (see `health`), not persist artifacts.
    (name.ends_with(".jsonl") || name.ends_with(".jsonl.z"))
        && !simkit::supervise::is_journal_name(name)
        && !simkit::supervise::is_quarantine_name(name)
}

/// The encoding-independent name diffs pair files by (`.z` stripped).
fn logical_name(path: &Path) -> String {
    let name = path.to_string_lossy();
    name.strip_suffix(".z").unwrap_or(&name).to_string()
}

fn encoding_of(path: &Path) -> &'static str {
    let mut prefix = [0u8; 4];
    let read = std::fs::File::open(path)
        .and_then(|mut f| std::io::Read::read(&mut f, &mut prefix))
        .unwrap_or(0);
    if aoi_cache::persist::compress::is_compressed(&prefix[..read]) {
        "compressed"
    } else {
        "plain"
    }
}

// --- inspect ---------------------------------------------------------------

fn cmd_inspect(args: &[String]) -> Result<bool, String> {
    if args.is_empty() {
        return Err("inspect: needs at least one PATH".to_string());
    }
    for path in discover(args)? {
        let artifact = read_artifact(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let samples: usize = artifact.channels.iter().map(|c| c.series.len()).sum();
        let m = &artifact.manifest;
        println!(
            "{} ({} bytes, {})",
            path.display(),
            bytes,
            encoding_of(&path)
        );
        println!(
            "  {:?} artifact | scenario {} | policy {} | seed {} | recording {:?} | config {:016x}",
            m.artifact,
            m.scenario,
            m.policy,
            m.seed.map_or("-".to_string(), |s| s.to_string()),
            m.recording,
            m.config_hash
        );
        println!(
            "  {} channels, {samples} samples, {} curves",
            artifact.channels.len(),
            artifact.curves.len()
        );
        let mut table = Table::new(["channel", "mode", "samples", "mean", "min", "max"]);
        for ch in &artifact.channels {
            let (mean, min, max) = match &ch.summary {
                Some(s) => (
                    fmt_f64(s.mean),
                    s.min.map_or("n/a".into(), fmt_f64),
                    s.max.map_or("n/a".into(), fmt_f64),
                ),
                None => ("-".into(), "-".into(), "-".into()),
            };
            table.row([
                ch.name.clone(),
                format!("{:?}", ch.mode),
                ch.series.len().to_string(),
                mean,
                min,
                max,
            ]);
        }
        println!("{}", indent(&table.render()));
        for curve in &artifact.curves {
            println!(
                "  curve {} (s{} p{}): {} replicates, {} slots, final mean {}",
                curve.label,
                curve.scenario,
                curve.policy,
                curve.curve.replicates,
                curve.curve.mean.len(),
                fmt_f64(curve.curve.final_mean())
            );
        }
        println!();
    }
    Ok(true)
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

// --- render ----------------------------------------------------------------

fn cmd_render(args: &[String]) -> Result<bool, String> {
    let [dir] = args else {
        return Err("render: needs exactly one DIR".to_string());
    };
    let mut ensembles: Vec<(PathBuf, Artifact)> = Vec::new();
    let mut traces: Vec<(PathBuf, Artifact)> = Vec::new();
    for path in discover(std::slice::from_ref(dir))? {
        let artifact = read_artifact(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        match artifact.manifest.artifact {
            ArtifactKind::Ensemble => ensembles.push((path, artifact)),
            ArtifactKind::Trace => traces.push((path, artifact)),
        }
    }

    // Ensemble artifacts: one mean-curve plot per directory, every
    // policy's curve as a series — the offline twin of the ensemble bin.
    let mut by_dir: BTreeMap<PathBuf, Vec<&Artifact>> = BTreeMap::new();
    for (path, artifact) in &ensembles {
        let parent = path.parent().unwrap_or(Path::new(".")).to_path_buf();
        by_dir.entry(parent).or_default().push(artifact);
    }
    for (parent, group) in by_dir {
        let mut table = Table::new(["policy", "final mean", "± 95% CI", "replicates"]);
        let mut plot = AsciiPlot::new(format!("ensemble means — {}", parent.display()), 72, 16)
            .x_label("slot");
        let mut series = Vec::new();
        for artifact in &group {
            for curve in &artifact.curves {
                table.row([
                    curve.label.clone(),
                    fmt_f64(curve.curve.final_mean()),
                    fmt_f64(curve.curve.final_ci_half_width()),
                    curve.curve.replicates.to_string(),
                ]);
                series.push(aoi_bench::rename(
                    curve.curve.mean.downsample(120),
                    curve.label.clone(),
                ));
            }
        }
        for s in &series {
            plot = plot.series(s);
        }
        println!("{}", table.render());
        println!("{}", plot.render());
    }

    // Service traces (Fig. 1b): one latency plot per directory, the queue
    // channel of every policy's artifact as a series.
    let mut service_dirs: BTreeMap<PathBuf, Vec<&Artifact>> = BTreeMap::new();
    for (path, artifact) in &traces {
        if artifact.manifest.scenario == "service" {
            let parent = path.parent().unwrap_or(Path::new(".")).to_path_buf();
            service_dirs.entry(parent).or_default().push(artifact);
        }
    }
    for (parent, group) in service_dirs {
        let mut plot = AsciiPlot::new(format!("UV latency Q[t] — {}", parent.display()), 72, 14)
            .y_label("queue length");
        let series: Vec<TimeSeries> = group
            .iter()
            .filter_map(|a| {
                let ch = a.channel("queue")?;
                Some(aoi_bench::rename(
                    ch.series.downsample(72),
                    a.manifest.policy.clone(),
                ))
            })
            .collect();
        for s in &series {
            plot = plot.series(s);
        }
        println!("{}", plot.render());
    }

    // Cache/joint traces (Fig. 1a): per artifact, the AoI sawtooth of the
    // two liveliest channels plus the cumulative reward curve.
    for (path, artifact) in &traces {
        if artifact.manifest.scenario == "service" {
            continue;
        }
        render_trace(path, artifact);
    }
    Ok(true)
}

/// Renders one cache/joint trace artifact: AoI/backlog window of the two
/// largest-amplitude channels (the visually informative sawtooths, as the
/// fig1a bin selects) and the cumulative curve.
fn render_trace(path: &Path, artifact: &Artifact) {
    let m = &artifact.manifest;
    println!(
        "{} — scenario {}, policy {}, seed {}",
        path.display(),
        m.scenario,
        m.policy,
        m.seed.map_or("-".to_string(), |s| s.to_string())
    );
    let cumulative = artifact
        .channels
        .iter()
        .find(|c| c.name.contains("(cumulative)"));
    let mut lively: Vec<(&str, &TimeSeries, f64)> = artifact
        .channels
        .iter()
        .filter(|c| !c.name.contains("reward") && !c.series.is_empty())
        .map(|c| {
            let max = c.series.max().unwrap_or(0.0);
            let min = c.series.min().unwrap_or(0.0);
            (c.name.as_str(), &c.series, max - min)
        })
        .collect();
    lively.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite amplitudes"));
    if !lively.is_empty() {
        let horizon = lively[0].1.len();
        let (warmup, window) = aoi_bench::figure_window(horizon);
        let mut plot = AsciiPlot::new(
            format!("per-slot traces, slots {warmup}..{}", warmup + window),
            72,
            12,
        );
        let series: Vec<TimeSeries> = lively
            .iter()
            .take(2)
            .map(|(name, s, _)| aoi_bench::window_of(s, warmup, window, *name))
            .collect();
        for s in &series {
            plot = plot.series(s);
        }
        println!("{}", plot.render());
    }
    if let Some(ch) = cumulative {
        let plot = AsciiPlot::new("cumulative reward", 72, 10)
            .series(&aoi_bench::rename(
                ch.series.downsample(72),
                ch.name.clone(),
            ))
            .y_label("reward");
        println!("{}", plot.render());
    }
}

// --- verify ----------------------------------------------------------------

fn cmd_verify(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut want_hash: Option<u64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--config-hash" {
            let hex = iter
                .next()
                .ok_or_else(|| "verify: --config-hash needs a hex value".to_string())?;
            want_hash = Some(
                u64::from_str_radix(hex, 16)
                    .map_err(|_| format!("verify: invalid config hash '{hex}'"))?,
            );
        } else {
            paths.push(arg.clone());
        }
    }
    if paths.is_empty() {
        return Err("verify: needs at least one PATH".to_string());
    }
    let mut failures = 0usize;
    let files = discover(&paths)?;
    for (i, path) in files.iter().enumerate() {
        match verify_one(path, want_hash, i) {
            Ok(summary) => println!("OK   {}: {summary}", path.display()),
            Err(why) => {
                println!("FAIL {}: {why}", path.display());
                failures += 1;
            }
        }
    }
    println!(
        "{} artifacts verified, {failures} failed",
        files.len() - failures
    );
    Ok(failures == 0)
}

/// Structural + bit-identity verification of one artifact (see the module
/// docs). Returns a one-line summary on success.
fn verify_one(path: &Path, want_hash: Option<u64>, nonce: usize) -> Result<String, String> {
    // 1. A full read validates structure: manifest, record consistency,
    //    footer counts, and (for compressed files) end marker + checksum.
    let artifact = read_artifact(path).map_err(|e| e.to_string())?;
    // 2. Optional configuration pin.
    if let Some(want) = want_hash {
        if artifact.manifest.config_hash != want {
            return Err(format!(
                "config hash {:016x} does not match required {want:016x}",
                artifact.manifest.config_hash
            ));
        }
    }
    // 3. Re-read bit-identity: serialize the reconstruction and read it
    //    back; both in-memory forms must be equal.
    let tmp = std::env::temp_dir().join(format!(
        "aoi-artifacts-verify-{}-{nonce}.jsonl",
        std::process::id()
    ));
    let result = rewrite(&artifact, &tmp)
        .map_err(|e| format!("re-serialization failed: {e}"))
        .and_then(|()| {
            let reread = read_artifact(&tmp).map_err(|e| format!("re-read failed: {e}"))?;
            if reread != artifact {
                return Err("re-read artifact is not bit-identical".to_string());
            }
            Ok(())
        });
    let _ = std::fs::remove_file(&tmp);
    result?;
    let samples: usize = artifact.channels.iter().map(|c| c.series.len()).sum();
    Ok(format!(
        "{:?}, {} channels, {samples} samples, {} curves, config {:016x}, re-read bit-identical",
        artifact.manifest.artifact,
        artifact.channels.len(),
        artifact.curves.len(),
        artifact.manifest.config_hash
    ))
}

/// Re-serializes a reconstructed artifact with its original channel
/// layout: channels in id order (samples, then the summary if one was
/// written), then each curve record referencing its original band
/// channels.
fn rewrite(artifact: &Artifact, path: &Path) -> Result<(), PersistError> {
    let mut writer = ArtifactWriter::create(path, &artifact.manifest)?;
    let mut ids = Vec::with_capacity(artifact.channels.len());
    for ch in &artifact.channels {
        let id = writer.channel(&ch.name, ch.mode)?;
        for p in ch.series.iter() {
            writer.sample(id, p.slot, p.value)?;
        }
        if let Some(summary) = &ch.summary {
            writer.summary(id, summary)?;
        }
        ids.push(id);
    }
    for curve in &artifact.curves {
        writer.curve_ref(
            &curve.label,
            curve.scenario,
            curve.policy,
            curve.curve.replicates,
            [
                ids[curve.bands[0]],
                ids[curve.bands[1]],
                ids[curve.bands[2]],
            ],
        )?;
    }
    writer.finish()
}

// --- diff ------------------------------------------------------------------

fn cmd_diff(args: &[String]) -> Result<bool, String> {
    let [a_root, b_root] = args else {
        return Err("diff: needs exactly DIR_A DIR_B".to_string());
    };
    let index = |root: &String| -> Result<BTreeMap<String, PathBuf>, String> {
        let files = discover(std::slice::from_ref(root))?;
        Ok(files
            .into_iter()
            .map(|path| {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .to_string();
                (logical_name(Path::new(&rel)), path)
            })
            .collect())
    };
    let a_files = index(a_root)?;
    let b_files = index(b_root)?;
    let names: Vec<&String> = a_files.keys().chain(b_files.keys()).collect();
    let mut names: Vec<&String> = names;
    names.sort();
    names.dedup();

    let mut differences = 0usize;
    let mut compared = 0usize;
    for name in names {
        match (a_files.get(name), b_files.get(name)) {
            (Some(_), None) => {
                println!("DIFF {name}: only in {a_root}");
                differences += 1;
            }
            (None, Some(_)) => {
                println!("DIFF {name}: only in {b_root}");
                differences += 1;
            }
            (Some(a_path), Some(b_path)) => {
                compared += 1;
                match (read_artifact(a_path), read_artifact(b_path)) {
                    (Ok(a), Ok(b)) => match describe_difference(&a, &b) {
                        None => println!("same {name}"),
                        Some(why) => {
                            println!("DIFF {name}: {why}");
                            differences += 1;
                        }
                    },
                    (Err(e), _) => {
                        println!("DIFF {name}: unreadable in {a_root}: {e}");
                        differences += 1;
                    }
                    (_, Err(e)) => {
                        println!("DIFF {name}: unreadable in {b_root}: {e}");
                        differences += 1;
                    }
                }
            }
            (None, None) => unreachable!("name came from one of the indexes"),
        }
    }
    println!("{compared} artifacts compared, {differences} differences");
    Ok(differences == 0)
}

/// First meaningful difference between two reconstructed artifacts, or
/// `None` when they are bit-identical.
fn describe_difference(a: &Artifact, b: &Artifact) -> Option<String> {
    if a == b {
        return None;
    }
    if a.manifest != b.manifest {
        return Some(format!(
            "manifests differ ({:?} vs {:?})",
            a.manifest, b.manifest
        ));
    }
    if a.channels.len() != b.channels.len() {
        return Some(format!(
            "channel counts differ ({} vs {})",
            a.channels.len(),
            b.channels.len()
        ));
    }
    for (i, (ca, cb)) in a.channels.iter().zip(&b.channels).enumerate() {
        if ca == cb {
            continue;
        }
        if ca.name != cb.name || ca.mode != cb.mode {
            return Some(format!(
                "channel {i} declaration differs ({}/{:?} vs {}/{:?})",
                ca.name, ca.mode, cb.name, cb.mode
            ));
        }
        if ca.summary != cb.summary {
            return Some(format!("channel {i} ({}) summaries differ", ca.name));
        }
        if ca.series.len() != cb.series.len() {
            return Some(format!(
                "channel {i} ({}) lengths differ ({} vs {})",
                ca.name,
                ca.series.len(),
                cb.series.len()
            ));
        }
        for (j, (pa, pb)) in ca.series.iter().zip(cb.series.iter()).enumerate() {
            if pa != pb {
                return Some(format!(
                    "channel {i} ({}) sample {j} differs ({:?}@{} vs {:?}@{})",
                    ca.name,
                    pa.value,
                    pa.slot.index(),
                    pb.value,
                    pb.slot.index()
                ));
            }
        }
    }
    if a.curves.len() != b.curves.len() {
        return Some(format!(
            "curve counts differ ({} vs {})",
            a.curves.len(),
            b.curves.len()
        ));
    }
    for (i, (ca, cb)) in a.curves.iter().zip(&b.curves).enumerate() {
        if ca != cb {
            return Some(format!("curve {i} ({}) differs", ca.label));
        }
    }
    Some("artifacts differ".to_string())
}

// --- health ----------------------------------------------------------------

/// Campaign post-mortem from the supervision telemetry under `DIR`: one
/// event-count row per worker (journals from every subdirectory fold into
/// the same row) and one row per quarantined cell. Returns `Ok(false)` —
/// exit 1 — when any quarantine marker exists.
fn cmd_health(args: &[String]) -> Result<bool, String> {
    let [root] = args else {
        return Err("health: needs exactly one DIR".to_string());
    };
    let root = PathBuf::from(root);
    if !root.is_dir() {
        return Err(format!("no such directory: {}", root.display()));
    }
    fn walk(
        dir: &Path,
        journals: &mut Vec<PathBuf>,
        markers: &mut Vec<PathBuf>,
    ) -> Result<(), String> {
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                walk(&path, journals, markers)?;
            } else if supervise::is_journal_name(name) {
                journals.push(path);
            } else if supervise::is_quarantine_name(name) {
                markers.push(path);
            }
        }
        Ok(())
    }
    let (mut journals, mut markers) = (Vec::new(), Vec::new());
    walk(&root, &mut journals, &mut markers)?;
    journals.sort();
    markers.sort();

    const N_KINDS: usize = EventKind::ALL.len();
    let mut by_worker: BTreeMap<String, [usize; N_KINDS]> = BTreeMap::new();
    for path in &journals {
        let log = supervise::read_journal(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let counts = by_worker.entry(log.worker.clone()).or_default();
        for event in &log.events {
            let slot = EventKind::ALL
                .iter()
                .position(|k| *k == event.kind)
                .expect("EventKind::ALL is exhaustive");
            counts[slot] += 1;
        }
    }
    if by_worker.is_empty() {
        println!(
            "no health journals under {} (supervised campaigns write events-<worker>.jsonl)",
            root.display()
        );
    } else {
        let mut table =
            Table::new(std::iter::once("worker").chain(EventKind::ALL.iter().map(|k| k.as_str())));
        for (worker, counts) in &by_worker {
            table.row(std::iter::once(worker.clone()).chain(counts.iter().map(usize::to_string)));
        }
        println!("{}", table.render());
    }

    if markers.is_empty() {
        println!("no quarantined cells");
        return Ok(true);
    }
    let mut table = Table::new(["quarantined cell", "worker", "attempts", "error"]);
    for path in &markers {
        let marker =
            supervise::Quarantine::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .parent()
            .and_then(|p| p.strip_prefix(&root).ok())
            .filter(|p| !p.as_os_str().is_empty())
            .map(|p| format!("{}/{}", p.display(), marker.item))
            .unwrap_or_else(|| marker.item.clone());
        table.row([
            rel,
            marker.worker.clone(),
            marker.attempts.to_string(),
            marker.error.clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} quarantined cell(s) — their replicates are missing from the folded ensembles",
        markers.len()
    );
    Ok(false)
}

// --- merge -----------------------------------------------------------------

/// One merged cell artifact, retained for the ensemble recompute.
struct MergedCell {
    /// Directory the cell lives in, relative to its source root (and thus
    /// to `OUT_DIR`).
    rel_dir: PathBuf,
    scenario: usize,
    replicate: usize,
    policy: usize,
    artifact: Artifact,
    /// Whether the winning file was compressed (`.z`); the recomputed
    /// ensemble follows the cells' encoding.
    compressed: bool,
}

/// Parses a cell artifact's logical file name
/// (`cell-s<S>-r<R>-p<P>.trace.jsonl`) into its grid coordinates.
fn parse_cell_name(name: &str) -> Option<(usize, usize, usize)> {
    let rest = name.strip_prefix("cell-s")?.strip_suffix(".trace.jsonl")?;
    let (s, rest) = rest.split_once("-r")?;
    let (r, p) = rest.split_once("-p")?;
    Some((s.parse().ok()?, r.parse().ok()?, p.parse().ok()?))
}

fn cmd_merge(args: &[String]) -> Result<bool, String> {
    let [out_root, srcs @ ..] = args else {
        return Err("merge: needs OUT_DIR SRC_DIR...".to_string());
    };
    if srcs.is_empty() {
        return Err("merge: needs at least one SRC_DIR".to_string());
    }
    let out_path = Path::new(out_root);
    for src in srcs {
        if Path::new(src) == out_path {
            return Err(format!("merge: OUT_DIR {src} is also a source"));
        }
    }

    // Index every artifact of every source by its encoding-independent
    // path relative to its source root, so the same cell from different
    // workers' directories lands on one key.
    let mut by_name: BTreeMap<String, Vec<PathBuf>> = BTreeMap::new();
    for src in srcs {
        for path in discover(std::slice::from_ref(src))? {
            let rel = path
                .strip_prefix(src)
                .unwrap_or(&path)
                .to_string_lossy()
                .to_string();
            by_name
                .entry(logical_name(Path::new(&rel)))
                .or_default()
                .push(path);
        }
    }

    let mut cells: Vec<MergedCell> = Vec::new();
    let mut copied = 0usize;
    let mut unmerged = 0usize;
    for (name, candidates) in &by_name {
        // A full read is the verification: structure, footer counts and
        // (for compressed files) end marker + checksum.
        let mut verified: Vec<(&PathBuf, Artifact)> = Vec::new();
        let mut broken: Vec<String> = Vec::new();
        for path in candidates {
            match read_artifact(path) {
                Ok(a) => verified.push((path, a)),
                Err(e) => broken.push(format!("{}: {e}", path.display())),
            }
        }
        let file_name = Path::new(name)
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        let Some((winner_path, winner)) = verified.first() else {
            if file_name.starts_with("ensemble-") {
                // Ensembles are recomputed from the merged cells below, so
                // a torn per-worker ensemble copy costs nothing.
                println!(
                    "note {name}: dropped unreadable ensemble copies: {}",
                    broken.join("; ")
                );
            } else {
                println!("FAIL {name}: no verified candidate ({})", broken.join("; "));
                unmerged += 1;
            }
            continue;
        };
        if winner.manifest.artifact == ArtifactKind::Ensemble {
            // Ensemble artifacts are recomputed from the merged cells, so
            // stale per-worker copies never leak into the merged view.
            continue;
        }
        // Conflict rules: every verified copy of a cell must describe the
        // same configuration and carry identical content — the cells are
        // deterministic, so anything else means the sources belong to
        // different campaigns.
        for (path, other) in &verified[1..] {
            if other.manifest.config_hash != winner.manifest.config_hash
                || other.manifest.seed != winner.manifest.seed
            {
                return Err(format!(
                    "merge: {name}: config mismatch between {} (config {:016x}, seed {:?}) \
                     and {} (config {:016x}, seed {:?})",
                    winner_path.display(),
                    winner.manifest.config_hash,
                    winner.manifest.seed,
                    path.display(),
                    other.manifest.config_hash,
                    other.manifest.seed
                ));
            }
            if other != winner {
                return Err(format!(
                    "merge: {name}: verified copies {} and {} are not identical",
                    winner_path.display(),
                    path.display()
                ));
            }
        }
        if !broken.is_empty() {
            println!(
                "note {name}: dropped unreadable copies: {}",
                broken.join("; ")
            );
        }
        // Copy the winner's raw bytes (bit-identity by construction).
        let rel: PathBuf = winner_path
            .strip_prefix(srcs.iter().find(|s| winner_path.starts_with(s)).unwrap())
            .map(Path::to_path_buf)
            .map_err(|e| e.to_string())?;
        let dest = out_path.join(&rel);
        if let Some(parent) = dest.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("merge: cannot create {}: {e}", parent.display()))?;
        }
        std::fs::copy(winner_path, &dest)
            .map_err(|e| format!("merge: cannot copy {}: {e}", winner_path.display()))?;
        copied += 1;
        if let Some((scenario, replicate, policy)) = parse_cell_name(&file_name) {
            cells.push(MergedCell {
                rel_dir: rel.parent().unwrap_or(Path::new("")).to_path_buf(),
                scenario,
                replicate,
                policy,
                artifact: verified.swap_remove(0).1,
                compressed: rel.to_string_lossy().ends_with(".z"),
            });
        }
    }

    // Recompute one ensemble artifact per (directory, scenario, policy)
    // group, folding the cells' headline curves in replicate order — the
    // exact sequence (and accumulator naming, and manifest hash rule) the
    // experiment engine uses, so the result is byte-identical to an
    // engine-written ensemble.
    let mut groups: BTreeMap<(PathBuf, usize, usize), Vec<&MergedCell>> = BTreeMap::new();
    for cell in &cells {
        groups
            .entry((cell.rel_dir.clone(), cell.scenario, cell.policy))
            .or_default()
            .push(cell);
    }
    let mut ensembles = 0usize;
    for ((rel_dir, scenario, policy), mut group) in groups {
        group.sort_by_key(|c| c.replicate);
        let first = &group[0].artifact;
        let label = first.manifest.policy.clone();
        let channel_name =
            aoi_cache::headline_channel_for(&first.manifest.scenario).ok_or_else(|| {
                format!(
                    "merge: cell s{scenario}-p{policy}: unknown scenario family {:?}",
                    first.manifest.scenario
                )
            })?;
        let mut acc = simkit::CurveAccumulator::new(aoi_cache::group_curve_name(scenario, &label));
        let mut hashes = Vec::with_capacity(group.len());
        for cell in &group {
            let ch = cell.artifact.channel(channel_name).ok_or_else(|| {
                format!(
                    "merge: cell s{scenario}-r{}-p{policy}: missing headline channel \
                     {channel_name:?}",
                    cell.replicate
                )
            })?;
            acc.push_curve(&ch.series);
            hashes.push(cell.artifact.manifest.config_hash);
        }
        let curve = acc
            .finish()
            .map_err(|e| format!("merge: ensemble s{scenario}-p{policy}: {e}"))?;
        let manifest = aoi_cache::persist::Manifest {
            artifact: ArtifactKind::Ensemble,
            scenario: format!("s{scenario}"),
            policy: label.clone(),
            seed: None,
            recording: first.manifest.recording,
            config_hash: aoi_cache::ensemble_manifest_hash(&hashes),
        };
        let compression = if group[0].compressed {
            aoi_cache::persist::Compression::Deflate
        } else {
            aoi_cache::persist::Compression::None
        };
        let path = compression.apply_to(
            &out_path
                .join(&rel_dir)
                .join(format!("ensemble-s{scenario}-p{policy}.jsonl")),
        );
        let write = || -> Result<(), PersistError> {
            let mut writer = ArtifactWriter::create_with(&path, &manifest, compression)?;
            writer.curve(&label, scenario, policy, &curve)?;
            writer.finish()
        };
        write().map_err(|e| format!("merge: cannot write {}: {e}", path.display()))?;
        ensembles += 1;
    }
    println!(
        "{copied} cell artifacts merged into {out_root}, {ensembles} ensembles recomputed, \
         {unmerged} unmerged"
    );
    Ok(unmerged == 0)
}
