//! `aoi-serve` — open-loop load generator driving the online serving
//! engine, with a requests/second headline.
//!
//! Generates a Poisson × Zipf request stream (the same arrival idiom the
//! `vanet` substrate uses), pushes it through an [`aoi_serve::ServeEngine`]
//! compiled from the paper's default Fig. 1a scenario, and reports how
//! many requests per wall-clock second the engine answered. Policy
//! compilation happens before the clock starts — the headline measures
//! serving, not solving.
//!
//! `--trace FILE` replays a recorded `vanet` request-trace file instead
//! of generating load; `--record FILE` writes the generated workload in
//! that same format (see [`vanet::RequestTrace::write_to`]); `--json
//! FILE` emits the headline as a machine-readable summary (the
//! `BENCH_PR10.json` emission path); `--out DIR` streams per-shard
//! `simkit::persist` telemetry artifacts.

use aoi_bench::{CliSpec, ExtraFlag};
use aoi_cache::{CachePolicyKind, CacheScenario, ServicePolicyKind};
use aoi_serve::{ServeConfig, ServeEngine, ServeOutcome, TelemetrySpec};
use simkit::{sample_poisson, SeedSequence, Stopwatch};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use vanet::{RegionId, Request, RequestTrace, RsuId, VehicleId, Zipf};

const EXTRAS: &[ExtraFlag] = &[
    ExtraFlag {
        name: "--rate",
        value: Some("R"),
        help: "mean requests per RSU per slot (Poisson; default 4)",
    },
    ExtraFlag {
        name: "--seed",
        value: Some("N"),
        help: "workload + serving seed (default 42)",
    },
    ExtraFlag {
        name: "--trace",
        value: Some("FILE"),
        help: "replay a recorded request-trace file instead of generating",
    },
    ExtraFlag {
        name: "--record",
        value: Some("FILE"),
        help: "write the generated workload as a request-trace file",
    },
    ExtraFlag {
        name: "--json",
        value: Some("FILE"),
        help: "write the headline as a JSON summary",
    },
];

/// Open-loop workload: every slot, every RSU receives `Poisson(rate)`
/// requests for Zipf-popular contents of its own coverage.
fn generate(
    scenario: &CacheScenario,
    slots: usize,
    rate: f64,
    seed: u64,
) -> Result<RequestTrace, Box<dyn std::error::Error>> {
    let zipf = Zipf::new(scenario.regions_per_rsu, scenario.zipf_exponent)?;
    let mut rng = SeedSequence::new(seed).rng("load-gen");
    let mut vehicle = 0u64;
    let mut windows = Vec::with_capacity(slots);
    for _ in 0..slots {
        let mut requests = Vec::new();
        for k in 0..scenario.n_rsus {
            let n = sample_poisson(rate, &mut rng);
            for _ in 0..n {
                let region = k * scenario.regions_per_rsu + zipf.sample(&mut rng);
                requests.push(Request {
                    vehicle: VehicleId(vehicle),
                    rsu: RsuId(k),
                    region: RegionId(region),
                });
                vehicle += 1;
            }
        }
        windows.push(requests);
    }
    Ok(RequestTrace::from_slots(windows))
}

fn headline_json(
    scenario: &CacheScenario,
    config: &ServeConfig,
    slots: usize,
    rate: f64,
    outcome: &ServeOutcome,
    elapsed: f64,
    rps: f64,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"pr\": 10,\n",
            "  \"title\": \"aoi-serve online serving throughput (load-gen -> sharded engine cores)\",\n",
            "  \"command\": \"cargo run --release -p aoi-bench --bin aoi-serve\",\n",
            "  \"config\": {{\"n_rsus\": {}, \"regions_per_rsu\": {}, \"slots\": {}, \"rate\": {}, ",
            "\"cache_policy\": \"{}\", \"service_policy\": \"{}\", \"workers\": {}}},\n",
            "  \"results\": {{\"requests\": {}, \"elapsed_seconds\": {:.6}, ",
            "\"requests_per_second\": {:.1}, \"hit_rate\": {:.4}, \"fresh_rate\": {:.4}, ",
            "\"stale_hits\": {}, \"misses\": {}, \"refreshes\": {}}}\n",
            "}}\n",
        ),
        scenario.n_rsus,
        scenario.regions_per_rsu,
        slots,
        rate,
        config.cache_policy.label(),
        config.service_policy.label(),
        config.workers,
        outcome.requests,
        elapsed,
        rps,
        outcome.hit_rate(),
        outcome.fresh_rate(),
        outcome.stale_hits,
        outcome.misses,
        outcome.refreshes.len(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliSpec {
        bin: "aoi-serve",
        about: "open-loop load generator + online serving engine (requests/second headline)",
        workers: true,
        out: true,
        resume: false,
        claim: false,
        horizon: true,
        batch: false,
        positional: None,
        extras: EXTRAS,
    }
    .parse()?;
    let slots = args.horizon.unwrap_or(2000);
    let rate: f64 = match args.extra("--rate") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|r: &f64| r.is_finite() && *r > 0.0)
            .ok_or("aoi-serve: --rate needs a positive number (try --help)")?,
        None => 4.0,
    };
    let seed: u64 = match args.extra("--seed") {
        Some(v) => v
            .parse()
            .map_err(|_| "aoi-serve: --seed needs an integer (try --help)")?,
        None => 42,
    };
    let scenario = CacheScenario::default();
    let window = match args.extra("--trace") {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("aoi-serve: open {path}: {e}"))?;
            RequestTrace::read_from(BufReader::new(file))?
        }
        None => generate(&scenario, slots, rate, seed)?,
    };
    if let Some(path) = args.extra("--record") {
        // lint:allow(atomic-persistence): user-requested CLI output, not a
        // campaign artifact — a torn file on crash is visible and rerunnable.
        let file = File::create(path).map_err(|e| format!("aoi-serve: create {path}: {e}"))?;
        let mut out = BufWriter::new(file);
        window.write_to(&mut out)?;
        out.flush()?;
    }
    let config = ServeConfig {
        scenario,
        cache_policy: CachePolicyKind::ValueIteration { gamma: 0.9 },
        service_policy: ServicePolicyKind::Lyapunov { v: 20.0 },
        serve_seed: seed,
        workers: args.workers.unwrap_or(0),
        ..ServeConfig::default()
    };
    println!(
        "aoi-serve: compiling {} policy tables for {} RSUs x {} contents ...",
        config.cache_policy.label(),
        scenario.n_rsus,
        scenario.regions_per_rsu
    );
    let mut engine = ServeEngine::new(config.clone())?;
    let watch = Stopwatch::start();
    let outcome = match &args.out {
        Some(dir) => engine.serve_recorded(
            &window,
            &TelemetrySpec {
                dir: dir.clone(),
                compression: args.compression,
            },
        )?,
        None => engine.serve(&window)?,
    };
    let elapsed = watch.elapsed_seconds();
    let rps = watch.per_second(outcome.requests);
    println!(
        "aoi-serve: served {} requests over {} slots x {} shards",
        outcome.requests,
        outcome.slots,
        engine.shard_count()
    );
    println!(
        "  answers: {} fresh + {} stale hits ({:.1}% hit rate, {:.1}% fresh), {} misses",
        outcome.fresh_hits,
        outcome.stale_hits,
        100.0 * outcome.hit_rate(),
        100.0 * outcome.fresh_rate(),
        outcome.misses
    );
    println!(
        "  MBS refreshes pushed (ordered hand-off): {}",
        outcome.refreshes.len()
    );
    println!("  wall time {elapsed:.3}s — {rps:.0} requests/second");
    if let Some(dir) = &args.out {
        println!("  telemetry artifacts under {}", dir.display());
    }
    if let Some(path) = args.extra("--json") {
        let json = headline_json(
            &scenario,
            &config,
            outcome.slots,
            rate,
            &outcome,
            elapsed,
            rps,
        );
        // lint:allow(atomic-persistence): user-requested CLI output, not a
        // campaign artifact — a torn file on crash is visible and rerunnable.
        let mut file = File::create(path).map_err(|e| format!("aoi-serve: create {path}: {e}"))?;
        file.write_all(json.as_bytes())?;
        println!("  headline written to {path}");
    }
    Ok(())
}
