//! Index of the experiment binaries in this crate.

fn main() {
    println!(
        "aoi-bench — experiment harness for the ICDCS 2022 AoI-caching reproduction

Paper artifacts:
  cargo run --release -p aoi-bench --bin fig1a        Fig. 1a: AoI traces + cumulative reward
  cargo run --release -p aoi-bench --bin fig1b        Fig. 1b: UV latency under 3 service policies
  cargo run --release -p aoi-bench --bin ensemble     Both figures as multi-seed mean ± CI ensembles

Extensions (ablations beyond the paper):
  cargo run --release -p aoi-bench --bin tab_policies Cache-policy comparison table
  cargo run --release -p aoi-bench --bin ext_v_sweep  Lyapunov V tradeoff curve
  cargo run --release -p aoi-bench --bin ext_w_sweep  Eq. 1 weight w tradeoff curve
  cargo run --release -p aoi-bench --bin ext_joint    Two-stage joint runs on the vanet substrate
  cargo run --release -p aoi-bench --bin ext_aoi_service  Eq. 4 AoI requirement via virtual queues
  cargo run --release -p aoi-bench --bin ext_scaling  Exact vs learning solver scaling ladder

Performance benches:
  cargo bench -p aoi-bench
"
    );
}
