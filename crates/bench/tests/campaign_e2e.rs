//! End-to-end campaign tests driving the **real binaries**: a worker
//! process killed mid-grid (via the `SIMKIT_FAULT` harness) must leave a
//! recoverable directory, a relaunched worker must finish the campaign,
//! and `aoi-artifacts merge`/`diff` must certify bit-identity with a cold
//! single-process run.
//!
//! Ignored by default (each test runs several child processes over the
//! full fig1a+fig1b ensemble presets); CI runs them in release with
//! `cargo test -p aoi-bench --release -- --ignored`.

use std::path::{Path, PathBuf};
use std::process::Command;

const ENSEMBLE: &str = env!("CARGO_BIN_EXE_ensemble");
const ARTIFACTS: &str = env!("CARGO_BIN_EXE_aoi-artifacts");

/// A unique scratch directory per call; removed by each test on success.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aoi-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Common flags: a small but real campaign (2 seeds, shortened horizon).
fn ensemble_args(out: &Path) -> Vec<String> {
    vec![
        "2".to_string(),
        "--horizon".to_string(),
        "60".to_string(),
        "--out".to_string(),
        out.display().to_string(),
    ]
}

fn run_ensemble(out: &Path, extra: &[&str], fault: Option<&str>) -> std::process::ExitStatus {
    let mut cmd = Command::new(ENSEMBLE);
    cmd.args(ensemble_args(out));
    cmd.args(extra);
    match fault {
        Some(spec) => cmd.env("SIMKIT_FAULT", spec),
        None => cmd.env_remove("SIMKIT_FAULT"),
    };
    let output = cmd.output().expect("spawn ensemble");
    if !output.status.success() {
        eprintln!(
            "--- ensemble stderr ---\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    output.status
}

fn artifacts_tool(args: &[&str]) -> std::process::ExitStatus {
    let output = Command::new(ARTIFACTS)
        .args(args)
        .output()
        .expect("spawn aoi-artifacts");
    println!(
        "aoi-artifacts {args:?}:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
    eprintln!("{}", String::from_utf8_lossy(&output.stderr));
    output.status
}

fn assert_diff_clean(a: &Path, b: &Path) {
    let status = artifacts_tool(&["diff", &a.display().to_string(), &b.display().to_string()]);
    assert!(
        status.success(),
        "directories must diff clean: {a:?} vs {b:?}"
    );
}

/// A worker SIGKILLed mid-grid (the fault harness aborts the process: no
/// destructors, exactly like `kill -9`) leaves stale leases and in-flight
/// temporaries behind. A relaunched worker takes the expired leases over,
/// finishes the campaign, and the directory is bit-identical to a cold
/// single-process run.
#[test]
#[ignore = "spawns several full-campaign child processes; run via --ignored (CI)"]
fn killed_worker_campaign_recovers_bit_identically() {
    let cold = scratch_dir("kill-cold");
    assert!(run_ensemble(&cold, &[], None).success());

    let out = scratch_dir("kill-out");
    // Doomed worker: aborts a few hundred samples in, mid-fig1a. Short
    // TTL so the relaunch takes its leases over quickly.
    let claim_flags = ["--resume", "--claim", "--lease-ttl-ms", "1000"];
    let doomed = run_ensemble(&out, &claim_flags, Some("kill:500"));
    assert!(!doomed.success(), "the doomed worker must die mid-grid");

    // Relaunch (same flags, no fault): takes over and finishes.
    assert!(run_ensemble(&out, &claim_flags, None).success());

    // No lease survives a completed campaign.
    for sub in ["fig1a", "fig1b"] {
        for entry in std::fs::read_dir(out.join(sub)).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().to_string();
            assert!(!name.ends_with(".lease"), "leftover lease {sub}/{name}");
        }
    }
    assert_diff_clean(&cold, &out);
    std::fs::remove_dir_all(&cold).unwrap();
    std::fs::remove_dir_all(&out).unwrap();
}

/// Disjoint partial directories (each worker kept only its own cells)
/// merge into a directory bit-identical to a cold run — ensembles
/// recomputed from the fused cells included.
#[test]
#[ignore = "spawns full-campaign child processes; run via --ignored (CI)"]
fn split_campaign_merges_bit_identically() {
    let cold = scratch_dir("merge-cold");
    assert!(run_ensemble(&cold, &[], None).success());

    // Split the cold run's cells into two disjoint partial directories,
    // alternating cells between "workers" (ensembles stay behind — each
    // partial dir holds only what its worker computed).
    let part_a = scratch_dir("merge-a");
    let part_b = scratch_dir("merge-b");
    let mut split = 0usize;
    for sub in ["fig1a", "fig1b"] {
        std::fs::create_dir_all(part_a.join(sub)).unwrap();
        std::fs::create_dir_all(part_b.join(sub)).unwrap();
        let mut cells: Vec<String> = std::fs::read_dir(cold.join(sub))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
            .filter(|n| n.starts_with("cell-"))
            .collect();
        cells.sort();
        for (k, name) in cells.iter().enumerate() {
            let target = if k % 2 == 0 { &part_a } else { &part_b };
            std::fs::copy(cold.join(sub).join(name), target.join(sub).join(name)).unwrap();
            split += 1;
        }
    }
    assert!(split >= 4, "the campaign must have cells to split");

    let merged = scratch_dir("merge-out");
    let status = artifacts_tool(&[
        "merge",
        &merged.display().to_string(),
        &part_a.display().to_string(),
        &part_b.display().to_string(),
    ]);
    assert!(status.success(), "merge must fuse the partial directories");
    assert_diff_clean(&cold, &merged);

    for dir in [cold, part_a, part_b, merged] {
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Merging directories from two *different* campaigns is a configuration
/// conflict, not a quiet wrong answer.
#[test]
#[ignore = "spawns full-campaign child processes; run via --ignored (CI)"]
fn merge_refuses_mismatched_campaigns() {
    let a = scratch_dir("mismatch-a");
    assert!(run_ensemble(&a, &[], None).success());
    let b = scratch_dir("mismatch-b");
    // Same grid shape, different horizon: every cell hash differs.
    let output = Command::new(ENSEMBLE)
        .args(["2", "--horizon", "50", "--out", &b.display().to_string()])
        .env_remove("SIMKIT_FAULT")
        .output()
        .expect("spawn ensemble");
    assert!(output.status.success());

    let merged = scratch_dir("mismatch-out");
    let status = artifacts_tool(&[
        "merge",
        &merged.display().to_string(),
        &a.display().to_string(),
        &b.display().to_string(),
    ]);
    assert_eq!(
        status.code(),
        Some(2),
        "config mismatch must be a hard error"
    );
    for dir in [a, b, merged] {
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
