//! Exhaustive crash-point sweep for the supervised campaign runner.
//!
//! The fault harness counts every artifact-write operation a campaign
//! performs ([`FaultSchedule::counting`]); the sweeps here then re-run the
//! campaign once per operation index `K in 0..N`, injecting a failure at
//! exactly that point:
//!
//! * **kill** — the worker process aborts at `K` (spawned as a child so
//!   the abort is real); a rescue worker must recover the directory to
//!   byte-identical-to-cold, with no torn artifact, leaked lease or
//!   silent gap;
//! * **fail-writes** — a latched write failure at `K` must surface
//!   *loudly* (quarantined cells in the report, or an error when the
//!   fault reaches the ensemble writes), and a relaunch must heal;
//! * **fail-write-once** — a transient failure at `K` must be absorbed
//!   by the retry budget: the campaign completes with no quarantine and
//!   byte-identical artifacts.
//!
//! Plus a quarantine end-to-end smoke driving the **real binaries**: a
//! poisoned `ensemble --claim` run must exit 3, `aoi-artifacts health`
//! must report the quarantined cells (exit 1), and a relaunch without the
//! poison must heal to bit-identity with a cold run.
//!
//! Ignored by default (the sweeps spawn one run per injection point); CI
//! runs them in release with `--ignored --test-threads 1` — the fault
//! harness and the poison hook are process-global, so these tests must
//! not run concurrently.

use aoi_cache::{CachePolicyKind, CacheScenario, ExperimentPlan};
use simkit::faults::{self, FaultKind, FaultSchedule};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

const ENSEMBLE: &str = env!("CARGO_BIN_EXE_ensemble");
const ARTIFACTS: &str = env!("CARGO_BIN_EXE_aoi-artifacts");

/// A unique scratch directory per call; removed by each test on success.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aoi-cp-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deliberately tiny grid (2 policies × 2 seeds, 12 slots) so the
/// operation count N — and with it the sweep — stays small.
fn tiny_cache() -> CacheScenario {
    CacheScenario {
        n_rsus: 1,
        regions_per_rsu: 2,
        age_cap: 4,
        max_age_min: 2,
        max_age_max: 3,
        horizon: 12,
        ..CacheScenario::default()
    }
}

fn plan(dir: &Path) -> ExperimentPlan {
    ExperimentPlan::cache(
        vec![tiny_cache()],
        vec![CachePolicyKind::Myopic, CachePolicyKind::Never],
    )
    .replicate_seeds(vec![5, 6])
    .artifact_dir(dir)
}

fn claim_plan(dir: &Path, worker: &str) -> ExperimentPlan {
    // Short TTL: the kill sweep's rescue workers wait out the doomed
    // worker's stale leases once per injection point, and the cells here
    // compute orders of magnitude faster than even this TTL.
    plan(dir)
        .resume(true)
        .claim(true)
        .worker_id(worker)
        .lease_ttl_ms(500)
}

/// Number of injection points a cold run of the sweep grid passes: a
/// counting dry run over the same workload every sweep iteration re-runs.
fn injection_points() -> u64 {
    let dir = scratch_dir("count");
    faults::inject_schedule(FaultSchedule::counting());
    plan(&dir).run_ensembles().unwrap();
    let n = faults::operations();
    faults::clear();
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(n > 0, "the sweep grid must write through the fault hook");
    n
}

/// Final-name artifact bytes under `dir` (telemetry, leases and
/// temporaries excluded) — the byte-identity currency of every sweep.
fn artifact_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter_map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            let is_artifact = (name.ends_with(".jsonl") || name.ends_with(".jsonl.z"))
                && !simkit::supervise::is_journal_name(&name)
                && !simkit::supervise::is_quarantine_name(&name);
            is_artifact.then(|| (name, std::fs::read(&path).unwrap()))
        })
        .collect()
}

/// Asserts the invariant that must hold after *any* fault, recovered or
/// not: every file under a final artifact name still verifies (torn
/// cells exist only as temporaries, if at all).
fn assert_no_torn_artifact(dir: &Path, what: &str) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if (name.ends_with(".jsonl") || name.ends_with(".jsonl.z"))
            && !simkit::supervise::is_journal_name(&name)
            && !simkit::supervise::is_quarantine_name(&name)
        {
            aoi_cache::persist::read_artifact(&path)
                .unwrap_or_else(|e| panic!("{what}: torn artifact under final name {name}: {e}"));
        }
    }
}

/// Asserts no lease file survives — the invariant of every *completed*
/// campaign pass. (An aborted worker's stale leases are legitimate until
/// a rescue worker takes them over.)
fn assert_leases_released(dir: &Path, what: &str) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().to_string();
        assert!(!name.ends_with(".lease"), "{what}: leaked lease {name}");
    }
}

/// Worker entry for the kill sweep: spawned by
/// `killed_worker_sweep_recovers_at_every_injection_point` with
/// `AOI_SWEEP_DIR` and a `SIMKIT_FAULT=kill:K` plan armed. A no-op when
/// run directly (CI's `--ignored` pass included).
#[test]
#[ignore = "kill-sweep worker entry; a no-op unless spawned by the sweep"]
fn kill_sweep_worker_entry() {
    let Ok(dir) = std::env::var("AOI_SWEEP_DIR") else {
        return;
    };
    faults::arm_from_env().unwrap();
    // The armed kill plan aborts this process mid-campaign; if K is past
    // the end of the op stream the run simply completes.
    let _ = claim_plan(Path::new(&dir), "doomed").run_ensembles_resumable();
}

#[test]
#[ignore = "spawns one child process per injection point; run via --ignored (CI)"]
fn killed_worker_sweep_recovers_at_every_injection_point() {
    let cold_dir = scratch_dir("kill-cold");
    let (cold, _) = plan(&cold_dir).run_ensembles_resumable().unwrap();
    let cold_bytes = artifact_bytes(&cold_dir);
    let n = injection_points();
    println!("kill sweep: {n} injection points");

    let me = std::env::current_exe().unwrap();
    for k in 0..n {
        let dir = scratch_dir(&format!("kill-{k}"));
        let status = Command::new(&me)
            .args(["kill_sweep_worker_entry", "--exact", "--ignored"])
            .env("AOI_SWEEP_DIR", &dir)
            .env("SIMKIT_FAULT", format!("kill:{k}"))
            .env_remove("AOI_POISON_CELL")
            .status()
            .expect("spawn kill-sweep worker");
        assert!(
            !status.success(),
            "K={k}: the doomed worker must abort mid-campaign"
        );
        assert_no_torn_artifact(&dir, &format!("K={k} post-crash"));

        // Rescue worker: takes over the dead worker's leases (if the
        // abort left any) and finishes the campaign bit-identically.
        let (recovered, report) = claim_plan(&dir, "rescue")
            .run_ensembles_resumable()
            .unwrap();
        assert_eq!(recovered, cold, "K={k}: {report}");
        assert!(report.quarantined.is_empty(), "K={k}: {report}");
        assert_eq!(
            artifact_bytes(&dir),
            cold_bytes,
            "K={k}: recovered artifact bytes must match the cold run"
        );
        assert_no_torn_artifact(&dir, &format!("K={k} post-recovery"));
        assert_leases_released(&dir, &format!("K={k} post-recovery"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&cold_dir).unwrap();
}

#[test]
#[ignore = "runs the campaign once per injection point; run via --ignored (CI)"]
fn latched_write_failure_is_loud_at_every_injection_point() {
    let cold_dir = scratch_dir("fw-cold");
    let (cold, _) = plan(&cold_dir).run_ensembles_resumable().unwrap();
    let cold_bytes = artifact_bytes(&cold_dir);
    let n = injection_points();
    println!("fail-writes sweep: {n} injection points");

    for k in 0..n {
        let dir = scratch_dir(&format!("fw-{k}"));
        faults::inject_schedule(FaultSchedule::at(k, FaultKind::FailWrites));
        let outcome = claim_plan(&dir, "doomed")
            .max_attempts(2)
            .run_ensembles_resumable();
        faults::clear();
        // Never a silent gap: either the campaign completed around
        // quarantined cells (reporting them), or the latched fault also
        // reached the ensemble writes and the run errored.
        match outcome {
            Ok((_, report)) => assert!(
                !report.quarantined.is_empty(),
                "K={k}: a latched write fault must quarantine cells: {report}"
            ),
            Err(e) => assert!(e.to_string().contains("injected"), "K={k}: {e}"),
        }
        assert_no_torn_artifact(&dir, &format!("K={k} post-fault"));
        assert_leases_released(&dir, &format!("K={k} post-fault"));

        let (recovered, report) = claim_plan(&dir, "rescue")
            .run_ensembles_resumable()
            .unwrap();
        assert_eq!(recovered, cold, "K={k}: {report}");
        assert!(report.quarantined.is_empty(), "K={k}: {report}");
        assert_eq!(artifact_bytes(&dir), cold_bytes, "K={k}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&cold_dir).unwrap();
}

#[test]
#[ignore = "runs the campaign once per injection point; run via --ignored (CI)"]
fn transient_write_failure_is_absorbed_at_every_injection_point() {
    let cold_dir = scratch_dir("fwo-cold");
    let (cold, _) = plan(&cold_dir).run_ensembles_resumable().unwrap();
    let cold_bytes = artifact_bytes(&cold_dir);
    let n = injection_points();
    println!("fail-write-once sweep: {n} injection points");

    for k in 0..n {
        let dir = scratch_dir(&format!("fwo-{k}"));
        faults::inject_schedule(FaultSchedule::at(k, FaultKind::FailWriteOnce));
        let outcome = claim_plan(&dir, "flaky")
            .max_attempts(2)
            .run_ensembles_resumable();
        faults::clear();
        match outcome {
            Ok((ensembles, report)) => {
                // The one failing write hit a cell: its retry succeeded
                // (the trigger consumes itself), nothing quarantined, and
                // the campaign is bit-identical to cold in one pass.
                assert!(
                    report.quarantined.is_empty(),
                    "K={k}: a transient failure must be absorbed by the retry budget: {report}"
                );
                assert!(
                    !report.attempts.is_empty(),
                    "K={k}: the absorbed failure must be accounted as a retry: {report}"
                );
                assert_eq!(ensembles, cold, "K={k}: {report}");
                assert_eq!(artifact_bytes(&dir), cold_bytes, "K={k}");
            }
            Err(e) => {
                // The one-shot landed in an ensemble write, where there is
                // no retry layer — loud, and a relaunch heals.
                assert!(e.to_string().contains("injected"), "K={k}: {e}");
                let (recovered, report) = claim_plan(&dir, "rescue")
                    .run_ensembles_resumable()
                    .unwrap();
                assert_eq!(recovered, cold, "K={k}: {report}");
                assert_eq!(artifact_bytes(&dir), cold_bytes, "K={k}");
            }
        }
        assert_no_torn_artifact(&dir, &format!("K={k}"));
        assert_leases_released(&dir, &format!("K={k}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&cold_dir).unwrap();
}

// --- quarantine end-to-end smoke (real binaries) ---------------------------

fn run_ensemble(out: &Path, extra: &[&str], poison: Option<&str>) -> std::process::ExitStatus {
    let mut cmd = Command::new(ENSEMBLE);
    cmd.args(["2", "--horizon", "60", "--out", &out.display().to_string()]);
    cmd.args(extra);
    cmd.env_remove("SIMKIT_FAULT");
    match poison {
        Some(cell) => cmd.env("AOI_POISON_CELL", cell),
        None => cmd.env_remove("AOI_POISON_CELL"),
    };
    let output = cmd.output().expect("spawn ensemble");
    eprintln!("{}", String::from_utf8_lossy(&output.stderr));
    output.status
}

fn artifacts_tool(args: &[&str]) -> (std::process::ExitStatus, String) {
    let output = Command::new(ARTIFACTS)
        .args(args)
        .output()
        .expect("spawn aoi-artifacts");
    let stdout = String::from_utf8_lossy(&output.stdout).to_string();
    println!("aoi-artifacts {args:?}:\n{stdout}");
    eprintln!("{}", String::from_utf8_lossy(&output.stderr));
    (output.status, stdout)
}

/// A campaign with one always-panicking cell (the `AOI_POISON_CELL` test
/// hook, honoured by the claim engine in any process) must finish with
/// exit 3, `aoi-artifacts health` must report the quarantine (exit 1),
/// and a relaunch without the poison must heal to bit-identity — after
/// which `health` is clean again (exit 0).
#[test]
#[ignore = "spawns full-campaign child processes; run via --ignored (CI)"]
fn poisoned_campaign_exits_3_health_reports_and_relaunch_heals() {
    let cold = scratch_dir("poison-cold");
    assert!(run_ensemble(&cold, &[], None).success());

    let out = scratch_dir("poison-out");
    let claim_flags = [
        "--resume",
        "--claim",
        "--lease-ttl-ms",
        "1000",
        "--max-attempts",
        "2",
    ];
    // Cell s0-r1-p0 exists in both the fig1a and fig1b grids, so both
    // campaigns quarantine one cell and the bin reports a degraded run.
    let status = run_ensemble(&out, &claim_flags, Some("s0-r1-p0"));
    assert_eq!(
        status.code(),
        Some(3),
        "a degraded campaign must exit with the quarantine status"
    );

    let (status, stdout) = artifacts_tool(&["health", &out.display().to_string()]);
    assert_eq!(status.code(), Some(1), "health must gate on quarantines");
    assert!(stdout.contains("quarantined"), "{stdout}");
    assert!(stdout.contains("poisoned by AOI_POISON_CELL"), "{stdout}");

    // Relaunch without the poison: the campaign heals bit-identically
    // and the post-mortem is clean (journals remain — markers do not).
    assert!(run_ensemble(&out, &claim_flags, None).success());
    let (status, stdout) = artifacts_tool(&["health", &out.display().to_string()]);
    assert!(
        status.success(),
        "a healed campaign reports clean: {stdout}"
    );
    assert!(stdout.contains("no quarantined cells"), "{stdout}");
    let (status, _) = artifacts_tool(&[
        "diff",
        &cold.display().to_string(),
        &out.display().to_string(),
    ]);
    assert!(status.success(), "healed campaign must diff clean vs cold");
    std::fs::remove_dir_all(&cold).unwrap();
    std::fs::remove_dir_all(&out).unwrap();
}
