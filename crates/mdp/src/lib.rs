//! # mdp — finite Markov decision process toolkit
//!
//! Tabular MDP models and solvers used by the AoI-caching reproduction:
//! the paper's cache-management stage ("AoI-Aware Markov Decision Policies
//! for Caching", ICDCS 2022) formulates content refreshing at road-side
//! units as a finite MDP; this crate provides the machinery to define and
//! solve such MDPs exactly (value/policy iteration, backward induction) or
//! approximately (Q-learning, SARSA).
//!
//! Conventions:
//!
//! * states are `0..n_states`, actions `0..n_actions`,
//! * **rewards are maximized**,
//! * transition rows are explicit probability distributions,
//! * empty rows mark invalid `(state, action)` pairs.
//!
//! ## Compile-then-solve
//!
//! Models describe their dynamics through the [`FiniteMdp::transitions`]
//! callback, but the sweep-based solvers never iterate against that
//! callback: every `solve` entry point first compiles the model into a
//! [`CompiledMdp`] — flat compressed-sparse-row transition arrays with
//! precomputed per-row expected rewards and a validity bitmap — and then
//! runs its fixed point on the flat arrays with zero heap allocation per
//! sweep. With the `parallel` feature (default) the per-state Bellman
//! backup fans out across a pool of scoped worker threads; sweeps are
//! Jacobi-style, so serial and parallel runs return bit-for-bit identical
//! values and policies.
//!
//! Solving the same model repeatedly (different discounts, horizons or
//! solver families) should compile once and call the `solve_compiled`
//! methods:
//!
//! ```
//! use mdp::{reference, CompiledMdp};
//! use mdp::solver::{BackwardInduction, ValueIteration};
//!
//! let (model, gamma) = reference::two_state();
//! let kernel = CompiledMdp::compile(&model)?;
//! let infinite = ValueIteration::new(gamma).solve_compiled(&kernel)?;
//! let finite = BackwardInduction::new(50).solve_compiled(&kernel)?;
//! assert_eq!(infinite.policy.action(0), finite.first_policy().action(0));
//! # Ok::<(), mdp::MdpError>(())
//! ```
//!
//! The original trait-callback implementations remain available as
//! `solve_callback` reference paths for differential tests and benchmarks.
//!
//! ## Example
//!
//! ```
//! use mdp::{TabularMdp, FiniteMdp};
//! use mdp::solver::ValueIteration;
//!
//! // Two-state "charge/discharge" toy: action 1 in state 0 invests
//! // (no reward, move to state 1); state 1 pays 1 forever.
//! let mdp = TabularMdp::builder(2, 2)
//!     .transition(0, 0, 0, 1.0, 0.0)
//!     .transition(0, 1, 1, 1.0, 0.0)
//!     .transition(1, 0, 1, 1.0, 1.0)
//!     .transition(1, 1, 1, 1.0, 1.0)
//!     .build()?;
//!
//! let outcome = ValueIteration::new(0.9).solve(&mdp)?;
//! assert!(outcome.converged);
//! assert_eq!(outcome.policy.action(0), 1);
//! # Ok::<(), mdp::MdpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod error;
mod model;
mod policy;
pub mod reference;
mod rollout;
pub mod solver;
mod space;

pub use compiled::CompiledMdp;
pub use error::MdpError;
pub use model::{FiniteMdp, FnMdp, TabularMdp, TabularMdpBuilder, Transition};
pub use policy::{EpsilonGreedy, Policy, QTable, TabularPolicy, UniformRandomPolicy};
pub use rollout::{Rollout, RolloutResult, Step};
pub use space::{ProductSpace, ProductSpaceIter};
