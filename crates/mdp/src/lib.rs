//! # mdp — finite Markov decision process toolkit
//!
//! Tabular MDP models and solvers used by the AoI-caching reproduction:
//! the paper's cache-management stage ("AoI-Aware Markov Decision Policies
//! for Caching", ICDCS 2022) formulates content refreshing at road-side
//! units as a finite MDP; this crate provides the machinery to define and
//! solve such MDPs exactly (value/policy iteration, backward induction) or
//! approximately (Q-learning, SARSA).
//!
//! Conventions:
//!
//! * states are `0..n_states`, actions `0..n_actions`,
//! * **rewards are maximized**,
//! * transition rows are explicit probability distributions,
//! * empty rows mark invalid `(state, action)` pairs.
//!
//! ## Example
//!
//! ```
//! use mdp::{TabularMdp, FiniteMdp};
//! use mdp::solver::ValueIteration;
//!
//! // Two-state "charge/discharge" toy: action 1 in state 0 invests
//! // (no reward, move to state 1); state 1 pays 1 forever.
//! let mdp = TabularMdp::builder(2, 2)
//!     .transition(0, 0, 0, 1.0, 0.0)
//!     .transition(0, 1, 1, 1.0, 0.0)
//!     .transition(1, 0, 1, 1.0, 1.0)
//!     .transition(1, 1, 1, 1.0, 1.0)
//!     .build()?;
//!
//! let outcome = ValueIteration::new(0.9).solve(&mdp)?;
//! assert!(outcome.converged);
//! assert_eq!(outcome.policy.action(0), 1);
//! # Ok::<(), mdp::MdpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod model;
mod policy;
pub mod reference;
mod rollout;
pub mod solver;
mod space;

pub use error::MdpError;
pub use model::{FiniteMdp, FnMdp, TabularMdp, TabularMdpBuilder, Transition};
pub use policy::{EpsilonGreedy, Policy, QTable, TabularPolicy, UniformRandomPolicy};
pub use rollout::{Rollout, RolloutResult, Step};
pub use space::{ProductSpace, ProductSpaceIter};
