//! Monte-Carlo policy rollouts on a finite MDP.

use crate::model::FiniteMdp;
use crate::policy::Policy;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// One step of a recorded trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// State before the action.
    pub state: usize,
    /// Action taken.
    pub action: usize,
    /// Reward collected.
    pub reward: f64,
    /// State after the transition.
    pub next: usize,
}

/// Outcome of a single rollout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RolloutResult {
    /// Undiscounted sum of rewards.
    pub total_reward: f64,
    /// Discounted return from the start state.
    pub discounted_return: f64,
    /// Visit count per state.
    pub visits: Vec<u64>,
    /// The full trajectory (empty if recording was disabled).
    pub trajectory: Vec<Step>,
}

/// Monte-Carlo rollout driver.
///
/// ```
/// use mdp::{reference, Rollout, TabularPolicy};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let (mdp, gamma) = reference::two_state();
/// let policy = TabularPolicy::new(vec![1, 0]);
/// let mut rng = StdRng::seed_from_u64(0);
/// let result = Rollout::new(100).gamma(gamma).run(&mdp, &policy, 0, &mut rng);
/// // After jumping to state 1 the policy collects reward every step.
/// assert!(result.total_reward >= 98.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rollout {
    /// Number of environment steps.
    pub steps: usize,
    /// Discount used for `discounted_return`.
    pub gamma: f64,
    /// Whether to record the full trajectory.
    pub record_trajectory: bool,
}

impl Rollout {
    /// Creates a driver for `steps` steps with `gamma = 1.0` and trajectory
    /// recording off.
    pub fn new(steps: usize) -> Self {
        Rollout {
            steps,
            gamma: 1.0,
            record_trajectory: false,
        }
    }

    /// Sets the discount factor used for the discounted return.
    #[must_use]
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Enables trajectory recording.
    #[must_use]
    pub fn record_trajectory(mut self, record: bool) -> Self {
        self.record_trajectory = record;
        self
    }

    /// Rolls the policy out from `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range or the policy selects an invalid
    /// action.
    pub fn run<M: FiniteMdp, P: Policy + ?Sized>(
        &self,
        mdp: &M,
        policy: &P,
        start: usize,
        rng: &mut dyn RngCore,
    ) -> RolloutResult {
        assert!(start < mdp.n_states(), "start state out of range");
        let mut state = start;
        let mut total = 0.0;
        let mut discounted = 0.0;
        let mut discount = 1.0;
        let mut visits = vec![0u64; mdp.n_states()];
        let mut trajectory = Vec::new();

        for _ in 0..self.steps {
            visits[state] += 1;
            let action = policy.decide(state, rng);
            let (next, reward) = mdp.sample(state, action, rng);
            total += reward;
            discounted += discount * reward;
            discount *= self.gamma;
            if self.record_trajectory {
                trajectory.push(Step {
                    state,
                    action,
                    reward,
                    next,
                });
            }
            state = next;
        }
        RolloutResult {
            total_reward: total,
            discounted_return: discounted,
            visits,
            trajectory,
        }
    }

    /// Mean discounted return over `episodes` rollouts from uniformly random
    /// start states.
    pub fn mean_return<M: FiniteMdp, P: Policy + ?Sized>(
        &self,
        mdp: &M,
        policy: &P,
        episodes: usize,
        rng: &mut dyn RngCore,
    ) -> f64 {
        assert!(episodes > 0, "need at least one episode");
        let mut sum = 0.0;
        for _ in 0..episodes {
            let start = rng.gen_range(0..mdp.n_states());
            sum += self.run(mdp, policy, start, rng).discounted_return;
        }
        sum / episodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{TabularPolicy, UniformRandomPolicy};
    use crate::reference;
    use crate::solver::ValueIteration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rollout_accumulates_reward() {
        let (mdp, _) = reference::two_state();
        let policy = TabularPolicy::new(vec![1, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        let r = Rollout::new(50).run(&mdp, &policy, 1, &mut rng);
        assert_eq!(r.total_reward, 50.0);
        assert_eq!(r.visits.iter().sum::<u64>(), 50);
    }

    #[test]
    fn trajectory_recording() {
        let (mdp, _) = reference::two_state();
        let policy = TabularPolicy::new(vec![1, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        let r = Rollout::new(5)
            .record_trajectory(true)
            .run(&mdp, &policy, 0, &mut rng);
        assert_eq!(r.trajectory.len(), 5);
        assert_eq!(r.trajectory[0].state, 0);
        assert_eq!(r.trajectory[0].action, 1);
        assert_eq!(r.trajectory[0].next, 1);
    }

    #[test]
    fn discounted_return_approximates_value() {
        let (mdp, gamma) = reference::two_state();
        let vi = ValueIteration::new(gamma).solve(&mdp).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // Deterministic MDP: a single long rollout equals the value.
        let r = Rollout::new(2_000)
            .gamma(gamma)
            .run(&mdp, &vi.policy, 1, &mut rng);
        assert!(
            (r.discounted_return - vi.values[1]).abs() < 1e-6,
            "{} vs {}",
            r.discounted_return,
            vi.values[1]
        );
    }

    #[test]
    fn optimal_beats_random_on_chain() {
        let (mdp, gamma) = reference::chain(8, 0.9);
        let vi = ValueIteration::new(gamma).solve(&mdp).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let driver = Rollout::new(200).gamma(gamma);
        let opt = driver.mean_return(&mdp, &vi.policy, 50, &mut rng);
        let rnd = driver.mean_return(&mdp, &UniformRandomPolicy::new(2), 50, &mut rng);
        assert!(opt > rnd, "optimal {opt} should beat random {rnd}");
    }

    #[test]
    #[should_panic(expected = "start state out of range")]
    fn bad_start_panics() {
        let (mdp, _) = reference::two_state();
        let policy = TabularPolicy::new(vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Rollout::new(1).run(&mdp, &policy, 99, &mut rng);
    }
}
