//! Mixed-radix product state spaces.
//!
//! The AoI-caching MDP's state is a vector of per-content ages (each in
//! `1..=A_cap`, stored 0-based) optionally crossed with a popularity phase.
//! [`ProductSpace`] provides the bijection between such coordinate vectors
//! and flat `usize` state indices used by the solvers.

use serde::{Deserialize, Serialize};

/// A mixed-radix product space `D_0 × D_1 × … × D_{n-1}` with a bijective
/// mapping onto `0..len()`.
///
/// The first dimension varies slowest (big-endian digit order), so indices
/// enumerate lexicographically over coordinates.
///
/// ```
/// use mdp::ProductSpace;
/// let space = ProductSpace::new(vec![3, 4]).unwrap();
/// assert_eq!(space.len(), 12);
/// let idx = space.encode(&[2, 1]).unwrap();
/// assert_eq!(idx, 2 * 4 + 1);
/// assert_eq!(space.decode(idx), vec![2, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductSpace {
    dims: Vec<usize>,
    len: usize,
}

impl ProductSpace {
    /// Creates a product space from per-dimension cardinalities.
    ///
    /// Returns `None` if any dimension is zero or the total size overflows
    /// `usize`.
    pub fn new(dims: Vec<usize>) -> Option<Self> {
        if dims.contains(&0) {
            return None;
        }
        let mut len: usize = 1;
        for &d in &dims {
            len = len.checked_mul(d)?;
        }
        Some(ProductSpace { dims, len })
    }

    /// Per-dimension cardinalities.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of points in the space.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the space is empty (only possible for zero dimensions... it
    /// never is: a zero-dimensional space has exactly one point).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encodes a coordinate vector into a flat index.
    ///
    /// Returns `None` if the coordinate count or any coordinate is out of
    /// range.
    pub fn encode(&self, coords: &[usize]) -> Option<usize> {
        if coords.len() != self.dims.len() {
            return None;
        }
        let mut idx = 0usize;
        for (c, d) in coords.iter().zip(&self.dims) {
            if c >= d {
                return None;
            }
            idx = idx * d + c;
        }
        Some(idx)
    }

    /// Encodes a coordinate *stream* into a flat index without touching the
    /// heap — the no-alloc counterpart of [`encode`](ProductSpace::encode)
    /// for hot loops whose coordinates live in another representation (the
    /// cache simulators encode per-content ages every slot without first
    /// materializing a `Vec<usize>`).
    ///
    /// Returns `None` if the stream yields the wrong number of coordinates
    /// or any coordinate is out of range.
    pub fn encode_iter(&self, coords: impl IntoIterator<Item = usize>) -> Option<usize> {
        let mut idx = 0usize;
        let mut n = 0usize;
        for c in coords {
            let d = *self.dims.get(n)?;
            if c >= d {
                return None;
            }
            idx = idx * d + c;
            n += 1;
        }
        (n == self.dims.len()).then_some(idx)
    }

    /// Decodes a flat index into a coordinate vector.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn decode(&self, index: usize) -> Vec<usize> {
        let mut coords = vec![0; self.dims.len()];
        self.decode_into(index, &mut coords);
        coords
    }

    /// Decodes into a caller-provided buffer to avoid allocation in hot
    /// loops.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()` or `out.len() != n_dims()`.
    pub fn decode_into(&self, index: usize, out: &mut [usize]) {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        assert_eq!(out.len(), self.dims.len(), "buffer dimension mismatch");
        let mut rem = index;
        for i in (0..self.dims.len()).rev() {
            out[i] = rem % self.dims[i];
            rem /= self.dims[i];
        }
    }

    /// Iterates all coordinate vectors in index order.
    pub fn iter(&self) -> ProductSpaceIter<'_> {
        ProductSpaceIter {
            space: self,
            next: 0,
        }
    }
}

/// Iterator over all points of a [`ProductSpace`] in index order.
#[derive(Debug)]
pub struct ProductSpaceIter<'a> {
    space: &'a ProductSpace,
    next: usize,
}

impl Iterator for ProductSpaceIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.next >= self.space.len {
            return None;
        }
        let coords = self.space.decode(self.next);
        self.next += 1;
        Some(coords)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.space.len - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ProductSpaceIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let space = ProductSpace::new(vec![2, 3, 5]).unwrap();
        assert_eq!(space.len(), 30);
        for idx in 0..space.len() {
            let coords = space.decode(idx);
            assert_eq!(space.encode(&coords), Some(idx));
        }
    }

    #[test]
    fn lexicographic_order() {
        let space = ProductSpace::new(vec![2, 2]).unwrap();
        let all: Vec<Vec<usize>> = space.iter().collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn rejects_zero_dims_and_overflow() {
        assert!(ProductSpace::new(vec![3, 0]).is_none());
        assert!(ProductSpace::new(vec![usize::MAX, 2]).is_none());
    }

    #[test]
    fn encode_rejects_out_of_range() {
        let space = ProductSpace::new(vec![2, 2]).unwrap();
        assert_eq!(space.encode(&[2, 0]), None);
        assert_eq!(space.encode(&[0]), None);
        assert_eq!(space.encode(&[0, 0, 0]), None);
    }

    #[test]
    fn encode_iter_matches_encode() {
        let space = ProductSpace::new(vec![2, 3, 5]).unwrap();
        for idx in 0..space.len() {
            let coords = space.decode(idx);
            assert_eq!(space.encode_iter(coords.iter().copied()), Some(idx));
        }
        // Same rejections as the slice path.
        assert_eq!(space.encode_iter([2, 0, 0]), None);
        assert_eq!(space.encode_iter([0, 0]), None);
        assert_eq!(space.encode_iter([0, 0, 0, 0]), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_out_of_range_panics() {
        let space = ProductSpace::new(vec![2]).unwrap();
        let _ = space.decode(2);
    }

    #[test]
    fn zero_dimensional_space_has_one_point() {
        let space = ProductSpace::new(vec![]).unwrap();
        assert_eq!(space.len(), 1);
        assert_eq!(space.encode(&[]), Some(0));
        assert_eq!(space.decode(0), Vec::<usize>::new());
    }

    #[test]
    fn decode_into_avoids_alloc() {
        let space = ProductSpace::new(vec![4, 4]).unwrap();
        let mut buf = [0usize; 2];
        space.decode_into(7, &mut buf);
        assert_eq!(buf, [1, 3]);
    }

    #[test]
    fn iterator_is_exact_size() {
        let space = ProductSpace::new(vec![3, 3]).unwrap();
        let it = space.iter();
        assert_eq!(it.len(), 9);
        assert_eq!(it.count(), 9);
    }
}
