//! Finite-MDP model traits and tabular/implicit implementations.

use crate::MdpError;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// One outgoing transition of a `(state, action)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Destination state index.
    pub next: usize,
    /// Probability of this transition (transitions of one `(s, a)` row sum
    /// to 1).
    pub probability: f64,
    /// Immediate reward collected on this transition.
    pub reward: f64,
}

impl Transition {
    /// Convenience constructor.
    pub fn new(next: usize, probability: f64, reward: f64) -> Self {
        Transition {
            next,
            probability,
            reward,
        }
    }
}

/// A finite Markov decision process with explicit transition distributions.
///
/// States are `0..n_states()`, actions `0..n_actions()`. The convention
/// throughout this workspace is **reward maximization** (the paper's Eq. 1
/// utility is maximized).
///
/// Implementors fill a caller-provided buffer in [`transitions`] so that hot
/// solver loops do not allocate; the buffer is cleared by the callee.
///
/// [`transitions`]: FiniteMdp::transitions
pub trait FiniteMdp {
    /// Number of states.
    fn n_states(&self) -> usize;

    /// Number of actions (the full action alphabet; use
    /// [`is_action_valid`](FiniteMdp::is_action_valid) for per-state
    /// restrictions).
    fn n_actions(&self) -> usize;

    /// Writes the transition distribution of `(state, action)` into `out`
    /// (clearing it first). Rows of invalid actions may be empty.
    fn transitions(&self, state: usize, action: usize, out: &mut Vec<Transition>);

    /// Whether `action` may be taken in `state`. Defaults to always valid.
    fn is_action_valid(&self, _state: usize, _action: usize) -> bool {
        true
    }

    /// Expected immediate reward of `(state, action)`.
    ///
    /// The default routes through a thread-local row buffer so learner and
    /// rollout loops calling it per step do not allocate; implementors with
    /// materialized rows ([`TabularMdp`], [`CompiledMdp`](crate::CompiledMdp))
    /// override it to read their storage directly.
    fn expected_reward(&self, state: usize, action: usize) -> f64 {
        with_row_buf(|buf| {
            self.transitions(state, action, buf);
            buf.iter().map(|t| t.probability * t.reward).sum()
        })
    }

    /// Samples `(next_state, reward)` from the transition distribution.
    ///
    /// The default routes through a thread-local row buffer (no per-call
    /// allocation); [`CompiledMdp`](crate::CompiledMdp) samples straight
    /// from its CSR rows.
    ///
    /// # Panics
    ///
    /// Panics if the `(state, action)` row is empty (invalid action).
    fn sample(&self, state: usize, action: usize, rng: &mut dyn RngCore) -> (usize, f64) {
        with_row_buf(|buf| {
            self.transitions(state, action, buf);
            sample_from(buf, rng)
        })
    }
}

thread_local! {
    /// Reusable transition-row buffer backing the default `expected_reward`
    /// and `sample` implementations.
    static ROW_BUF: std::cell::RefCell<Vec<Transition>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with the thread-local row buffer, falling back to a fresh
/// buffer on re-entrant use (a `transitions` implementation calling back
/// into a default trait method).
fn with_row_buf<R>(f: impl FnOnce(&mut Vec<Transition>) -> R) -> R {
    ROW_BUF.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => f(&mut buf),
        Err(_) => f(&mut Vec::new()),
    })
}

/// Samples a transition from an explicit distribution row.
///
/// # Panics
///
/// Panics if `row` is empty.
pub(crate) fn sample_from(row: &[Transition], rng: &mut dyn RngCore) -> (usize, f64) {
    assert!(
        !row.is_empty(),
        "cannot sample from an empty transition row"
    );
    let u: f64 = rand::Rng::gen::<f64>(rng);
    let mut acc = 0.0;
    for t in row {
        acc += t.probability;
        if u < acc {
            return (t.next, t.reward);
        }
    }
    // Floating-point slack: fall back to the last transition.
    // lint:allow(panic-hygiene): the caller just iterated this row, and rows
    // are validated non-empty at build().
    let last = row.last().expect("non-empty");
    (last.next, last.reward)
}

/// Dense tabular MDP with explicitly stored transition rows.
///
/// Built through [`TabularMdpBuilder`], which validates that every row is a
/// probability distribution.
///
/// ```
/// use mdp::{TabularMdp, FiniteMdp};
/// // A 2-state toggle: action 0 stays (reward 0), action 1 toggles (reward 1).
/// let mdp = TabularMdp::builder(2, 2)
///     .transition(0, 0, 0, 1.0, 0.0)
///     .transition(0, 1, 1, 1.0, 1.0)
///     .transition(1, 0, 1, 1.0, 0.0)
///     .transition(1, 1, 0, 1.0, 1.0)
///     .build()
///     .unwrap();
/// assert_eq!(mdp.n_states(), 2);
/// assert_eq!(mdp.expected_reward(0, 1), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TabularMdp {
    n_states: usize,
    n_actions: usize,
    /// Row-major `[state][action]` transition lists.
    rows: Vec<Vec<Transition>>,
}

impl TabularMdp {
    /// Starts building a tabular MDP with the given state/action counts.
    pub fn builder(n_states: usize, n_actions: usize) -> TabularMdpBuilder {
        TabularMdpBuilder {
            n_states,
            n_actions,
            rows: vec![Vec::new(); n_states * n_actions],
        }
    }

    fn row(&self, state: usize, action: usize) -> &[Transition] {
        &self.rows[state * self.n_actions + action]
    }
}

impl FiniteMdp for TabularMdp {
    fn n_states(&self) -> usize {
        self.n_states
    }

    fn n_actions(&self) -> usize {
        self.n_actions
    }

    fn transitions(&self, state: usize, action: usize, out: &mut Vec<Transition>) {
        out.clear();
        out.extend_from_slice(self.row(state, action));
    }

    fn is_action_valid(&self, state: usize, action: usize) -> bool {
        !self.row(state, action).is_empty()
    }

    fn expected_reward(&self, state: usize, action: usize) -> f64 {
        self.row(state, action)
            .iter()
            .map(|t| t.probability * t.reward)
            .sum()
    }

    fn sample(&self, state: usize, action: usize, rng: &mut dyn RngCore) -> (usize, f64) {
        sample_from(self.row(state, action), rng)
    }
}

/// Incremental builder for [`TabularMdp`].
#[derive(Debug, Clone)]
pub struct TabularMdpBuilder {
    n_states: usize,
    n_actions: usize,
    rows: Vec<Vec<Transition>>,
}

impl TabularMdpBuilder {
    /// Adds one transition `(state, action) → next` with the given
    /// probability and reward.
    ///
    /// # Panics
    ///
    /// Panics if `state`/`action` are out of range (the destination state is
    /// validated at [`build`](Self::build) time instead, to keep chained
    /// construction ergonomic).
    #[must_use]
    pub fn transition(
        mut self,
        state: usize,
        action: usize,
        next: usize,
        probability: f64,
        reward: f64,
    ) -> Self {
        assert!(state < self.n_states, "state out of range");
        assert!(action < self.n_actions, "action out of range");
        self.rows[state * self.n_actions + action].push(Transition::new(next, probability, reward));
        self
    }

    /// Validates all rows and produces the model.
    ///
    /// # Errors
    ///
    /// * [`MdpError::EmptyModel`] if there are no states or actions.
    /// * [`MdpError::NonFiniteEntry`] for NaN/infinite probabilities or
    ///   rewards, or negative probabilities.
    /// * [`MdpError::StateOutOfRange`] if a destination state is invalid.
    /// * [`MdpError::BadDistribution`] if a non-empty row does not sum to 1.
    ///
    /// Rows that are entirely empty are allowed and mark invalid actions,
    /// but every state must have at least one valid action.
    pub fn build(self) -> Result<TabularMdp, MdpError> {
        if self.n_states == 0 || self.n_actions == 0 {
            return Err(MdpError::EmptyModel);
        }
        for s in 0..self.n_states {
            let mut any_valid = false;
            for a in 0..self.n_actions {
                let row = &self.rows[s * self.n_actions + a];
                if row.is_empty() {
                    continue;
                }
                any_valid = true;
                let mut mass = 0.0;
                for t in row {
                    if !t.probability.is_finite() || !t.reward.is_finite() || t.probability < 0.0 {
                        return Err(MdpError::NonFiniteEntry {
                            state: s,
                            action: a,
                        });
                    }
                    if t.next >= self.n_states {
                        return Err(MdpError::StateOutOfRange {
                            state: t.next,
                            n_states: self.n_states,
                        });
                    }
                    mass += t.probability;
                }
                if (mass - 1.0).abs() > 1e-9 {
                    return Err(MdpError::BadDistribution {
                        state: s,
                        action: a,
                        mass,
                    });
                }
            }
            if !any_valid {
                return Err(MdpError::BadDistribution {
                    state: s,
                    action: 0,
                    mass: 0.0,
                });
            }
        }
        Ok(TabularMdp {
            n_states: self.n_states,
            n_actions: self.n_actions,
            rows: self.rows,
        })
    }
}

/// An implicit MDP defined by a transition closure — used when materializing
/// every row up-front would be wasteful (e.g. the factored AoI cache MDP,
/// whose rows are computed from age vectors on the fly).
///
/// ```
/// use mdp::{FnMdp, FiniteMdp, Transition};
/// // Deterministic cycle over 3 states, reward 1 on wrap-around.
/// let mdp = FnMdp::new(3, 1, |s, _a, out| {
///     let next = (s + 1) % 3;
///     out.push(Transition::new(next, 1.0, if next == 0 { 1.0 } else { 0.0 }));
/// });
/// assert_eq!(mdp.expected_reward(2, 0), 1.0);
/// ```
pub struct FnMdp<F> {
    n_states: usize,
    n_actions: usize,
    transition_fn: F,
}

impl<F> FnMdp<F>
where
    F: Fn(usize, usize, &mut Vec<Transition>),
{
    /// Creates an implicit MDP. The closure must push a valid probability
    /// distribution (or nothing, for invalid actions) into the buffer; the
    /// buffer is already cleared when the closure runs.
    pub fn new(n_states: usize, n_actions: usize, transition_fn: F) -> Self {
        FnMdp {
            n_states,
            n_actions,
            transition_fn,
        }
    }
}

impl<F> std::fmt::Debug for FnMdp<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnMdp")
            .field("n_states", &self.n_states)
            .field("n_actions", &self.n_actions)
            .finish_non_exhaustive()
    }
}

impl<F> FiniteMdp for FnMdp<F>
where
    F: Fn(usize, usize, &mut Vec<Transition>),
{
    fn n_states(&self) -> usize {
        self.n_states
    }

    fn n_actions(&self) -> usize {
        self.n_actions
    }

    fn transitions(&self, state: usize, action: usize, out: &mut Vec<Transition>) {
        out.clear();
        (self.transition_fn)(state, action, out);
    }
}

impl<M: FiniteMdp + ?Sized> FiniteMdp for &M {
    fn n_states(&self) -> usize {
        (**self).n_states()
    }
    fn n_actions(&self) -> usize {
        (**self).n_actions()
    }
    fn transitions(&self, state: usize, action: usize, out: &mut Vec<Transition>) {
        (**self).transitions(state, action, out);
    }
    fn is_action_valid(&self, state: usize, action: usize) -> bool {
        (**self).is_action_valid(state, action)
    }
    fn expected_reward(&self, state: usize, action: usize) -> f64 {
        (**self).expected_reward(state, action)
    }
    fn sample(&self, state: usize, action: usize, rng: &mut dyn RngCore) -> (usize, f64) {
        (**self).sample(state, action, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toggle() -> TabularMdp {
        TabularMdp::builder(2, 2)
            .transition(0, 0, 0, 1.0, 0.0)
            .transition(0, 1, 1, 1.0, 1.0)
            .transition(1, 0, 1, 1.0, 0.0)
            .transition(1, 1, 0, 1.0, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_accepts_valid_model() {
        let m = toggle();
        assert_eq!(m.n_states(), 2);
        assert_eq!(m.n_actions(), 2);
        let mut buf = Vec::new();
        m.transitions(0, 1, &mut buf);
        assert_eq!(buf, vec![Transition::new(1, 1.0, 1.0)]);
    }

    #[test]
    fn builder_rejects_bad_mass() {
        let err = TabularMdp::builder(1, 1)
            .transition(0, 0, 0, 0.5, 0.0)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, MdpError::BadDistribution { mass, .. } if (mass - 0.5).abs() < 1e-12)
        );
    }

    #[test]
    fn builder_rejects_bad_destination() {
        let err = TabularMdp::builder(1, 1)
            .transition(0, 0, 5, 1.0, 0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, MdpError::StateOutOfRange { state: 5, .. }));
    }

    #[test]
    fn builder_rejects_non_finite() {
        let err = TabularMdp::builder(1, 1)
            .transition(0, 0, 0, f64::NAN, 0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, MdpError::NonFiniteEntry { .. }));

        let err = TabularMdp::builder(1, 1)
            .transition(0, 0, 0, 1.0, f64::INFINITY)
            .build()
            .unwrap_err();
        assert!(matches!(err, MdpError::NonFiniteEntry { .. }));
    }

    #[test]
    fn builder_rejects_negative_probability() {
        let err = TabularMdp::builder(1, 1)
            .transition(0, 0, 0, -0.5, 0.0)
            .transition(0, 0, 0, 1.5, 0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, MdpError::NonFiniteEntry { .. }));
    }

    #[test]
    fn builder_rejects_empty_model_and_stateless_rows() {
        assert!(matches!(
            TabularMdp::builder(0, 1).build(),
            Err(MdpError::EmptyModel)
        ));
        // State 1 has no valid action at all.
        let err = TabularMdp::builder(2, 1)
            .transition(0, 0, 0, 1.0, 0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, MdpError::BadDistribution { state: 1, .. }));
    }

    #[test]
    fn empty_rows_mark_invalid_actions() {
        let m = TabularMdp::builder(1, 2)
            .transition(0, 0, 0, 1.0, 0.0)
            .build()
            .unwrap();
        assert!(m.is_action_valid(0, 0));
        assert!(!m.is_action_valid(0, 1));
    }

    #[test]
    fn expected_reward_weights_by_probability() {
        let m = TabularMdp::builder(2, 1)
            .transition(0, 0, 0, 0.25, 4.0)
            .transition(0, 0, 1, 0.75, 0.0)
            .transition(1, 0, 1, 1.0, 0.0)
            .build()
            .unwrap();
        assert!((m.expected_reward(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_distribution() {
        let m = TabularMdp::builder(3, 1)
            .transition(0, 0, 1, 0.2, 0.0)
            .transition(0, 0, 2, 0.8, 1.0)
            .transition(1, 0, 1, 1.0, 0.0)
            .transition(2, 0, 2, 1.0, 0.0)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut to2 = 0;
        let n = 20_000;
        for _ in 0..n {
            let (next, _) = m.sample(0, 0, &mut rng);
            if next == 2 {
                to2 += 1;
            }
        }
        let frac = to2 as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "frac was {frac}");
    }

    #[test]
    fn fn_mdp_delegates() {
        let m = FnMdp::new(3, 1, |s, _a, out| {
            out.push(Transition::new((s + 1) % 3, 1.0, s as f64));
        });
        assert_eq!(m.n_states(), 3);
        let mut buf = Vec::new();
        m.transitions(2, 0, &mut buf);
        assert_eq!(buf[0].next, 0);
        assert_eq!(m.expected_reward(1, 0), 1.0);
        let dbg = format!("{m:?}");
        assert!(dbg.contains("FnMdp"));
    }

    #[test]
    fn reference_impl_forwards() {
        let m = toggle();
        let r = &m;
        assert_eq!(FiniteMdp::n_states(&r), 2);
        assert_eq!(r.expected_reward(0, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty transition row")]
    fn sampling_empty_row_panics() {
        let m = FnMdp::new(1, 1, |_s, _a, _out| {});
        let mut rng = StdRng::seed_from_u64(0);
        let _ = m.sample(0, 0, &mut rng);
    }
}
