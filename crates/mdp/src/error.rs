//! Error type for MDP model construction and solving.

use std::error::Error;
use std::fmt;

/// Errors produced when building or solving an MDP.
#[derive(Debug, Clone, PartialEq)]
pub enum MdpError {
    /// A transition distribution does not sum to 1 (within tolerance).
    BadDistribution {
        /// State index of the offending row.
        state: usize,
        /// Action index of the offending row.
        action: usize,
        /// The actual probability mass found.
        mass: f64,
    },
    /// A transition references a state outside `0..n_states`.
    StateOutOfRange {
        /// The offending state index.
        state: usize,
        /// The number of states in the model.
        n_states: usize,
    },
    /// A probability or reward was NaN/infinite or a probability was negative.
    NonFiniteEntry {
        /// State index of the offending row.
        state: usize,
        /// Action index of the offending row.
        action: usize,
    },
    /// The model has no states or no actions.
    EmptyModel,
    /// A solver parameter was outside its valid range.
    BadParameter {
        /// Parameter name.
        what: &'static str,
        /// Human-readable valid range.
        valid: &'static str,
    },
    /// An iterative solver hit its iteration cap before reaching tolerance.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Residual when the solver gave up.
        residual: f64,
    },
}

impl fmt::Display for MdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdpError::BadDistribution {
                state,
                action,
                mass,
            } => write!(
                f,
                "transition probabilities for state {state}, action {action} sum to {mass}, expected 1"
            ),
            MdpError::StateOutOfRange { state, n_states } => {
                write!(f, "state {state} out of range (model has {n_states} states)")
            }
            MdpError::NonFiniteEntry { state, action } => write!(
                f,
                "non-finite probability or reward at state {state}, action {action}"
            ),
            MdpError::EmptyModel => write!(f, "model must have at least one state and one action"),
            MdpError::BadParameter { what, valid } => {
                write!(f, "{what} out of range (expected {valid})")
            }
            MdpError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl Error for MdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MdpError::BadDistribution {
            state: 3,
            action: 1,
            mass: 0.5,
        };
        assert!(e.to_string().contains("state 3"));
        assert!(e.to_string().contains("0.5"));

        let e = MdpError::NotConverged {
            iterations: 10,
            residual: 0.25,
        };
        assert!(e.to_string().contains("10 iterations"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MdpError>();
    }
}
