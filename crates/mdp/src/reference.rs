//! Reference MDPs with known solutions, used by tests and benches.

use crate::model::{TabularMdp, Transition};

/// Action index that moves forward in [`chain`].
pub const CHAIN_FORWARD: usize = 1;

/// A two-state MDP with a closed-form optimal solution.
///
/// * State 0: action 0 stays (reward 0), action 1 moves to state 1 (reward 0).
/// * State 1: both actions stay in state 1 and collect reward 1.
///
/// With discount `γ`, `V*(1) = 1/(1−γ)` and `V*(0) = γ·V*(1)`; the optimal
/// action in state 0 is `1`.
///
/// Returns `(mdp, gamma)` with `gamma = 0.9`.
pub fn two_state() -> (TabularMdp, f64) {
    let mdp = TabularMdp::builder(2, 2)
        .transition(0, 0, 0, 1.0, 0.0)
        .transition(0, 1, 1, 1.0, 0.0)
        .transition(1, 0, 1, 1.0, 1.0)
        .transition(1, 1, 1, 1.0, 1.0)
        .build()
        // lint:allow(panic-hygiene): constant model, validated by its own tests.
        .expect("two_state reference model is valid");
    (mdp, 0.9)
}

/// A stochastic chain walk of `n ≥ 2` states.
///
/// Action [`CHAIN_FORWARD`] moves right with probability `p_forward` (slips
/// in place otherwise); action 0 moves left deterministically. Reaching the
/// right end collects reward 1 and the walker stays there collecting 1 per
/// slot; everything else costs 0. The unique optimal policy walks forward
/// everywhere.
///
/// Returns `(mdp, gamma)` with `gamma = 0.95`.
///
/// # Panics
///
/// Panics if `n < 2` or `p_forward ∉ (0, 1]`.
pub fn chain(n: usize, p_forward: f64) -> (TabularMdp, f64) {
    assert!(n >= 2, "chain needs at least 2 states");
    assert!(
        p_forward > 0.0 && p_forward <= 1.0,
        "p_forward must be in (0, 1]"
    );
    let mut b = TabularMdp::builder(n, 2);
    for s in 0..n {
        // Action 0: move left (or stay at the left wall).
        let left = s.saturating_sub(1);
        b = b.transition(s, 0, left, 1.0, 0.0);
        // Action 1: move right with p_forward, slip in place otherwise.
        if s == n - 1 {
            b = b.transition(s, 1, s, 1.0, 1.0);
        } else {
            let right = s + 1;
            let reward = if right == n - 1 { 1.0 } else { 0.0 };
            b = b.transition(s, 1, right, p_forward, reward);
            if p_forward < 1.0 {
                b = b.transition(s, 1, s, 1.0 - p_forward, 0.0);
            }
        }
    }
    (mdp_or_panic(b), 0.95)
}

/// A `w × h` gridworld with slip noise.
///
/// Actions 0–3 = up/down/left/right. Each move succeeds with probability
/// `1 − slip` and slides to one of the two perpendicular neighbours with
/// probability `slip/2` each (bumping a wall stays in place). Entering the
/// goal cell (top-right corner) collects reward 1 and teleports back to the
/// start (bottom-left corner); every step costs 0.01.
///
/// Returns `(mdp, gamma)` with `gamma = 0.95`. States are `y * w + x`.
///
/// # Panics
///
/// Panics if `w < 2`, `h < 2` or `slip ∉ [0, 1)`.
pub fn gridworld(w: usize, h: usize, slip: f64) -> (TabularMdp, f64) {
    assert!(w >= 2 && h >= 2, "gridworld needs at least 2x2 cells");
    assert!((0.0..1.0).contains(&slip), "slip must be in [0, 1)");
    let n = w * h;
    let goal = w - 1; // top-right at y=0
    let start = (h - 1) * w; // bottom-left
    let step = |x: usize, y: usize, a: usize| -> (usize, usize) {
        match a {
            0 => (x, y.saturating_sub(1)),
            1 => (x, (y + 1).min(h - 1)),
            2 => (x.saturating_sub(1), y),
            _ => ((x + 1).min(w - 1), y),
        }
    };
    let perpendicular = |a: usize| -> [usize; 2] {
        if a < 2 {
            [2, 3]
        } else {
            [0, 1]
        }
    };
    let mut b = TabularMdp::builder(n, 4);
    for y in 0..h {
        for x in 0..w {
            let s = y * w + x;
            for a in 0..4 {
                let mut outcomes: Vec<(usize, f64)> = Vec::new();
                let (nx, ny) = step(x, y, a);
                outcomes.push((ny * w + nx, 1.0 - slip));
                for pa in perpendicular(a) {
                    let (px, py) = step(x, y, pa);
                    outcomes.push((py * w + px, slip / 2.0));
                }
                // Merge duplicate destinations (wall bumps).
                outcomes.sort_by_key(|&(d, _)| d);
                outcomes.dedup_by(|b, a| {
                    if a.0 == b.0 {
                        a.1 += b.1;
                        true
                    } else {
                        false
                    }
                });
                for (dest, p) in outcomes {
                    if p <= 0.0 {
                        continue;
                    }
                    let (dest, reward) = if dest == goal {
                        (start, 1.0 - 0.01)
                    } else {
                        (dest, -0.01)
                    };
                    b = b.transition(s, a, dest, p, reward);
                }
            }
        }
    }
    (mdp_or_panic(b), 0.95)
}

fn mdp_or_panic(b: crate::model::TabularMdpBuilder) -> TabularMdp {
    match b.build() {
        Ok(m) => m,
        // lint:allow(panic-hygiene): reference models are compile-time constants;
        // a build failure is a programming error in this module, not a runtime one.
        Err(e) => panic!("reference model construction failed: {e}"),
    }
}

/// Enumerates `(state, action, transitions)` of a model — handy for
/// debugging small reference models in tests.
pub fn dump_rows<M: crate::model::FiniteMdp>(mdp: &M) -> Vec<(usize, usize, Vec<Transition>)> {
    let mut rows = Vec::new();
    let mut buf = Vec::new();
    for s in 0..mdp.n_states() {
        for a in 0..mdp.n_actions() {
            mdp.transitions(s, a, &mut buf);
            if !buf.is_empty() {
                rows.push((s, a, buf.clone()));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FiniteMdp;

    #[test]
    fn two_state_shape() {
        let (mdp, gamma) = two_state();
        assert_eq!(mdp.n_states(), 2);
        assert_eq!(mdp.n_actions(), 2);
        assert!(gamma < 1.0);
    }

    #[test]
    fn chain_rows_are_distributions() {
        let (mdp, _) = chain(6, 0.7);
        let mut buf = Vec::new();
        for s in 0..6 {
            for a in 0..2 {
                mdp.transitions(s, a, &mut buf);
                let mass: f64 = buf.iter().map(|t| t.probability).sum();
                assert!((mass - 1.0).abs() < 1e-12, "row ({s},{a}) mass {mass}");
            }
        }
    }

    #[test]
    fn chain_end_is_absorbing_and_rewarding() {
        let (mdp, _) = chain(4, 1.0);
        let mut buf = Vec::new();
        mdp.transitions(3, CHAIN_FORWARD, &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].next, 3);
        assert_eq!(buf[0].reward, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 states")]
    fn chain_too_small_panics() {
        let _ = chain(1, 0.5);
    }

    #[test]
    fn gridworld_rows_are_distributions() {
        let (mdp, _) = gridworld(4, 4, 0.2);
        let mut buf = Vec::new();
        for s in 0..mdp.n_states() {
            for a in 0..4 {
                mdp.transitions(s, a, &mut buf);
                let mass: f64 = buf.iter().map(|t| t.probability).sum();
                assert!((mass - 1.0).abs() < 1e-9, "row ({s},{a}) mass {mass}");
            }
        }
    }

    #[test]
    fn gridworld_goal_pays_and_teleports() {
        let (mdp, _) = gridworld(3, 3, 0.0);
        // Cell left of the goal: moving right must land on start with the
        // goal reward.
        let mut buf = Vec::new();
        let left_of_goal = 1; // (x=1, y=0)
        mdp.transitions(left_of_goal, 3, &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].next, 6); // start = bottom-left of 3x3
        assert!((buf[0].reward - 0.99).abs() < 1e-12);
    }

    #[test]
    fn dump_rows_collects_everything() {
        let (mdp, _) = two_state();
        let rows = dump_rows(&mdp);
        assert_eq!(rows.len(), 4);
    }
}
