//! Policies over finite state/action spaces.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A decision rule mapping states to actions.
///
/// The trait is object-safe: stochastic policies draw from the supplied RNG,
/// deterministic ones ignore it.
pub trait Policy {
    /// Chooses an action for `state`.
    fn decide(&self, state: usize, rng: &mut dyn RngCore) -> usize;
}

/// A deterministic tabular policy: one action per state.
///
/// ```
/// use mdp::{Policy, TabularPolicy};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let policy = TabularPolicy::new(vec![1, 0, 1]);
/// let mut rng = StdRng::seed_from_u64(0);
/// assert_eq!(policy.decide(0, &mut rng), 1);
/// assert_eq!(policy.decide(1, &mut rng), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TabularPolicy {
    actions: Vec<usize>,
}

impl TabularPolicy {
    /// Wraps a per-state action table.
    pub fn new(actions: Vec<usize>) -> Self {
        TabularPolicy { actions }
    }

    /// The per-state action table.
    pub fn actions(&self) -> &[usize] {
        &self.actions
    }

    /// Action chosen in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn action(&self, state: usize) -> usize {
        self.actions[state]
    }

    /// Number of states covered.
    pub fn n_states(&self) -> usize {
        self.actions.len()
    }
}

impl Policy for TabularPolicy {
    fn decide(&self, state: usize, _rng: &mut dyn RngCore) -> usize {
        self.actions[state]
    }
}

/// Uniform-random policy over `n_actions` actions (exploration baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformRandomPolicy {
    n_actions: usize,
}

impl UniformRandomPolicy {
    /// Creates a uniform policy over `n_actions` actions.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions == 0`.
    pub fn new(n_actions: usize) -> Self {
        assert!(n_actions > 0, "need at least one action");
        UniformRandomPolicy { n_actions }
    }
}

impl Policy for UniformRandomPolicy {
    fn decide(&self, _state: usize, rng: &mut dyn RngCore) -> usize {
        rand::Rng::gen_range(rng, 0..self.n_actions)
    }
}

/// ε-greedy wrapper: with probability `epsilon` act uniformly at random,
/// otherwise follow the inner policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpsilonGreedy<P> {
    inner: P,
    epsilon: f64,
    n_actions: usize,
}

impl<P: Policy> EpsilonGreedy<P> {
    /// Wraps `inner` with exploration rate `epsilon ∈ [0, 1]` over
    /// `n_actions` actions.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `[0, 1]` or `n_actions == 0`.
    pub fn new(inner: P, epsilon: f64, n_actions: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "epsilon must be within [0, 1]"
        );
        assert!(n_actions > 0, "need at least one action");
        EpsilonGreedy {
            inner,
            epsilon,
            n_actions,
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the inner policy.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Policy> Policy for EpsilonGreedy<P> {
    fn decide(&self, state: usize, rng: &mut dyn RngCore) -> usize {
        if rand::Rng::gen::<f64>(rng) < self.epsilon {
            rand::Rng::gen_range(rng, 0..self.n_actions)
        } else {
            self.inner.decide(state, rng)
        }
    }
}

/// A tabular state-action value function (Q-table) with greedy readout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    n_states: usize,
    n_actions: usize,
    values: Vec<f64>,
}

impl QTable {
    /// Creates a zero-initialized Q-table.
    pub fn zeros(n_states: usize, n_actions: usize) -> Self {
        QTable {
            n_states,
            n_actions,
            values: vec![0.0; n_states * n_actions],
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Q(s, a).
    pub fn get(&self, state: usize, action: usize) -> f64 {
        self.values[state * self.n_actions + action]
    }

    /// Sets Q(s, a).
    pub fn set(&mut self, state: usize, action: usize, value: f64) {
        self.values[state * self.n_actions + action] = value;
    }

    /// max_a Q(s, a).
    pub fn max_value(&self, state: usize) -> f64 {
        let row = &self.values[state * self.n_actions..(state + 1) * self.n_actions];
        row.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// argmax_a Q(s, a), first index on ties.
    pub fn greedy_action(&self, state: usize) -> usize {
        let row = &self.values[state * self.n_actions..(state + 1) * self.n_actions];
        let mut best = 0;
        let mut best_v = f64::NEG_INFINITY;
        for (a, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = a;
            }
        }
        best
    }

    /// Extracts the greedy deterministic policy.
    pub fn greedy_policy(&self) -> TabularPolicy {
        TabularPolicy::new((0..self.n_states).map(|s| self.greedy_action(s)).collect())
    }
}

impl Policy for QTable {
    fn decide(&self, state: usize, _rng: &mut dyn RngCore) -> usize {
        self.greedy_action(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tabular_policy_is_deterministic() {
        let p = TabularPolicy::new(vec![2, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(p.decide(0, &mut rng), 2);
            assert_eq!(p.decide(1, &mut rng), 0);
        }
        assert_eq!(p.n_states(), 2);
        assert_eq!(p.actions(), &[2, 0]);
    }

    #[test]
    fn uniform_policy_covers_all_actions() {
        let p = UniformRandomPolicy::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[p.decide(0, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn epsilon_zero_is_inner() {
        let p = EpsilonGreedy::new(TabularPolicy::new(vec![1]), 0.0, 3);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(p.decide(0, &mut rng), 1);
        }
        assert_eq!(p.inner().action(0), 1);
    }

    #[test]
    fn epsilon_one_is_uniform() {
        let p = EpsilonGreedy::new(TabularPolicy::new(vec![0]), 1.0, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[p.decide(0, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let _ = p.into_inner();
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_out_of_range_panics() {
        let _ = EpsilonGreedy::new(TabularPolicy::new(vec![0]), 1.5, 2);
    }

    #[test]
    fn qtable_greedy_readout() {
        let mut q = QTable::zeros(2, 3);
        q.set(0, 1, 5.0);
        q.set(0, 2, 3.0);
        q.set(1, 0, -1.0);
        q.set(1, 2, -0.5);
        assert_eq!(q.greedy_action(0), 1);
        assert_eq!(q.max_value(0), 5.0);
        // state 1: best is action 1 with q=0.0 (untouched)
        assert_eq!(q.greedy_action(1), 1);
        let p = q.greedy_policy();
        assert_eq!(p.actions(), &[1, 1]);
        assert_eq!(q.n_states(), 2);
        assert_eq!(q.n_actions(), 3);
    }

    #[test]
    fn qtable_ties_break_to_first() {
        let q = QTable::zeros(1, 4);
        assert_eq!(q.greedy_action(0), 0);
    }

    #[test]
    fn qtable_as_policy() {
        let mut q = QTable::zeros(1, 2);
        q.set(0, 1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(q.decide(0, &mut rng), 1);
    }
}
