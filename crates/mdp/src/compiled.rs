//! Compile-once CSR kernel for finite MDPs.
//!
//! Trait-backed models ([`FiniteMdp`]) describe their dynamics through the
//! `transitions` callback, which is convenient to write but expensive to
//! solve against: every Bellman sweep re-derives every `(state, action)` row
//! (for the cache MDP that means redoing the age/popularity arithmetic
//! thousands of times per solve). [`CompiledMdp`] enumerates the model once
//! into flat compressed-sparse-row arrays:
//!
//! * `row_ptr[state * n_actions + action] .. row_ptr[row + 1]` indexes the
//!   row's transitions inside the flat `next` / `probability` / `reward`
//!   arrays,
//! * per-row expected immediate rewards are precomputed,
//! * a validity bitmap marks rows of invalid actions.
//!
//! Solvers then run on the compiled form with **zero heap allocation per
//! sweep**, and the per-state Bellman backup is embarrassingly parallel:
//! under the `parallel` feature (default) sweeps fan out across the
//! workspace's shared executor ([`simkit::executor`]) — one persistent
//! barrier-synchronized pool per solve. Sweeps are Jacobi-style (each
//! state's backup reads only the previous iterate), so serial and parallel
//! runs are bit-for-bit identical.
//!
//! ```
//! use mdp::{reference, CompiledMdp, FiniteMdp};
//! use mdp::solver::ValueIteration;
//!
//! let (model, gamma) = reference::two_state();
//! let compiled = CompiledMdp::compile(&model)?;
//! assert_eq!(compiled.n_states(), model.n_states());
//!
//! // Compile once, solve many times without touching the callback again.
//! let out = ValueIteration::new(gamma).solve_compiled(&compiled)?;
//! assert!(out.converged);
//! assert_eq!(out.policy.action(0), 1);
//! # Ok::<(), mdp::MdpError>(())
//! ```

use crate::model::{FiniteMdp, Transition};
use crate::policy::TabularPolicy;
use crate::MdpError;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A finite MDP compiled into compressed-sparse-row arrays.
///
/// Implements [`FiniteMdp`] itself (with allocation-free `sample` /
/// `expected_reward`), so a compiled model can be handed to any consumer of
/// the trait — including the tabular learners, which gain allocation-free
/// generative sampling from the CSR rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledMdp {
    n_states: usize,
    n_actions: usize,
    /// `row_ptr[row] .. row_ptr[row + 1]` bounds row `state * n_actions +
    /// action` in the flat arrays; length `n_states · n_actions + 1`.
    row_ptr: Vec<usize>,
    /// Flat destination states.
    next: Vec<usize>,
    /// Flat transition probabilities.
    probability: Vec<f64>,
    /// Flat immediate rewards.
    reward: Vec<f64>,
    /// Precomputed `Σ p · r` per row (0 for invalid rows).
    expected: Vec<f64>,
    /// Validity bitmap: bit `row % 64` of word `row / 64` marks a non-empty
    /// row.
    valid: Vec<u64>,
}

impl CompiledMdp {
    /// Enumerates every `(state, action)` row of `mdp` into CSR form.
    ///
    /// # Errors
    ///
    /// * [`MdpError::EmptyModel`] for zero states or actions,
    /// * [`MdpError::NonFiniteEntry`] for NaN/infinite rewards or negative
    ///   or non-finite probabilities,
    /// * [`MdpError::StateOutOfRange`] for out-of-range destinations,
    /// * [`MdpError::BadDistribution`] when a state has no valid action
    ///   (solvers need at least one).
    pub fn compile<M: FiniteMdp + ?Sized>(mdp: &M) -> Result<CompiledMdp, MdpError> {
        let n_states = mdp.n_states();
        let n_actions = mdp.n_actions();
        if n_states == 0 || n_actions == 0 {
            return Err(MdpError::EmptyModel);
        }
        let n_rows = n_states
            .checked_mul(n_actions)
            .ok_or(MdpError::BadParameter {
                what: "state-action space",
                valid: "n_states * n_actions must fit in usize",
            })?;

        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        row_ptr.push(0);
        let mut next = Vec::new();
        let mut probability = Vec::new();
        let mut reward = Vec::new();
        let mut expected = Vec::with_capacity(n_rows);
        let mut valid = vec![0u64; n_rows.div_ceil(64)];

        let mut buf = Vec::new();
        for s in 0..n_states {
            let mut any_valid = false;
            for a in 0..n_actions {
                mdp.transitions(s, a, &mut buf);
                let mut row_expected = 0.0;
                for t in &buf {
                    if !t.probability.is_finite() || !t.reward.is_finite() || t.probability < 0.0 {
                        return Err(MdpError::NonFiniteEntry {
                            state: s,
                            action: a,
                        });
                    }
                    if t.next >= n_states {
                        return Err(MdpError::StateOutOfRange {
                            state: t.next,
                            n_states,
                        });
                    }
                    next.push(t.next);
                    probability.push(t.probability);
                    reward.push(t.reward);
                    row_expected += t.probability * t.reward;
                }
                if !buf.is_empty() {
                    let row = s * n_actions + a;
                    valid[row / 64] |= 1 << (row % 64);
                    any_valid = true;
                }
                expected.push(row_expected);
                row_ptr.push(next.len());
            }
            if !any_valid {
                return Err(MdpError::BadDistribution {
                    state: s,
                    action: 0,
                    mass: 0.0,
                });
            }
        }
        Ok(CompiledMdp {
            n_states,
            n_actions,
            row_ptr,
            next,
            probability,
            reward,
            expected,
            valid,
        })
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Total transitions stored across all rows.
    pub fn n_transitions(&self) -> usize {
        self.next.len()
    }

    /// Whether the `(state, action)` row is non-empty.
    #[inline]
    pub fn is_valid(&self, state: usize, action: usize) -> bool {
        let row = state * self.n_actions + action;
        self.valid[row / 64] & (1 << (row % 64)) != 0
    }

    /// The CSR row of `(state, action)` as `(next, probability, reward)`
    /// slices (all empty for invalid actions).
    #[inline]
    pub fn row(&self, state: usize, action: usize) -> (&[usize], &[f64], &[f64]) {
        let row = state * self.n_actions + action;
        let span = self.row_ptr[row]..self.row_ptr[row + 1];
        (
            &self.next[span.clone()],
            &self.probability[span.clone()],
            &self.reward[span],
        )
    }

    /// Precomputed expected immediate reward `Σ p · r` of `(state, action)`.
    #[inline]
    pub fn expected_reward(&self, state: usize, action: usize) -> f64 {
        self.expected[state * self.n_actions + action]
    }

    /// One-step lookahead `Q(s, a) = E[r] + γ Σ p · V(s')`, or `None` for an
    /// invalid action.
    #[inline]
    pub fn q_value(&self, state: usize, action: usize, values: &[f64], gamma: f64) -> Option<f64> {
        if !self.is_valid(state, action) {
            return None;
        }
        let row = state * self.n_actions + action;
        let span = self.row_ptr[row]..self.row_ptr[row + 1];
        let mut future = 0.0;
        for (p, nx) in self.probability[span.clone()].iter().zip(&self.next[span]) {
            future += p * values[*nx];
        }
        Some(self.expected[row] + gamma * future)
    }

    /// Bellman-optimality backup of one state: `max_a Q(s, a)` over valid
    /// actions.
    #[inline]
    pub(crate) fn backup_state(&self, state: usize, values: &[f64], gamma: f64) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for a in 0..self.n_actions {
            if let Some(q) = self.q_value(state, a, values, gamma) {
                if q > best {
                    best = q;
                }
            }
        }
        best
    }

    /// Backup of one state with its argmax action (ties break to the lowest
    /// action index).
    #[inline]
    pub(crate) fn backup_state_with_action(
        &self,
        state: usize,
        values: &[f64],
        gamma: f64,
    ) -> (f64, usize) {
        let mut best = f64::NEG_INFINITY;
        let mut best_a = 0;
        for a in 0..self.n_actions {
            if let Some(q) = self.q_value(state, a, values, gamma) {
                if q > best {
                    best = q;
                    best_a = a;
                }
            }
        }
        (best, best_a)
    }

    /// Greedy policy with respect to `values` (CSR counterpart of
    /// [`solver::greedy_policy`](crate::solver::greedy_policy)).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n_states()`.
    pub fn greedy_policy(&self, values: &[f64], gamma: f64) -> TabularPolicy {
        assert_eq!(values.len(), self.n_states, "value vector length mismatch");
        let actions = (0..self.n_states)
            .map(|s| self.backup_state_with_action(s, values, gamma).1)
            .collect();
        TabularPolicy::new(actions)
    }

    /// Sup-norm Bellman-optimality residual `‖T V − V‖_∞` on the compiled
    /// form (CSR counterpart of
    /// [`solver::bellman_residual`](crate::solver::bellman_residual)).
    pub fn bellman_residual(&self, values: &[f64], gamma: f64) -> f64 {
        let mut residual: f64 = 0.0;
        for s in 0..self.n_states {
            residual = residual.max((self.backup_state(s, values, gamma) - values[s]).abs());
        }
        residual
    }
}

impl FiniteMdp for CompiledMdp {
    fn n_states(&self) -> usize {
        self.n_states
    }

    fn n_actions(&self) -> usize {
        self.n_actions
    }

    fn transitions(&self, state: usize, action: usize, out: &mut Vec<Transition>) {
        out.clear();
        let (next, probability, reward) = self.row(state, action);
        out.reserve(next.len());
        for i in 0..next.len() {
            out.push(Transition::new(next[i], probability[i], reward[i]));
        }
    }

    fn is_action_valid(&self, state: usize, action: usize) -> bool {
        self.is_valid(state, action)
    }

    fn expected_reward(&self, state: usize, action: usize) -> f64 {
        CompiledMdp::expected_reward(self, state, action)
    }

    /// Samples from the CSR row directly — no allocation, unlike the trait's
    /// default buffer-based implementation.
    fn sample(&self, state: usize, action: usize, rng: &mut dyn RngCore) -> (usize, f64) {
        let (next, probability, reward) = self.row(state, action);
        assert!(
            !next.is_empty(),
            "cannot sample from an empty transition row"
        );
        let u: f64 = rand::Rng::gen::<f64>(rng);
        let mut acc = 0.0;
        for i in 0..next.len() {
            acc += probability[i];
            if u < acc {
                return (next[i], reward[i]);
            }
        }
        (next[next.len() - 1], reward[reward.len() - 1])
    }
}

/// Per-sweep change statistics shared by all sweep-based solvers: the
/// sup-norm change and the signed span (used by relative value iteration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SweepStats {
    /// `max_s |new(s) − old(s)|`.
    pub max_abs: f64,
    /// `min_s (new(s) − old(s))`.
    pub lo: f64,
    /// `max_s (new(s) − old(s))`.
    pub hi: f64,
}

impl SweepStats {
    fn new() -> Self {
        SweepStats {
            max_abs: 0.0,
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
        }
    }

    #[inline]
    fn record(&mut self, delta: f64) {
        self.max_abs = self.max_abs.max(delta.abs());
        self.lo = self.lo.min(delta);
        self.hi = self.hi.max(delta);
    }
}

/// Lets the shared executor reduce per-chunk sweep stats across workers.
impl simkit::executor::RoundStat for SweepStats {
    fn identity() -> Self {
        SweepStats::new()
    }

    fn merge(&mut self, other: &Self) {
        self.max_abs = self.max_abs.max(other.max_abs);
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
    }
}

/// Result of a [`run_sweeps`] fixed-point loop.
pub(crate) struct SweepOutcome {
    /// Final iterate.
    pub values: Vec<f64>,
    /// Sweeps performed.
    pub sweeps: usize,
    /// Stats of the final sweep (max_abs is `INFINITY` when no sweep ran).
    pub last: SweepStats,
    /// Whether the epilogue signalled convergence.
    pub converged: bool,
}

/// Minimum states per worker before a sweep pool fans out (below this the
/// barrier synchronization dominates the backup work). The pool is
/// persistent across all rounds of one sweep loop — every value-iteration
/// sweep, policy-evaluation sweep, backward-induction stage, or
/// policy-iteration evaluate/improve round of that loop reuses it — so
/// spawn cost is amortized over the whole solve (one pool per solve for
/// every sweep-based solver; asserted by `tests/pool_per_solve.rs`).
pub(crate) const MIN_STATES_PER_WORKER: usize = 1024;

/// Shared Jacobi sweep loop: repeatedly computes `new[s] = backup(s, old)`
/// for every state, lets `epilogue` post-process the fresh iterate (e.g.
/// normalize it) and decide convergence, and stops at `max_sweeps`.
///
/// This is a thin domain adapter over [`simkit::executor::run_rounds`],
/// the workspace's single thread-pool implementation: one persistent
/// barrier-synchronized pool per solve, no per-sweep allocation, and a
/// schedule that is bit-for-bit identical to the serial loop (every backup
/// reads only the previous iterate).
pub(crate) fn run_sweeps(
    values: Vec<f64>,
    parallel: bool,
    max_sweeps: usize,
    backup: impl Fn(usize, &[f64]) -> f64 + Sync,
    epilogue: impl FnMut(&mut [f64], &SweepStats, usize) -> bool,
) -> SweepOutcome {
    let workers = simkit::executor::worker_count(values.len(), parallel, MIN_STATES_PER_WORKER);
    run_sweeps_on(values, workers, max_sweeps, backup, epilogue)
}

/// [`run_sweeps`] with an explicit worker count (tests use this to force
/// the pooled path on hosts whose CPU count would keep it serial).
pub(crate) fn run_sweeps_on(
    values: Vec<f64>,
    workers: usize,
    max_sweeps: usize,
    backup: impl Fn(usize, &[f64]) -> f64 + Sync,
    epilogue: impl FnMut(&mut [f64], &SweepStats, usize) -> bool,
) -> SweepOutcome {
    let outcome = simkit::executor::run_rounds(
        values,
        workers,
        max_sweeps,
        |s, old, stats: &mut SweepStats| {
            let backed = backup(s, old);
            stats.record(backed - old[s]);
            backed
        },
        epilogue,
    );
    SweepOutcome {
        values: outcome.values,
        sweeps: outcome.rounds,
        last: outcome.last.unwrap_or(SweepStats {
            max_abs: f64::INFINITY,
            ..SweepStats::new()
        }),
        converged: outcome.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn compile_preserves_shape_and_rows() {
        let (model, _) = reference::gridworld(4, 4, 0.2);
        let compiled = CompiledMdp::compile(&model).unwrap();
        assert_eq!(compiled.n_states(), model.n_states());
        assert_eq!(compiled.n_actions(), model.n_actions());
        assert!(compiled.n_transitions() > 0);

        let mut want = Vec::new();
        let mut got = Vec::new();
        for s in 0..model.n_states() {
            for a in 0..model.n_actions() {
                model.transitions(s, a, &mut want);
                compiled.transitions(s, a, &mut got);
                assert_eq!(want, got, "row ({s}, {a})");
                assert_eq!(model.is_action_valid(s, a), compiled.is_valid(s, a));
                assert!(
                    (model.expected_reward(s, a) - CompiledMdp::expected_reward(&compiled, s, a))
                        .abs()
                        < 1e-12
                );
            }
        }
    }

    #[test]
    fn q_values_match_callback_path() {
        let (model, gamma) = reference::chain(6, 0.7);
        let compiled = CompiledMdp::compile(&model).unwrap();
        let values: Vec<f64> = (0..6).map(|s| s as f64 * 0.3 - 1.0).collect();
        let mut buf = Vec::new();
        for s in 0..6 {
            for a in 0..2 {
                let reference_q = crate::solver::q_value(&model, s, a, &values, gamma, &mut buf);
                let compiled_q = compiled.q_value(s, a, &values, gamma);
                match (reference_q, compiled_q) {
                    (None, None) => {}
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-12, "({s},{a}): {x} vs {y}"),
                    other => panic!("validity mismatch at ({s},{a}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn compile_rejects_bad_models() {
        use crate::model::FnMdp;
        // No states.
        let empty = FnMdp::new(0, 1, |_, _, _| {});
        assert!(matches!(
            CompiledMdp::compile(&empty),
            Err(MdpError::EmptyModel)
        ));
        // A state with no valid action.
        let stuck = FnMdp::new(2, 1, |s, _, out| {
            if s == 0 {
                out.push(Transition::new(0, 1.0, 0.0));
            }
        });
        assert!(matches!(
            CompiledMdp::compile(&stuck),
            Err(MdpError::BadDistribution { state: 1, .. })
        ));
        // Out-of-range destination.
        let escapee = FnMdp::new(1, 1, |_, _, out| out.push(Transition::new(7, 1.0, 0.0)));
        assert!(matches!(
            CompiledMdp::compile(&escapee),
            Err(MdpError::StateOutOfRange { state: 7, .. })
        ));
        // Non-finite probability.
        let nan = FnMdp::new(1, 1, |_, _, out| {
            out.push(Transition::new(0, f64::NAN, 0.0))
        });
        assert!(matches!(
            CompiledMdp::compile(&nan),
            Err(MdpError::NonFiniteEntry { .. })
        ));
    }

    #[test]
    fn sampling_is_distribution_faithful() {
        let (model, _) = reference::chain(5, 0.6);
        let compiled = CompiledMdp::compile(&model).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut forward = 0;
        let n = 20_000;
        for _ in 0..n {
            let (next, _) = compiled.sample(1, reference::CHAIN_FORWARD, &mut rng);
            if next == 2 {
                forward += 1;
            }
        }
        let frac = forward as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn greedy_and_residual_match_callback_versions() {
        let (model, gamma) = reference::gridworld(3, 4, 0.15);
        let compiled = CompiledMdp::compile(&model).unwrap();
        let values: Vec<f64> = (0..model.n_states())
            .map(|s| (s as f64 * 0.37).sin())
            .collect();
        let reference_policy = crate::solver::greedy_policy(&model, &values, gamma);
        let compiled_policy = compiled.greedy_policy(&values, gamma);
        assert_eq!(reference_policy.actions(), compiled_policy.actions());
        let r1 = crate::solver::bellman_residual(&model, &values, gamma);
        let r2 = compiled.bellman_residual(&values, gamma);
        assert!((r1 - r2).abs() < 1e-10, "{r1} vs {r2}");
    }

    /// Drives the sweep adapter with forced worker counts so the pooled
    /// code path is exercised even on single-CPU hosts (where the executor's
    /// automatic sizing correctly refuses to fan out).
    #[test]
    fn run_sweeps_serial_and_pooled_agree_bitwise() {
        let (model, gamma) = reference::gridworld(64, 64, 0.1);
        let compiled = CompiledMdp::compile(&model).unwrap();
        let backup = |s: usize, v: &[f64]| compiled.backup_state(s, v, gamma);
        let serial = run_sweeps_on(
            vec![0.0; compiled.n_states()],
            1,
            60,
            backup,
            |_, stats, _| stats.max_abs < 1e-9,
        );
        for workers in [2, 3, 7] {
            let pooled = run_sweeps_on(
                vec![0.0; compiled.n_states()],
                workers,
                60,
                backup,
                |_, stats, _| stats.max_abs < 1e-9,
            );
            assert_eq!(serial.sweeps, pooled.sweeps, "{workers} workers");
            assert_eq!(serial.converged, pooled.converged);
            assert_eq!(
                serial.values, pooled.values,
                "iterates must be identical with {workers} workers"
            );
        }
    }

    /// A panic inside a pool worker must surface as a panic on the calling
    /// thread, not leave the coordinator deadlocked on the barrier.
    #[cfg(feature = "parallel")]
    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let _ = run_sweeps_on(
            vec![0.0; 4096],
            3,
            5,
            |s, _| {
                if s == 1234 {
                    panic!("boom");
                }
                0.0
            },
            |_, _, _| false,
        );
    }
}
