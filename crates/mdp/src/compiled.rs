//! Compile-once CSR kernel for finite MDPs.
//!
//! Trait-backed models ([`FiniteMdp`]) describe their dynamics through the
//! `transitions` callback, which is convenient to write but expensive to
//! solve against: every Bellman sweep re-derives every `(state, action)` row
//! (for the cache MDP that means redoing the age/popularity arithmetic
//! thousands of times per solve). [`CompiledMdp`] enumerates the model once
//! into flat compressed-sparse-row arrays:
//!
//! * `row_ptr[state * n_actions + action] .. row_ptr[row + 1]` indexes the
//!   row's transitions inside the flat `next` / `probability` / `reward`
//!   arrays,
//! * per-row expected immediate rewards are precomputed,
//! * a validity bitmap marks rows of invalid actions.
//!
//! Solvers then run on the compiled form with **zero heap allocation per
//! sweep**, and the per-state Bellman backup is embarrassingly parallel:
//! under the `parallel` feature (default) sweeps fan out across the
//! workspace's shared executor ([`simkit::executor`]) — one persistent
//! barrier-synchronized pool per solve. Sweeps are Jacobi-style (each
//! state's backup reads only the previous iterate), so serial and parallel
//! runs are bit-for-bit identical.
//!
//! # Data-parallel sweep kernel
//!
//! Besides the exact CSR rows, compilation builds a **lane-padded mirror**
//! of the transition arrays: every row's `(next, probability)` pairs are
//! padded up to a multiple of [`LANES`] with explicit `probability = 0.0`
//! no-op entries, so the `Σ p·V(s')` gather runs as fixed-width f64 lane
//! batches with no tail loop — a shape the stable-Rust autovectorizer
//! turns into packed multiply-adds. The per-row validity bit test is
//! hoisted out of the action loop (one bitmap word covers all of a
//! state's rows until the row index crosses a word boundary), and sweeps
//! walk the state space in cache-blocked ranges
//! ([`simkit::executor::run_rounds_blocked`]) so a block's output slice
//! and streamed row data stay cache-resident.
//!
//! For **deterministic** models (every row at most one transition — the
//! cache MDP under static popularity) compilation additionally builds an
//! action-major dense mirror, and blocked sweeps batch across *states*
//! instead: the inner loop streams `(expected, probability, next)`
//! contiguously with one `values` gather per row and no per-row validity
//! test (invalid rows are folded into the data as `-∞` expected rewards
//! that the over-actions max skips). Per row this is the same multiply
//! and add set as the scalar kernel, so deterministic sweeps agree
//! exactly (`==`) with the per-state backup.
//!
//! **Where bit-identity holds:** rows with a single transition — every row
//! of the cache MDP under static popularity — are bitwise identical to the
//! scalar kernel ([`CompiledMdp::q_value_scalar`]): padding lanes multiply
//! `0.0` by a finite value and add the resulting signed zero, which is an
//! exact no-op. Rows with two or more transitions reassociate the gather
//! sum `(a₀+a₁)+(a₂+a₃)` instead of accumulating left-to-right, so lane
//! and scalar Q-values may differ by a few ulps there; the equivalence
//! tests bound that drift explicitly (`q_values_match_callback_path`,
//! `lane_and_scalar_q_values_agree_to_ulps`).
//!
//! ```
//! use mdp::{reference, CompiledMdp, FiniteMdp};
//! use mdp::solver::ValueIteration;
//!
//! let (model, gamma) = reference::two_state();
//! let compiled = CompiledMdp::compile(&model)?;
//! assert_eq!(compiled.n_states(), model.n_states());
//!
//! // Compile once, solve many times without touching the callback again.
//! let out = ValueIteration::new(gamma).solve_compiled(&compiled)?;
//! assert!(out.converged);
//! assert_eq!(out.policy.action(0), 1);
//! # Ok::<(), mdp::MdpError>(())
//! ```

use crate::model::{FiniteMdp, Transition};
use crate::policy::TabularPolicy;
use crate::MdpError;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A finite MDP compiled into compressed-sparse-row arrays.
///
/// Implements [`FiniteMdp`] itself (with allocation-free `sample` /
/// `expected_reward`), so a compiled model can be handed to any consumer of
/// the trait — including the tabular learners, which gain allocation-free
/// generative sampling from the CSR rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledMdp {
    n_states: usize,
    n_actions: usize,
    /// `row_ptr[row] .. row_ptr[row + 1]` bounds row `state * n_actions +
    /// action` in the flat arrays; length `n_states · n_actions + 1`.
    row_ptr: Vec<usize>,
    /// Flat destination states.
    next: Vec<usize>,
    /// Flat transition probabilities.
    probability: Vec<f64>,
    /// Flat immediate rewards.
    reward: Vec<f64>,
    /// Precomputed `Σ p · r` per row (0 for invalid rows).
    expected: Vec<f64>,
    /// Validity bitmap: bit `row % 64` of word `row / 64` marks a non-empty
    /// row.
    valid: Vec<u64>,
    /// Lane-padded row bounds: `lane_ptr[row] .. lane_ptr[row + 1]` indexes
    /// row `row` inside `lane_next`/`lane_prob`; every span's length is a
    /// multiple of [`LANES`].
    lane_ptr: Vec<usize>,
    /// Lane-padded destination states (`u32`; compilation rejects models
    /// with more than `u32::MAX` states). Padding entries repeat the row's
    /// first real destination so their `0.0 · V(s')` product carries the
    /// same sign as the row's genuine terms.
    lane_next: Vec<u32>,
    /// Lane-padded transition probabilities (padding entries are `0.0`).
    lane_prob: Vec<f64>,
    /// Action-major dense destinations, built only for **deterministic**
    /// models (every row has at most one transition — the cache MDP under
    /// static popularity): slot `action * n_states + state`. Empty for
    /// stochastic models.
    det_next: Vec<u32>,
    /// Action-major dense probabilities (`0.0` for invalid rows, so their
    /// gather term is an exact no-op).
    det_prob: Vec<f64>,
    /// Action-major dense expected rewards; invalid rows carry `-∞`, so the
    /// over-actions max skips them without a bitmap test.
    det_expected: Vec<f64>,
}

/// Fixed f64 lane width of the padded sweep kernel: four independent
/// accumulators break the gather's floating-point add dependency chain and
/// map onto one AVX2 register (two SSE2 registers); see the module docs
/// for the exact bit-identity guarantees.
pub const LANES: usize = 4;

impl CompiledMdp {
    /// Enumerates every `(state, action)` row of `mdp` into CSR form.
    ///
    /// # Errors
    ///
    /// * [`MdpError::EmptyModel`] for zero states or actions,
    /// * [`MdpError::NonFiniteEntry`] for NaN/infinite rewards or negative
    ///   or non-finite probabilities,
    /// * [`MdpError::StateOutOfRange`] for out-of-range destinations,
    /// * [`MdpError::BadDistribution`] when a state has no valid action
    ///   (solvers need at least one).
    pub fn compile<M: FiniteMdp + ?Sized>(mdp: &M) -> Result<CompiledMdp, MdpError> {
        let n_states = mdp.n_states();
        let n_actions = mdp.n_actions();
        if n_states == 0 || n_actions == 0 {
            return Err(MdpError::EmptyModel);
        }
        // The lane mirror stores destinations as u32 to halve its gather
        // bandwidth; every practical model is orders of magnitude smaller.
        if u32::try_from(n_states).is_err() {
            return Err(MdpError::BadParameter {
                what: "n_states",
                valid: "at most u32::MAX states",
            });
        }
        let n_rows = n_states
            .checked_mul(n_actions)
            .ok_or(MdpError::BadParameter {
                what: "state-action space",
                valid: "n_states * n_actions must fit in usize",
            })?;

        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        row_ptr.push(0);
        let mut next = Vec::new();
        let mut probability = Vec::new();
        let mut reward = Vec::new();
        let mut expected = Vec::with_capacity(n_rows);
        let mut valid = vec![0u64; n_rows.div_ceil(64)];

        let mut buf = Vec::new();
        for s in 0..n_states {
            let mut any_valid = false;
            for a in 0..n_actions {
                mdp.transitions(s, a, &mut buf);
                let mut row_expected = 0.0;
                for t in &buf {
                    if !t.probability.is_finite() || !t.reward.is_finite() || t.probability < 0.0 {
                        return Err(MdpError::NonFiniteEntry {
                            state: s,
                            action: a,
                        });
                    }
                    if t.next >= n_states {
                        return Err(MdpError::StateOutOfRange {
                            state: t.next,
                            n_states,
                        });
                    }
                    next.push(t.next);
                    probability.push(t.probability);
                    reward.push(t.reward);
                    row_expected += t.probability * t.reward;
                }
                if !buf.is_empty() {
                    let row = s * n_actions + a;
                    valid[row / 64] |= 1 << (row % 64);
                    any_valid = true;
                }
                expected.push(row_expected);
                row_ptr.push(next.len());
            }
            if !any_valid {
                return Err(MdpError::BadDistribution {
                    state: s,
                    action: 0,
                    mass: 0.0,
                });
            }
        }

        // Lane-padded mirror of (next, probability): each row rounded up
        // to a LANES multiple with 0.0-probability entries pointing at the
        // row's first real destination (see the field docs for why).
        let mut lane_ptr = Vec::with_capacity(n_rows + 1);
        lane_ptr.push(0);
        let mut lane_next = Vec::new();
        let mut lane_prob = Vec::new();
        for row in 0..n_rows {
            let span = row_ptr[row]..row_ptr[row + 1];
            let pad_to = span.len().next_multiple_of(LANES);
            let anchor = next.get(span.start).copied().unwrap_or(0) as u32;
            for i in span.clone() {
                lane_next.push(next[i] as u32);
                lane_prob.push(probability[i]);
            }
            for _ in span.len()..pad_to {
                lane_next.push(anchor);
                lane_prob.push(0.0);
            }
            lane_ptr.push(lane_next.len());
        }

        // Action-major dense mirror for deterministic models: the blocked
        // sweep then runs action-outer / state-inner over contiguous
        // streams (one value gather per row) with validity folded into the
        // data — invalid rows carry expected = -∞ and probability = 0.0,
        // so the over-states loop has no branch and no bitmap test.
        let deterministic = (0..n_rows).all(|row| row_ptr[row + 1] - row_ptr[row] <= 1);
        let (det_next, det_prob, det_expected) = if deterministic {
            let mut det_next = vec![0u32; n_rows];
            let mut det_prob = vec![0.0f64; n_rows];
            let mut det_expected = vec![f64::NEG_INFINITY; n_rows];
            for s in 0..n_states {
                for a in 0..n_actions {
                    let row = s * n_actions + a;
                    if valid[row / 64] & (1 << (row % 64)) == 0 {
                        continue;
                    }
                    // A valid row of a deterministic model has exactly one
                    // transition.
                    let slot = a * n_states + s;
                    det_next[slot] = next[row_ptr[row]] as u32;
                    det_prob[slot] = probability[row_ptr[row]];
                    det_expected[slot] = expected[row];
                }
            }
            (det_next, det_prob, det_expected)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };

        Ok(CompiledMdp {
            n_states,
            n_actions,
            row_ptr,
            next,
            probability,
            reward,
            expected,
            valid,
            lane_ptr,
            lane_next,
            lane_prob,
            det_next,
            det_prob,
            det_expected,
        })
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Total transitions stored across all rows.
    pub fn n_transitions(&self) -> usize {
        self.next.len()
    }

    /// Whether the action-major dense mirror was built (every row has at
    /// most one transition), i.e. whether blocked sweeps take the
    /// deterministic fast path.
    pub fn is_deterministic(&self) -> bool {
        !self.det_expected.is_empty()
    }

    /// Whether the `(state, action)` row is non-empty.
    #[inline]
    pub fn is_valid(&self, state: usize, action: usize) -> bool {
        let row = state * self.n_actions + action;
        self.valid[row / 64] & (1 << (row % 64)) != 0
    }

    /// The CSR row of `(state, action)` as `(next, probability, reward)`
    /// slices (all empty for invalid actions).
    #[inline]
    pub fn row(&self, state: usize, action: usize) -> (&[usize], &[f64], &[f64]) {
        let row = state * self.n_actions + action;
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        (
            &self.next[lo..hi],
            &self.probability[lo..hi],
            &self.reward[lo..hi],
        )
    }

    /// Precomputed expected immediate reward `Σ p · r` of `(state, action)`.
    #[inline]
    pub fn expected_reward(&self, state: usize, action: usize) -> f64 {
        self.expected[state * self.n_actions + action]
    }

    /// The expected next-state value `Σ p · V(s')` of one row, gathered
    /// through the lane-padded mirror: [`LANES`] independent accumulators,
    /// no tail loop, combined pairwise at the end. Bitwise equal to the
    /// scalar left-to-right sum for rows with at most one transition;
    /// within ulps otherwise (see the module docs).
    #[inline]
    fn lane_future(&self, row: usize, values: &[f64]) -> f64 {
        let (lo, hi) = (self.lane_ptr[row], self.lane_ptr[row + 1]);
        if hi - lo == LANES {
            // Single-chunk rows (≤ 4 real transitions — every row of the
            // cache MDP) skip the chunk iterator: same 4 products combined
            // in the same pairwise order, so the result is bitwise equal
            // to the general loop below.
            let n = &self.lane_next[lo..lo + LANES];
            let p = &self.lane_prob[lo..lo + LANES];
            return (p[0] * values[n[0] as usize] + p[1] * values[n[1] as usize])
                + (p[2] * values[n[2] as usize] + p[3] * values[n[3] as usize]);
        }
        let next = &self.lane_next[lo..hi];
        let prob = &self.lane_prob[lo..hi];
        let mut acc = [0.0f64; LANES];
        for (n, p) in next.chunks_exact(LANES).zip(prob.chunks_exact(LANES)) {
            for l in 0..LANES {
                acc[l] += p[l] * values[n[l] as usize];
            }
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    /// One-step lookahead `Q(s, a) = E[r] + γ Σ p · V(s')`, or `None` for an
    /// invalid action. Computed through the lane-padded gather
    /// (`lane_future` — see the module docs for where this is bitwise
    /// equal to [`q_value_scalar`](Self::q_value_scalar)).
    #[inline]
    pub fn q_value(&self, state: usize, action: usize, values: &[f64], gamma: f64) -> Option<f64> {
        if !self.is_valid(state, action) {
            return None;
        }
        let row = state * self.n_actions + action;
        Some(self.expected[row] + gamma * self.lane_future(row, values))
    }

    /// [`q_value`](Self::q_value) through the original scalar left-to-right
    /// CSR gather. Kept as the reference kernel: the tolerance-based
    /// equivalence tests compare the lane kernel against it, and the
    /// `solvers` bench group reports both so the lane speedup stays
    /// measured.
    #[inline]
    pub fn q_value_scalar(
        &self,
        state: usize,
        action: usize,
        values: &[f64],
        gamma: f64,
    ) -> Option<f64> {
        if !self.is_valid(state, action) {
            return None;
        }
        let row = state * self.n_actions + action;
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        let mut future = 0.0;
        for (p, nx) in self.probability[lo..hi].iter().zip(&self.next[lo..hi]) {
            future += p * values[*nx];
        }
        Some(self.expected[row] + gamma * future)
    }

    /// Bellman-optimality backup of one state: `max_a Q(s, a)` over valid
    /// actions.
    #[inline]
    pub fn backup_state(&self, state: usize, values: &[f64], gamma: f64) -> f64 {
        self.backup_state_with_action(state, values, gamma).0
    }

    /// Backup of one state with its argmax action (ties break to the lowest
    /// action index). The validity word is hoisted out of the action loop:
    /// a state's rows are consecutive, so one 64-bit bitmap word covers
    /// them until the row index crosses a word boundary (at most once per
    /// state for every model with ≤ 64 actions).
    #[inline]
    pub(crate) fn backup_state_with_action(
        &self,
        state: usize,
        values: &[f64],
        gamma: f64,
    ) -> (f64, usize) {
        let base = state * self.n_actions;
        let mut word_idx = base / 64;
        let mut word = self.valid[word_idx];
        let mut best = f64::NEG_INFINITY;
        let mut best_a = 0;
        for a in 0..self.n_actions {
            let row = base + a;
            let w = row / 64;
            if w != word_idx {
                word_idx = w;
                word = self.valid[w];
            }
            if word & (1 << (row % 64)) == 0 {
                continue;
            }
            let q = self.expected[row] + gamma * self.lane_future(row, values);
            if q > best {
                best = q;
                best_a = a;
            }
        }
        (best, best_a)
    }

    /// Bellman-optimality backups of a contiguous state range, written into
    /// `out` (`out[0]` is `states.start`). This is the blocked sweep body
    /// the solvers run under the crate's blocked sweep driver: row data streams
    /// linearly through the block while the iterate stays cache-hot.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `out.len() != states.len()`.
    pub fn backup_block(
        &self,
        states: std::ops::Range<usize>,
        values: &[f64],
        out: &mut [f64],
        gamma: f64,
    ) {
        debug_assert_eq!(out.len(), states.len(), "output block length mismatch");
        if !self.det_expected.is_empty() {
            return self.backup_block_dense(states, values, out, gamma);
        }
        for (slot, s) in out.iter_mut().zip(states) {
            *slot = self.backup_state(s, values, gamma);
        }
    }

    /// [`backup_block`](Self::backup_block) over the action-major dense
    /// mirror of a deterministic model: action-outer / state-inner, so the
    /// inner loop streams `(expected, probability, next)` contiguously
    /// with exactly one `values` gather per row and folds validity into
    /// the data (invalid rows are `-∞ + γ·0`, which the strict max skips).
    /// Per row this performs the same multiply and add set as the scalar
    /// kernel's single-term gather, so the results agree exactly
    /// (`==`) with [`backup_state`](Self::backup_state); ties in the max
    /// resolve identically because both iterate actions in ascending order
    /// with strict improvement.
    fn backup_block_dense(
        &self,
        states: std::ops::Range<usize>,
        values: &[f64],
        out: &mut [f64],
        gamma: f64,
    ) {
        out.fill(f64::NEG_INFINITY);
        for a in 0..self.n_actions {
            let base = a * self.n_states;
            let exp = &self.det_expected[base + states.start..base + states.end];
            let prob = &self.det_prob[base + states.start..base + states.end];
            let next = &self.det_next[base + states.start..base + states.end];
            for ((slot, &e), (&p, &nx)) in out.iter_mut().zip(exp).zip(prob.iter().zip(next)) {
                // Same op order as the scalar kernel: the row's single-term
                // gather accumulates from 0.0.
                let future = 0.0 + p * values[nx as usize];
                let q = e + gamma * future;
                if q > *slot {
                    *slot = q;
                }
            }
        }
    }

    /// Greedy policy with respect to `values` (CSR counterpart of
    /// [`solver::greedy_policy`](crate::solver::greedy_policy)).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadParameter`] if `values.len() != n_states()`.
    pub fn greedy_policy(&self, values: &[f64], gamma: f64) -> Result<TabularPolicy, MdpError> {
        if values.len() != self.n_states {
            return Err(MdpError::BadParameter {
                what: "values",
                valid: "one value per state",
            });
        }
        let actions = (0..self.n_states)
            .map(|s| self.backup_state_with_action(s, values, gamma).1)
            .collect();
        Ok(TabularPolicy::new(actions))
    }

    /// Sup-norm Bellman-optimality residual `‖T V − V‖_∞` on the compiled
    /// form (CSR counterpart of
    /// [`solver::bellman_residual`](crate::solver::bellman_residual)).
    pub fn bellman_residual(&self, values: &[f64], gamma: f64) -> f64 {
        let mut residual: f64 = 0.0;
        for s in 0..self.n_states {
            residual = residual.max((self.backup_state(s, values, gamma) - values[s]).abs());
        }
        residual
    }
}

impl FiniteMdp for CompiledMdp {
    fn n_states(&self) -> usize {
        self.n_states
    }

    fn n_actions(&self) -> usize {
        self.n_actions
    }

    fn transitions(&self, state: usize, action: usize, out: &mut Vec<Transition>) {
        out.clear();
        let (next, probability, reward) = self.row(state, action);
        out.reserve(next.len());
        for i in 0..next.len() {
            out.push(Transition::new(next[i], probability[i], reward[i]));
        }
    }

    fn is_action_valid(&self, state: usize, action: usize) -> bool {
        self.is_valid(state, action)
    }

    fn expected_reward(&self, state: usize, action: usize) -> f64 {
        CompiledMdp::expected_reward(self, state, action)
    }

    /// Samples from the CSR row directly — no allocation, unlike the trait's
    /// default buffer-based implementation.
    fn sample(&self, state: usize, action: usize, rng: &mut dyn RngCore) -> (usize, f64) {
        let (next, probability, reward) = self.row(state, action);
        assert!(
            !next.is_empty(),
            "cannot sample from an empty transition row"
        );
        let u: f64 = rand::Rng::gen::<f64>(rng);
        let mut acc = 0.0;
        for i in 0..next.len() {
            acc += probability[i];
            if u < acc {
                return (next[i], reward[i]);
            }
        }
        (next[next.len() - 1], reward[reward.len() - 1])
    }
}

/// Per-sweep change statistics shared by all sweep-based solvers: the
/// sup-norm change and the signed span (used by relative value iteration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SweepStats {
    /// `max_s |new(s) − old(s)|`.
    pub max_abs: f64,
    /// `min_s (new(s) − old(s))`.
    pub lo: f64,
    /// `max_s (new(s) − old(s))`.
    pub hi: f64,
}

impl SweepStats {
    fn new() -> Self {
        SweepStats {
            max_abs: 0.0,
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
        }
    }

    #[inline]
    fn record(&mut self, delta: f64) {
        self.max_abs = self.max_abs.max(delta.abs());
        self.lo = self.lo.min(delta);
        self.hi = self.hi.max(delta);
    }
}

/// Lets the shared executor reduce per-chunk sweep stats across workers.
impl simkit::executor::RoundStat for SweepStats {
    fn identity() -> Self {
        SweepStats::new()
    }

    fn merge(&mut self, other: &Self) {
        self.max_abs = self.max_abs.max(other.max_abs);
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
    }
}

/// Result of a [`run_sweeps`] fixed-point loop.
pub(crate) struct SweepOutcome {
    /// Final iterate.
    pub values: Vec<f64>,
    /// Sweeps performed.
    pub sweeps: usize,
    /// Stats of the final sweep (max_abs is `INFINITY` when no sweep ran).
    pub last: SweepStats,
    /// Whether the epilogue signalled convergence.
    pub converged: bool,
}

/// Minimum states per worker before a sweep pool fans out (below this the
/// barrier synchronization dominates the backup work). The pool is
/// persistent across all rounds of one sweep loop — every value-iteration
/// sweep, policy-evaluation sweep, backward-induction stage, or
/// policy-iteration evaluate/improve round of that loop reuses it — so
/// spawn cost is amortized over the whole solve (one pool per solve for
/// every sweep-based solver; asserted by `tests/pool_per_solve.rs`).
pub(crate) const MIN_STATES_PER_WORKER: usize = 1024;

/// Shared Jacobi sweep loop: repeatedly computes `new[s] = backup(s, old)`
/// for every state, lets `epilogue` post-process the fresh iterate (e.g.
/// normalize it) and decide convergence, and stops at `max_sweeps`.
///
/// This is a thin domain adapter over [`simkit::executor::run_rounds`],
/// the workspace's single thread-pool implementation: one persistent
/// barrier-synchronized pool per solve, no per-sweep allocation, and a
/// schedule that is bit-for-bit identical to the serial loop (every backup
/// reads only the previous iterate).
pub(crate) fn run_sweeps(
    values: Vec<f64>,
    parallel: bool,
    max_sweeps: usize,
    backup: impl Fn(usize, &[f64]) -> f64 + Sync,
    epilogue: impl FnMut(&mut [f64], &SweepStats, usize) -> bool,
) -> SweepOutcome {
    let workers = simkit::executor::worker_count(values.len(), parallel, MIN_STATES_PER_WORKER);
    run_sweeps_on(values, workers, max_sweeps, backup, epilogue)
}

/// [`run_sweeps`] with an explicit worker count (tests use this to force
/// the pooled path on hosts whose CPU count would keep it serial).
pub(crate) fn run_sweeps_on(
    values: Vec<f64>,
    workers: usize,
    max_sweeps: usize,
    backup: impl Fn(usize, &[f64]) -> f64 + Sync,
    epilogue: impl FnMut(&mut [f64], &SweepStats, usize) -> bool,
) -> SweepOutcome {
    let outcome = simkit::executor::run_rounds(
        values,
        workers,
        max_sweeps,
        |s, old, stats: &mut SweepStats| {
            let backed = backup(s, old);
            stats.record(backed - old[s]);
            backed
        },
        epilogue,
    );
    SweepOutcome {
        values: outcome.values,
        sweeps: outcome.rounds,
        last: outcome.last.unwrap_or(SweepStats {
            max_abs: f64::INFINITY,
            ..SweepStats::new()
        }),
        converged: outcome.converged,
    }
}

/// States per cache block in [`run_sweeps_blocked`]. 1024 states × 8 bytes
/// keeps one block's output slice (8 KiB) plus the row data streaming
/// through it comfortably inside a 32 KiB L1d, while the full previous
/// iterate stays L2-resident for the gather. Block boundaries never move
/// work between threads (chunking by worker happens above the block loop),
/// so the result is bitwise independent of this constant.
pub(crate) const SWEEP_BLOCK: usize = 1024;

/// [`run_sweeps`] over block backups: `backup` fills a contiguous range of
/// the fresh iterate at once (e.g. [`CompiledMdp::backup_block`]), letting
/// the kernel stream CSR rows linearly instead of re-entering a closure per
/// state. Per-state change stats are recorded here, in state order, after
/// each block fills — the same order the per-element loop produces — so the
/// outcome is bit-identical to [`run_sweeps`] with the equivalent per-state
/// backup.
pub(crate) fn run_sweeps_blocked(
    values: Vec<f64>,
    parallel: bool,
    max_sweeps: usize,
    backup: impl Fn(std::ops::Range<usize>, &[f64], &mut [f64]) + Sync,
    epilogue: impl FnMut(&mut [f64], &SweepStats, usize) -> bool,
) -> SweepOutcome {
    let workers = simkit::executor::worker_count(values.len(), parallel, MIN_STATES_PER_WORKER);
    run_sweeps_blocked_on(values, workers, max_sweeps, backup, epilogue)
}

/// [`run_sweeps_blocked`] with an explicit worker count (tests use this to
/// force the pooled path on hosts whose CPU count would keep it serial).
pub(crate) fn run_sweeps_blocked_on(
    values: Vec<f64>,
    workers: usize,
    max_sweeps: usize,
    backup: impl Fn(std::ops::Range<usize>, &[f64], &mut [f64]) + Sync,
    epilogue: impl FnMut(&mut [f64], &SweepStats, usize) -> bool,
) -> SweepOutcome {
    let outcome = simkit::executor::run_rounds_blocked(
        values,
        workers,
        max_sweeps,
        SWEEP_BLOCK,
        |range, old, out, stats: &mut SweepStats| {
            backup(range.clone(), old, out);
            for (slot, s) in out.iter().zip(range) {
                stats.record(slot - old[s]);
            }
        },
        epilogue,
    );
    SweepOutcome {
        values: outcome.values,
        sweeps: outcome.rounds,
        last: outcome.last.unwrap_or(SweepStats {
            max_abs: f64::INFINITY,
            ..SweepStats::new()
        }),
        converged: outcome.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn compile_preserves_shape_and_rows() {
        let (model, _) = reference::gridworld(4, 4, 0.2);
        let compiled = CompiledMdp::compile(&model).unwrap();
        assert_eq!(compiled.n_states(), model.n_states());
        assert_eq!(compiled.n_actions(), model.n_actions());
        assert!(compiled.n_transitions() > 0);

        let mut want = Vec::new();
        let mut got = Vec::new();
        for s in 0..model.n_states() {
            for a in 0..model.n_actions() {
                model.transitions(s, a, &mut want);
                compiled.transitions(s, a, &mut got);
                assert_eq!(want, got, "row ({s}, {a})");
                assert_eq!(model.is_action_valid(s, a), compiled.is_valid(s, a));
                assert!(
                    (model.expected_reward(s, a) - CompiledMdp::expected_reward(&compiled, s, a))
                        .abs()
                        < 1e-12
                );
            }
        }
    }

    #[test]
    fn q_values_match_callback_path() {
        let (model, gamma) = reference::chain(6, 0.7);
        let compiled = CompiledMdp::compile(&model).unwrap();
        let values: Vec<f64> = (0..6).map(|s| s as f64 * 0.3 - 1.0).collect();
        let mut buf = Vec::new();
        for s in 0..6 {
            for a in 0..2 {
                let reference_q = crate::solver::q_value(&model, s, a, &values, gamma, &mut buf);
                let compiled_q = compiled.q_value(s, a, &values, gamma);
                match (reference_q, compiled_q) {
                    (None, None) => {}
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-12, "({s},{a}): {x} vs {y}"),
                    other => panic!("validity mismatch at ({s},{a}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn compile_rejects_bad_models() {
        use crate::model::FnMdp;
        // No states.
        let empty = FnMdp::new(0, 1, |_, _, _| {});
        assert!(matches!(
            CompiledMdp::compile(&empty),
            Err(MdpError::EmptyModel)
        ));
        // A state with no valid action.
        let stuck = FnMdp::new(2, 1, |s, _, out| {
            if s == 0 {
                out.push(Transition::new(0, 1.0, 0.0));
            }
        });
        assert!(matches!(
            CompiledMdp::compile(&stuck),
            Err(MdpError::BadDistribution { state: 1, .. })
        ));
        // Out-of-range destination.
        let escapee = FnMdp::new(1, 1, |_, _, out| out.push(Transition::new(7, 1.0, 0.0)));
        assert!(matches!(
            CompiledMdp::compile(&escapee),
            Err(MdpError::StateOutOfRange { state: 7, .. })
        ));
        // Non-finite probability.
        let nan = FnMdp::new(1, 1, |_, _, out| {
            out.push(Transition::new(0, f64::NAN, 0.0))
        });
        assert!(matches!(
            CompiledMdp::compile(&nan),
            Err(MdpError::NonFiniteEntry { .. })
        ));
    }

    #[test]
    fn sampling_is_distribution_faithful() {
        let (model, _) = reference::chain(5, 0.6);
        let compiled = CompiledMdp::compile(&model).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut forward = 0;
        let n = 20_000;
        for _ in 0..n {
            let (next, _) = compiled.sample(1, reference::CHAIN_FORWARD, &mut rng);
            if next == 2 {
                forward += 1;
            }
        }
        let frac = forward as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn greedy_and_residual_match_callback_versions() {
        let (model, gamma) = reference::gridworld(3, 4, 0.15);
        let compiled = CompiledMdp::compile(&model).unwrap();
        let values: Vec<f64> = (0..model.n_states())
            .map(|s| (s as f64 * 0.37).sin())
            .collect();
        let reference_policy = crate::solver::greedy_policy(&model, &values, gamma);
        let compiled_policy = compiled.greedy_policy(&values, gamma).unwrap();
        assert_eq!(reference_policy.actions(), compiled_policy.actions());
        let r1 = crate::solver::bellman_residual(&model, &values, gamma);
        let r2 = compiled.bellman_residual(&values, gamma);
        assert!((r1 - r2).abs() < 1e-10, "{r1} vs {r2}");
    }

    #[test]
    fn greedy_policy_rejects_wrong_length() {
        let (model, gamma) = reference::chain(5, 0.6);
        let compiled = CompiledMdp::compile(&model).unwrap();
        assert!(matches!(
            compiled.greedy_policy(&[0.0; 3], gamma),
            Err(MdpError::BadParameter { what: "values", .. })
        ));
    }

    /// The lane-padded gather reassociates the `Σ p·V(s')` reduction into
    /// [`LANES`] partial sums, so on rows with several transitions it may
    /// differ from the scalar left-to-right sum by rounding — but only by a
    /// few ulps, which this pins down across every (state, action) row of
    /// the multi-transition reference models. (Rows with a single
    /// transition, like the cache MDP's, are asserted bitwise equal.)
    #[test]
    fn lane_and_scalar_q_values_agree_to_ulps() {
        for (model, gamma) in [reference::gridworld(5, 7, 0.2), reference::chain(9, 0.55)] {
            let compiled = CompiledMdp::compile(&model).unwrap();
            let values: Vec<f64> = (0..model.n_states())
                .map(|s| (s as f64 * 0.61).cos() * 3.0)
                .collect();
            for s in 0..model.n_states() {
                for a in 0..model.n_actions() {
                    let lane = compiled.q_value(s, a, &values, gamma);
                    let scalar = compiled.q_value_scalar(s, a, &values, gamma);
                    match (lane, scalar) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            let row = s * compiled.n_actions() + a;
                            let n_tr = compiled.row_ptr[row + 1] - compiled.row_ptr[row];
                            if n_tr <= 1 {
                                assert_eq!(
                                    x.to_bits(),
                                    y.to_bits(),
                                    "single-transition row ({s},{a}) must be bitwise equal"
                                );
                            } else {
                                let ulps = x.to_bits().abs_diff(y.to_bits());
                                assert!(ulps <= 4, "({s},{a}): {x} vs {y} ({ulps} ulps apart)");
                            }
                        }
                        other => panic!("validity mismatch at ({s},{a}): {other:?}"),
                    }
                }
            }
        }
    }

    /// The blocked sweep loop must reproduce the per-state loop bitwise for
    /// any worker count: stats are recorded in the same state order and
    /// block boundaries never move work between threads.
    #[test]
    fn blocked_and_per_state_sweeps_agree_bitwise() {
        let (model, gamma) = reference::gridworld(20, 20, 0.1);
        let compiled = CompiledMdp::compile(&model).unwrap();
        let per_state = run_sweeps_on(
            vec![0.0; compiled.n_states()],
            1,
            40,
            |s, v| compiled.backup_state(s, v, gamma),
            |_, stats, _| stats.max_abs < 1e-9,
        );
        for workers in [1, 2, 5] {
            let blocked = run_sweeps_blocked_on(
                vec![0.0; compiled.n_states()],
                workers,
                40,
                |range, old, out| compiled.backup_block(range, old, out, gamma),
                |_, stats, _| stats.max_abs < 1e-9,
            );
            assert_eq!(per_state.sweeps, blocked.sweeps, "{workers} workers");
            assert_eq!(per_state.converged, blocked.converged);
            assert_eq!(
                per_state.values, blocked.values,
                "blocked iterate must be identical with {workers} workers"
            );
        }
    }

    /// Drives the sweep adapter with forced worker counts so the pooled
    /// code path is exercised even on single-CPU hosts (where the executor's
    /// automatic sizing correctly refuses to fan out).
    #[test]
    fn run_sweeps_serial_and_pooled_agree_bitwise() {
        let (model, gamma) = reference::gridworld(64, 64, 0.1);
        let compiled = CompiledMdp::compile(&model).unwrap();
        let backup = |s: usize, v: &[f64]| compiled.backup_state(s, v, gamma);
        let serial = run_sweeps_on(
            vec![0.0; compiled.n_states()],
            1,
            60,
            backup,
            |_, stats, _| stats.max_abs < 1e-9,
        );
        for workers in [2, 3, 7] {
            let pooled = run_sweeps_on(
                vec![0.0; compiled.n_states()],
                workers,
                60,
                backup,
                |_, stats, _| stats.max_abs < 1e-9,
            );
            assert_eq!(serial.sweeps, pooled.sweeps, "{workers} workers");
            assert_eq!(serial.converged, pooled.converged);
            assert_eq!(
                serial.values, pooled.values,
                "iterates must be identical with {workers} workers"
            );
        }
    }

    /// A panic inside a pool worker must surface as a panic on the calling
    /// thread, not leave the coordinator deadlocked on the barrier.
    #[cfg(feature = "parallel")]
    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let _ = run_sweeps_on(
            vec![0.0; 4096],
            3,
            5,
            |s, _| {
                if s == 1234 {
                    panic!("boom");
                }
                0.0
            },
            |_, _, _| false,
        );
    }
}
