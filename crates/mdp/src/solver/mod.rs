//! Solvers for finite MDPs.
//!
//! * [`ValueIteration`] — Bellman-optimality fixed point (the solver used for
//!   the paper's cache-management stage),
//! * [`PolicyIteration`] — Howard's algorithm,
//! * [`BackwardInduction`] — exact finite-horizon dynamic programming,
//! * [`RelativeValueIteration`] — average-reward (long-run gain) solving,
//! * [`QLearning`] / [`Sarsa`] — model-free tabular learners,
//! * [`evaluate_policy`] — iterative policy evaluation,
//! * [`bellman_residual`] — solution-quality diagnostic,
//! * [`stationary_distribution`] / [`policy_gain`] — induced-chain analysis.
//!
//! ## Compile-then-solve
//!
//! Every sweep-based solver runs its fixed-point iteration on a
//! [`crate::CompiledMdp`] CSR kernel: the generic
//! `solve(&impl FiniteMdp)` entry points compile the model once and forward
//! to the corresponding `solve_compiled(&CompiledMdp)` method, which
//! performs zero heap allocation per sweep and (with the `parallel`
//! feature) fans the per-state Bellman backup out across worker threads.
//! Callers who solve the same model repeatedly should compile it themselves
//! and call `solve_compiled` directly. The `solve_callback` methods retain
//! the original trait-callback implementations as a slow reference path for
//! differential tests and benchmarks.

mod finite_horizon;
mod policy_iteration;
mod q_learning;
mod relative_vi;
mod sarsa;
mod value_iteration;

pub use finite_horizon::{BackwardInduction, FiniteHorizonSolution};
pub use policy_iteration::{PolicyIteration, PolicyIterationOutcome};
pub use q_learning::{ExplorationSchedule, LearningRate, QLearning};
pub use relative_vi::{
    policy_gain, stationary_distribution, AverageRewardOutcome, RelativeValueIteration,
};
pub use sarsa::Sarsa;
pub use value_iteration::{ValueIteration, ValueIterationOutcome};

use crate::compiled::{run_sweeps, CompiledMdp};
use crate::model::{FiniteMdp, Transition};
use crate::policy::TabularPolicy;
use crate::MdpError;

/// Default parallelism of the sweep kernels: on when the `parallel` feature
/// is enabled (serial and parallel sweeps are bit-for-bit identical, so this
/// only affects speed).
pub(crate) const DEFAULT_PARALLEL: bool = cfg!(feature = "parallel");

/// Checks that `gamma` is a usable discount factor in `[0, 1)`.
pub(crate) fn validate_gamma(gamma: f64) -> Result<(), MdpError> {
    if !gamma.is_finite() || !(0.0..1.0).contains(&gamma) {
        return Err(MdpError::BadParameter {
            what: "gamma",
            valid: "[0, 1)",
        });
    }
    Ok(())
}

/// One-step lookahead value `Q(s, a) = Σ_s' p (r + γ V(s'))`, or `None` for
/// invalid actions (empty rows).
pub(crate) fn q_value<M: FiniteMdp>(
    mdp: &M,
    state: usize,
    action: usize,
    values: &[f64],
    gamma: f64,
    buf: &mut Vec<Transition>,
) -> Option<f64> {
    mdp.transitions(state, action, buf);
    if buf.is_empty() {
        return None;
    }
    Some(
        buf.iter()
            .map(|t| t.probability * (t.reward + gamma * values[t.next]))
            .sum(),
    )
}

/// Greedy policy with respect to a state-value function.
///
/// For each state picks `argmax_a Q(s, a)` over valid actions (ties break to
/// the lowest action index).
///
/// This is the trait-callback reference implementation; solver kernels use
/// the equivalent [`CompiledMdp::greedy_policy`] on the compiled form.
///
/// # Panics
///
/// Panics if `values.len() != mdp.n_states()` or a state has no valid action.
pub fn greedy_policy<M: FiniteMdp>(mdp: &M, values: &[f64], gamma: f64) -> TabularPolicy {
    assert_eq!(values.len(), mdp.n_states(), "value vector length mismatch");
    let mut buf = Vec::new();
    let actions = (0..mdp.n_states())
        .map(|s| {
            let mut best: Option<(usize, f64)> = None;
            for a in 0..mdp.n_actions() {
                if let Some(q) = q_value(mdp, s, a, values, gamma, &mut buf) {
                    if best.is_none_or(|(_, bq)| q > bq) {
                        best = Some((a, q));
                    }
                }
            }
            // lint:allow(panic-hygiene): models validate >= 1 valid action per
            // state at construction.
            best.expect("state must have at least one valid action").0
        })
        .collect();
    TabularPolicy::new(actions)
}

/// Sup-norm Bellman-optimality residual `‖T V − V‖_∞`: how far `values` is
/// from being the optimal fixed point. Zero (up to tolerance) certifies an
/// optimal value function.
///
/// This is the trait-callback reference implementation; use
/// [`CompiledMdp::bellman_residual`] when a compiled kernel is at hand.
pub fn bellman_residual<M: FiniteMdp>(mdp: &M, values: &[f64], gamma: f64) -> f64 {
    let mut buf = Vec::new();
    let mut residual: f64 = 0.0;
    for s in 0..mdp.n_states() {
        let mut best = f64::NEG_INFINITY;
        for a in 0..mdp.n_actions() {
            if let Some(q) = q_value(mdp, s, a, values, gamma, &mut buf) {
                best = best.max(q);
            }
        }
        residual = residual.max((best - values[s]).abs());
    }
    residual
}

/// Iterative policy evaluation: the value of following `policy` forever.
///
/// Compiles the model once and runs the allocation-free sweep kernel; when
/// a [`CompiledMdp`] is already at hand, call [`evaluate_policy_compiled`]
/// to skip the compilation.
///
/// # Errors
///
/// Returns [`MdpError::BadParameter`] for an invalid `gamma` and
/// [`MdpError::NotConverged`] if the sweep cap is hit first.
pub fn evaluate_policy<M: FiniteMdp>(
    mdp: &M,
    policy: &TabularPolicy,
    gamma: f64,
    tolerance: f64,
    max_sweeps: usize,
) -> Result<Vec<f64>, MdpError> {
    validate_gamma(gamma)?;
    let compiled = CompiledMdp::compile(mdp)?;
    evaluate_policy_compiled(
        &compiled,
        policy,
        gamma,
        tolerance,
        max_sweeps,
        DEFAULT_PARALLEL,
    )
}

/// [`evaluate_policy`] on a pre-compiled kernel: zero heap allocation per
/// sweep, parallel across states when `parallel` holds and the model is
/// large enough.
///
/// # Errors
///
/// Returns [`MdpError::BadParameter`] for an invalid `gamma` and
/// [`MdpError::NotConverged`] if the sweep cap is hit first.
///
/// # Panics
///
/// Panics if the policy's state count differs from the model's or it picks
/// an invalid action.
pub fn evaluate_policy_compiled(
    mdp: &CompiledMdp,
    policy: &TabularPolicy,
    gamma: f64,
    tolerance: f64,
    max_sweeps: usize,
    parallel: bool,
) -> Result<Vec<f64>, MdpError> {
    validate_gamma(gamma)?;
    assert_eq!(
        policy.n_states(),
        mdp.n_states(),
        "policy/model state-count mismatch"
    );
    evaluate_actions_compiled(
        mdp,
        policy.actions(),
        gamma,
        tolerance,
        max_sweeps,
        parallel,
    )
}

/// Sweep kernel behind [`evaluate_policy_compiled`], operating on a bare
/// action table. (Policy iteration no longer calls this — it runs its
/// evaluations inside its own single solve-wide sweep loop.)
pub(crate) fn evaluate_actions_compiled(
    mdp: &CompiledMdp,
    actions: &[usize],
    gamma: f64,
    tolerance: f64,
    max_sweeps: usize,
    parallel: bool,
) -> Result<Vec<f64>, MdpError> {
    // Validate up front (on this thread, with a precise message) so the
    // sweep backup closure below cannot panic inside a pool worker.
    for (s, &a) in actions.iter().enumerate() {
        assert!(
            a < mdp.n_actions() && mdp.is_valid(s, a),
            "policy picks invalid action {a} in state {s}"
        );
    }
    let outcome = run_sweeps(
        vec![0.0; mdp.n_states()],
        parallel,
        max_sweeps,
        |s, values| {
            mdp.q_value(s, actions[s], values, gamma)
                // lint:allow(panic-hygiene): the policy was produced by this
                // solver over the same model, so its actions are valid.
                .expect("policy must choose valid actions")
        },
        |_, stats, _| stats.max_abs < tolerance,
    );
    if outcome.converged {
        Ok(outcome.values)
    } else {
        Err(MdpError::NotConverged {
            iterations: max_sweeps,
            residual: mdp.bellman_residual(&outcome.values, gamma),
        })
    }
}

/// Trait-callback reference implementation of policy evaluation
/// (Gauss–Seidel, in-place), kept for differential testing against the
/// compiled kernel.
pub(crate) fn evaluate_policy_callback<M: FiniteMdp>(
    mdp: &M,
    policy: &TabularPolicy,
    gamma: f64,
    tolerance: f64,
    max_sweeps: usize,
) -> Result<Vec<f64>, MdpError> {
    validate_gamma(gamma)?;
    assert_eq!(
        policy.n_states(),
        mdp.n_states(),
        "policy/model state-count mismatch"
    );
    let mut values = vec![0.0; mdp.n_states()];
    let mut buf = Vec::new();
    for sweep in 0..max_sweeps {
        let mut delta: f64 = 0.0;
        for s in 0..mdp.n_states() {
            let a = policy.action(s);
            let q = q_value(mdp, s, a, &values, gamma, &mut buf)
                // lint:allow(panic-hygiene): the policy was produced by this
                // solver over the same model, so its actions are valid.
                .expect("policy must choose valid actions");
            delta = delta.max((q - values[s]).abs());
            values[s] = q;
        }
        if delta < tolerance {
            return Ok(values);
        }
        let _ = sweep;
    }
    Err(MdpError::NotConverged {
        iterations: max_sweeps,
        residual: bellman_residual(mdp, &values, gamma),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn greedy_policy_on_two_state() {
        let (mdp, gamma) = reference::two_state();
        // Optimal values from the closed form.
        let v1 = 1.0 / (1.0 - gamma);
        let v0 = gamma * v1;
        let policy = greedy_policy(&mdp, &[v0, v1], gamma);
        assert_eq!(policy.action(0), 1, "state 0 should jump to state 1");
    }

    #[test]
    fn bellman_residual_zero_at_fixed_point() {
        let (mdp, gamma) = reference::two_state();
        let v1 = 1.0 / (1.0 - gamma);
        let v0 = gamma * v1;
        assert!(bellman_residual(&mdp, &[v0, v1], gamma) < 1e-9);
        assert!(bellman_residual(&mdp, &[0.0, 0.0], gamma) > 0.5);
    }

    #[test]
    fn evaluate_policy_matches_closed_form() {
        let (mdp, gamma) = reference::two_state();
        // Policy: always action 1 (optimal).
        let policy = TabularPolicy::new(vec![1, 0]);
        let values = evaluate_policy(&mdp, &policy, gamma, 1e-12, 10_000).unwrap();
        let v1 = 1.0 / (1.0 - gamma);
        assert!((values[1] - v1).abs() < 1e-6, "v1 {} vs {}", values[1], v1);
        assert!((values[0] - gamma * v1).abs() < 1e-6);
    }

    #[test]
    fn evaluate_policy_rejects_bad_gamma() {
        let (mdp, _) = reference::two_state();
        let policy = TabularPolicy::new(vec![0, 0]);
        assert!(evaluate_policy(&mdp, &policy, 1.0, 1e-6, 10).is_err());
        assert!(evaluate_policy(&mdp, &policy, -0.1, 1e-6, 10).is_err());
    }

    #[test]
    fn evaluate_policy_reports_non_convergence() {
        let (mdp, gamma) = reference::two_state();
        let policy = TabularPolicy::new(vec![1, 0]);
        let err = evaluate_policy(&mdp, &policy, gamma, 1e-12, 1).unwrap_err();
        assert!(matches!(err, MdpError::NotConverged { iterations: 1, .. }));
    }
}
