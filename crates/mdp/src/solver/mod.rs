//! Solvers for finite MDPs.
//!
//! * [`ValueIteration`] — Bellman-optimality fixed point (the solver used for
//!   the paper's cache-management stage),
//! * [`PolicyIteration`] — Howard's algorithm,
//! * [`BackwardInduction`] — exact finite-horizon dynamic programming,
//! * [`RelativeValueIteration`] — average-reward (long-run gain) solving,
//! * [`QLearning`] / [`Sarsa`] — model-free tabular learners,
//! * [`evaluate_policy`] — iterative policy evaluation,
//! * [`bellman_residual`] — solution-quality diagnostic,
//! * [`stationary_distribution`] / [`policy_gain`] — induced-chain analysis.

mod finite_horizon;
mod policy_iteration;
mod q_learning;
mod relative_vi;
mod sarsa;
mod value_iteration;

pub use finite_horizon::{BackwardInduction, FiniteHorizonSolution};
pub use policy_iteration::{PolicyIteration, PolicyIterationOutcome};
pub use q_learning::{ExplorationSchedule, LearningRate, QLearning};
pub use relative_vi::{
    policy_gain, stationary_distribution, AverageRewardOutcome, RelativeValueIteration,
};
pub use sarsa::Sarsa;
pub use value_iteration::{ValueIteration, ValueIterationOutcome};

use crate::model::{FiniteMdp, Transition};
use crate::policy::TabularPolicy;
use crate::MdpError;

/// Checks that `gamma` is a usable discount factor in `[0, 1)`.
pub(crate) fn validate_gamma(gamma: f64) -> Result<(), MdpError> {
    if !gamma.is_finite() || !(0.0..1.0).contains(&gamma) {
        return Err(MdpError::BadParameter {
            what: "gamma",
            valid: "[0, 1)",
        });
    }
    Ok(())
}

/// One-step lookahead value `Q(s, a) = Σ_s' p (r + γ V(s'))`, or `None` for
/// invalid actions (empty rows).
pub(crate) fn q_value<M: FiniteMdp>(
    mdp: &M,
    state: usize,
    action: usize,
    values: &[f64],
    gamma: f64,
    buf: &mut Vec<Transition>,
) -> Option<f64> {
    mdp.transitions(state, action, buf);
    if buf.is_empty() {
        return None;
    }
    Some(
        buf.iter()
            .map(|t| t.probability * (t.reward + gamma * values[t.next]))
            .sum(),
    )
}

/// Greedy policy with respect to a state-value function.
///
/// For each state picks `argmax_a Q(s, a)` over valid actions (ties break to
/// the lowest action index).
///
/// # Panics
///
/// Panics if `values.len() != mdp.n_states()` or a state has no valid action.
pub fn greedy_policy<M: FiniteMdp>(mdp: &M, values: &[f64], gamma: f64) -> TabularPolicy {
    assert_eq!(values.len(), mdp.n_states(), "value vector length mismatch");
    let mut buf = Vec::new();
    let actions = (0..mdp.n_states())
        .map(|s| {
            let mut best: Option<(usize, f64)> = None;
            for a in 0..mdp.n_actions() {
                if let Some(q) = q_value(mdp, s, a, values, gamma, &mut buf) {
                    if best.is_none_or(|(_, bq)| q > bq) {
                        best = Some((a, q));
                    }
                }
            }
            best.expect("state must have at least one valid action").0
        })
        .collect();
    TabularPolicy::new(actions)
}

/// Sup-norm Bellman-optimality residual `‖T V − V‖_∞`: how far `values` is
/// from being the optimal fixed point. Zero (up to tolerance) certifies an
/// optimal value function.
pub fn bellman_residual<M: FiniteMdp>(mdp: &M, values: &[f64], gamma: f64) -> f64 {
    let mut buf = Vec::new();
    let mut residual: f64 = 0.0;
    for s in 0..mdp.n_states() {
        let mut best = f64::NEG_INFINITY;
        for a in 0..mdp.n_actions() {
            if let Some(q) = q_value(mdp, s, a, values, gamma, &mut buf) {
                best = best.max(q);
            }
        }
        residual = residual.max((best - values[s]).abs());
    }
    residual
}

/// Iterative policy evaluation: the value of following `policy` forever.
///
/// # Errors
///
/// Returns [`MdpError::BadParameter`] for an invalid `gamma` and
/// [`MdpError::NotConverged`] if the sweep cap is hit first.
pub fn evaluate_policy<M: FiniteMdp>(
    mdp: &M,
    policy: &TabularPolicy,
    gamma: f64,
    tolerance: f64,
    max_sweeps: usize,
) -> Result<Vec<f64>, MdpError> {
    validate_gamma(gamma)?;
    assert_eq!(
        policy.n_states(),
        mdp.n_states(),
        "policy/model state-count mismatch"
    );
    let mut values = vec![0.0; mdp.n_states()];
    let mut buf = Vec::new();
    for sweep in 0..max_sweeps {
        let mut delta: f64 = 0.0;
        for s in 0..mdp.n_states() {
            let a = policy.action(s);
            let q = q_value(mdp, s, a, &values, gamma, &mut buf)
                .expect("policy must choose valid actions");
            delta = delta.max((q - values[s]).abs());
            values[s] = q;
        }
        if delta < tolerance {
            return Ok(values);
        }
        let _ = sweep;
    }
    Err(MdpError::NotConverged {
        iterations: max_sweeps,
        residual: bellman_residual(mdp, &values, gamma),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn greedy_policy_on_two_state() {
        let (mdp, gamma) = reference::two_state();
        // Optimal values from the closed form.
        let v1 = 1.0 / (1.0 - gamma);
        let v0 = gamma * v1;
        let policy = greedy_policy(&mdp, &[v0, v1], gamma);
        assert_eq!(policy.action(0), 1, "state 0 should jump to state 1");
    }

    #[test]
    fn bellman_residual_zero_at_fixed_point() {
        let (mdp, gamma) = reference::two_state();
        let v1 = 1.0 / (1.0 - gamma);
        let v0 = gamma * v1;
        assert!(bellman_residual(&mdp, &[v0, v1], gamma) < 1e-9);
        assert!(bellman_residual(&mdp, &[0.0, 0.0], gamma) > 0.5);
    }

    #[test]
    fn evaluate_policy_matches_closed_form() {
        let (mdp, gamma) = reference::two_state();
        // Policy: always action 1 (optimal).
        let policy = TabularPolicy::new(vec![1, 0]);
        let values = evaluate_policy(&mdp, &policy, gamma, 1e-12, 10_000).unwrap();
        let v1 = 1.0 / (1.0 - gamma);
        assert!((values[1] - v1).abs() < 1e-6, "v1 {} vs {}", values[1], v1);
        assert!((values[0] - gamma * v1).abs() < 1e-6);
    }

    #[test]
    fn evaluate_policy_rejects_bad_gamma() {
        let (mdp, _) = reference::two_state();
        let policy = TabularPolicy::new(vec![0, 0]);
        assert!(evaluate_policy(&mdp, &policy, 1.0, 1e-6, 10).is_err());
        assert!(evaluate_policy(&mdp, &policy, -0.1, 1e-6, 10).is_err());
    }

    #[test]
    fn evaluate_policy_reports_non_convergence() {
        let (mdp, gamma) = reference::two_state();
        let policy = TabularPolicy::new(vec![1, 0]);
        let err = evaluate_policy(&mdp, &policy, gamma, 1e-12, 1).unwrap_err();
        assert!(matches!(err, MdpError::NotConverged { iterations: 1, .. }));
    }
}
