//! Value iteration (Bellman-optimality fixed point).

use crate::compiled::{run_sweeps_blocked, CompiledMdp};
use crate::model::FiniteMdp;
use crate::policy::TabularPolicy;
use crate::solver::{greedy_policy, q_value, validate_gamma, DEFAULT_PARALLEL};
use crate::MdpError;
use serde::{Deserialize, Serialize};

/// Configuration for value iteration.
///
/// [`solve`](ValueIteration::solve) compiles the model into a
/// [`CompiledMdp`] CSR kernel and iterates on the flat arrays; use
/// [`solve_compiled`](ValueIteration::solve_compiled) to reuse an existing
/// kernel across solves.
///
/// ```
/// use mdp::solver::ValueIteration;
/// use mdp::reference;
///
/// let (mdp, gamma) = reference::two_state();
/// let outcome = ValueIteration::new(gamma).solve(&mdp).unwrap();
/// assert!(outcome.converged);
/// let v1 = 1.0 / (1.0 - gamma);
/// assert!((outcome.values[1] - v1).abs() < 1e-6);
/// assert_eq!(outcome.policy.action(0), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueIteration {
    /// Discount factor in `[0, 1)`.
    pub gamma: f64,
    /// Stop once the sup-norm change of one sweep falls below this.
    pub tolerance: f64,
    /// Hard cap on sweeps.
    pub max_sweeps: usize,
    /// Whether sweeps may fan out across worker threads (identical results
    /// either way; defaults to the `parallel` feature).
    pub parallel: bool,
}

impl ValueIteration {
    /// Creates a solver with defaults `tolerance = 1e-9`,
    /// `max_sweeps = 10_000`.
    pub fn new(gamma: f64) -> Self {
        ValueIteration {
            gamma,
            tolerance: 1e-9,
            max_sweeps: 10_000,
            parallel: DEFAULT_PARALLEL,
        }
    }

    /// Sets the convergence tolerance.
    #[must_use]
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the sweep cap.
    #[must_use]
    pub fn max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Enables or disables parallel sweeps.
    #[must_use]
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Runs value iteration to the Bellman-optimality fixed point.
    ///
    /// Compiles the model once, then iterates on the CSR kernel. Returns the
    /// final iterate even when the sweep cap was reached
    /// (`converged == false`), so callers can inspect partial progress.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadParameter`] if `gamma ∉ [0, 1)`, or a
    /// compilation error ([`MdpError::EmptyModel`] and friends) for
    /// malformed models.
    pub fn solve<M: FiniteMdp>(&self, mdp: &M) -> Result<ValueIterationOutcome, MdpError> {
        validate_gamma(self.gamma)?;
        let compiled = CompiledMdp::compile(mdp)?;
        self.solve_compiled(&compiled)
    }

    /// Runs value iteration on a pre-compiled kernel: zero heap allocation
    /// per sweep, per-state backups parallelized across worker threads when
    /// [`parallel`](ValueIteration::parallel) holds and the model is large
    /// enough.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadParameter`] if `gamma ∉ [0, 1)`.
    pub fn solve_compiled(&self, mdp: &CompiledMdp) -> Result<ValueIterationOutcome, MdpError> {
        validate_gamma(self.gamma)?;
        let gamma = self.gamma;
        let tolerance = self.tolerance;
        let outcome = run_sweeps_blocked(
            vec![0.0; mdp.n_states()],
            self.parallel,
            self.max_sweeps,
            |states, values, out| mdp.backup_block(states, values, out, gamma),
            |_, stats, _| stats.max_abs < tolerance,
        );
        let policy = mdp.greedy_policy(&outcome.values, gamma)?;
        Ok(ValueIterationOutcome {
            converged: outcome.converged,
            sweeps: outcome.sweeps,
            residual: outcome.last.max_abs,
            values: outcome.values,
            policy,
        })
    }

    /// Trait-callback reference implementation (Gauss–Seidel, in-place),
    /// kept for differential testing and benchmarking against the compiled
    /// kernel.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadParameter`] if `gamma ∉ [0, 1)` or the model is
    /// empty.
    pub fn solve_callback<M: FiniteMdp>(&self, mdp: &M) -> Result<ValueIterationOutcome, MdpError> {
        validate_gamma(self.gamma)?;
        if mdp.n_states() == 0 || mdp.n_actions() == 0 {
            return Err(MdpError::EmptyModel);
        }
        let mut values = vec![0.0; mdp.n_states()];
        let mut buf = Vec::new();
        let mut sweeps = 0;
        let mut delta = f64::INFINITY;
        while sweeps < self.max_sweeps {
            sweeps += 1;
            delta = 0.0;
            for s in 0..mdp.n_states() {
                let mut best = f64::NEG_INFINITY;
                for a in 0..mdp.n_actions() {
                    if let Some(q) = q_value(mdp, s, a, &values, self.gamma, &mut buf) {
                        best = best.max(q);
                    }
                }
                debug_assert!(
                    best.is_finite(),
                    "state {s} has no valid action or non-finite backup"
                );
                delta = delta.max((best - values[s]).abs());
                values[s] = best;
            }
            if delta < self.tolerance {
                break;
            }
        }
        let policy = greedy_policy(mdp, &values, self.gamma);
        Ok(ValueIterationOutcome {
            converged: delta < self.tolerance,
            sweeps,
            residual: delta,
            values,
            policy,
        })
    }
}

/// Result of a [`ValueIteration`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueIterationOutcome {
    /// Optimal (or best-found) state values.
    pub values: Vec<f64>,
    /// Greedy policy with respect to `values`.
    pub policy: TabularPolicy,
    /// Whether the tolerance was reached within the sweep cap.
    pub converged: bool,
    /// Sweeps performed.
    pub sweeps: usize,
    /// Final sup-norm sweep change.
    pub residual: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::solver::bellman_residual;

    #[test]
    fn two_state_closed_form() {
        let (mdp, gamma) = reference::two_state();
        let out = ValueIteration::new(gamma)
            .tolerance(1e-12)
            .solve(&mdp)
            .unwrap();
        assert!(out.converged);
        let v1 = 1.0 / (1.0 - gamma);
        assert!((out.values[1] - v1).abs() < 1e-6);
        assert!((out.values[0] - gamma * v1).abs() < 1e-6);
        assert_eq!(out.policy.action(0), 1);
    }

    #[test]
    fn chain_prefers_forward_action() {
        let (mdp, gamma) = reference::chain(8, 0.9);
        let out = ValueIteration::new(gamma).solve(&mdp).unwrap();
        assert!(out.converged);
        // Values must increase toward the rewarding end of the chain.
        for s in 1..8 {
            assert!(
                out.values[s] >= out.values[s - 1] - 1e-9,
                "values should be monotone along the chain"
            );
        }
        // Every interior state should walk forward.
        for s in 0..7 {
            assert_eq!(out.policy.action(s), reference::CHAIN_FORWARD);
        }
    }

    #[test]
    fn residual_certifies_solution() {
        let (mdp, gamma) = reference::gridworld(4, 4, 0.1);
        let out = ValueIteration::new(gamma)
            .tolerance(1e-10)
            .solve(&mdp)
            .unwrap();
        // ||TV - V|| <= tolerance * small factor near the fixed point.
        assert!(bellman_residual(&mdp, &out.values, gamma) < 1e-8);
    }

    #[test]
    fn sweep_cap_reports_partial() {
        let (mdp, gamma) = reference::chain(16, 0.99);
        let out = ValueIteration::new(gamma)
            .tolerance(1e-12)
            .max_sweeps(2)
            .solve(&mdp)
            .unwrap();
        assert!(!out.converged);
        assert_eq!(out.sweeps, 2);
        assert!(out.residual > 0.0);
    }

    #[test]
    fn rejects_bad_gamma() {
        let (mdp, _) = reference::two_state();
        assert!(ValueIteration::new(1.0).solve(&mdp).is_err());
        assert!(ValueIteration::new(f64::NAN).solve(&mdp).is_err());
    }

    #[test]
    fn gamma_zero_is_myopic() {
        let (mdp, _) = reference::two_state();
        let out = ValueIteration::new(0.0).solve(&mdp).unwrap();
        // With no lookahead the value equals the best immediate reward.
        assert_eq!(out.values[1], 1.0);
        assert_eq!(out.values[0], 0.0);
    }
}
