//! Howard policy iteration.

use crate::compiled::CompiledMdp;
use crate::model::FiniteMdp;
use crate::policy::TabularPolicy;
use crate::solver::{
    evaluate_actions_compiled, evaluate_policy_callback, q_value, validate_gamma, DEFAULT_PARALLEL,
};
use crate::MdpError;
use serde::{Deserialize, Serialize};

/// Configuration for policy iteration (policy evaluation + greedy
/// improvement until the policy is stable).
///
/// [`solve`](PolicyIteration::solve) compiles the model into a
/// [`CompiledMdp`] once; every inner evaluation sweep and improvement pass
/// then runs on the flat CSR arrays.
///
/// ```
/// use mdp::solver::PolicyIteration;
/// use mdp::reference;
///
/// let (mdp, gamma) = reference::two_state();
/// let outcome = PolicyIteration::new(gamma).solve(&mdp).unwrap();
/// assert_eq!(outcome.policy.action(0), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyIteration {
    /// Discount factor in `[0, 1)`.
    pub gamma: f64,
    /// Tolerance for the inner policy-evaluation sweeps.
    pub eval_tolerance: f64,
    /// Sweep cap for each inner policy evaluation.
    pub max_eval_sweeps: usize,
    /// Cap on improvement rounds.
    pub max_improvements: usize,
    /// Whether evaluation sweeps may fan out across worker threads
    /// (identical results either way; defaults to the `parallel` feature).
    pub parallel: bool,
}

impl PolicyIteration {
    /// Creates a solver with defaults `eval_tolerance = 1e-10`,
    /// `max_eval_sweeps = 10_000`, `max_improvements = 1_000`.
    pub fn new(gamma: f64) -> Self {
        PolicyIteration {
            gamma,
            eval_tolerance: 1e-10,
            max_eval_sweeps: 10_000,
            max_improvements: 1_000,
            parallel: DEFAULT_PARALLEL,
        }
    }

    /// Sets the inner evaluation tolerance.
    #[must_use]
    pub fn eval_tolerance(mut self, tolerance: f64) -> Self {
        self.eval_tolerance = tolerance;
        self
    }

    /// Sets the improvement-round cap.
    #[must_use]
    pub fn max_improvements(mut self, max_improvements: usize) -> Self {
        self.max_improvements = max_improvements;
        self
    }

    /// Enables or disables parallel evaluation sweeps.
    #[must_use]
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Runs policy iteration from the all-first-valid-action policy.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadParameter`] for an invalid `gamma`, a
    /// compilation error ([`MdpError::EmptyModel`] and friends) for
    /// malformed models, or [`MdpError::NotConverged`] if an inner
    /// evaluation fails to converge.
    pub fn solve<M: FiniteMdp>(&self, mdp: &M) -> Result<PolicyIterationOutcome, MdpError> {
        validate_gamma(self.gamma)?;
        let compiled = CompiledMdp::compile(mdp)?;
        self.solve_compiled(&compiled)
    }

    /// Runs policy iteration on a pre-compiled kernel.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadParameter`] for an invalid `gamma` or
    /// [`MdpError::NotConverged`] if an inner evaluation fails to converge.
    pub fn solve_compiled(&self, mdp: &CompiledMdp) -> Result<PolicyIterationOutcome, MdpError> {
        validate_gamma(self.gamma)?;
        let n = mdp.n_states();
        // Initial policy: lowest valid action per state (compilation
        // guarantees one exists).
        let mut actions: Vec<usize> = (0..n)
            .map(|s| {
                (0..mdp.n_actions())
                    .find(|&a| mdp.is_valid(s, a))
                    .expect("compiled models have a valid action per state")
            })
            .collect();
        let mut improved = vec![0usize; n];
        let mut rounds = 0;

        loop {
            rounds += 1;
            let values = evaluate_actions_compiled(
                mdp,
                &actions,
                self.gamma,
                self.eval_tolerance,
                self.max_eval_sweeps,
                self.parallel,
            )?;

            let mut stable = true;
            for s in 0..n {
                let current = actions[s];
                let mut best_a = current;
                let mut best_q = mdp
                    .q_value(s, current, &values, self.gamma)
                    .expect("current policy action must be valid");
                for a in 0..mdp.n_actions() {
                    if a == current {
                        continue;
                    }
                    if let Some(q) = mdp.q_value(s, a, &values, self.gamma) {
                        // Strict improvement margin avoids oscillating on ties.
                        if q > best_q + 1e-12 {
                            best_q = q;
                            best_a = a;
                        }
                    }
                }
                if best_a != current {
                    stable = false;
                }
                improved[s] = best_a;
            }
            std::mem::swap(&mut actions, &mut improved);
            if stable || rounds >= self.max_improvements {
                return Ok(PolicyIterationOutcome {
                    converged: stable,
                    rounds,
                    values,
                    policy: TabularPolicy::new(actions),
                });
            }
        }
    }

    /// Trait-callback reference implementation, kept for differential
    /// testing and benchmarking against the compiled kernel.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve`](PolicyIteration::solve).
    pub fn solve_callback<M: FiniteMdp>(
        &self,
        mdp: &M,
    ) -> Result<PolicyIterationOutcome, MdpError> {
        validate_gamma(self.gamma)?;
        if mdp.n_states() == 0 || mdp.n_actions() == 0 {
            return Err(MdpError::EmptyModel);
        }
        // Initial policy: lowest valid action per state.
        let mut actions = Vec::with_capacity(mdp.n_states());
        for s in 0..mdp.n_states() {
            let a = (0..mdp.n_actions())
                .find(|&a| mdp.is_action_valid(s, a))
                .ok_or(MdpError::BadDistribution {
                    state: s,
                    action: 0,
                    mass: 0.0,
                })?;
            actions.push(a);
        }
        let mut policy = TabularPolicy::new(actions);
        let mut buf = Vec::new();
        let mut values = vec![0.0; mdp.n_states()];
        let mut rounds = 0;

        loop {
            rounds += 1;
            values = evaluate_policy_callback(
                mdp,
                &policy,
                self.gamma,
                self.eval_tolerance,
                self.max_eval_sweeps,
            )?;

            let mut stable = true;
            let mut improved = Vec::with_capacity(mdp.n_states());
            for s in 0..mdp.n_states() {
                let current = policy.action(s);
                let mut best_a = current;
                let mut best_q = q_value(mdp, s, current, &values, self.gamma, &mut buf)
                    .expect("current policy action must be valid");
                for a in 0..mdp.n_actions() {
                    if a == current {
                        continue;
                    }
                    if let Some(q) = q_value(mdp, s, a, &values, self.gamma, &mut buf) {
                        // Strict improvement margin avoids oscillating on ties.
                        if q > best_q + 1e-12 {
                            best_q = q;
                            best_a = a;
                        }
                    }
                }
                if best_a != current {
                    stable = false;
                }
                improved.push(best_a);
            }
            policy = TabularPolicy::new(improved);
            if stable || rounds >= self.max_improvements {
                return Ok(PolicyIterationOutcome {
                    converged: stable,
                    rounds,
                    values,
                    policy,
                });
            }
        }
    }
}

/// Result of a [`PolicyIteration`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyIterationOutcome {
    /// Values of the final policy.
    pub values: Vec<f64>,
    /// The final (optimal if `converged`) policy.
    pub policy: TabularPolicy,
    /// Whether the policy became stable within the round cap.
    pub converged: bool,
    /// Improvement rounds performed.
    pub rounds: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::solver::ValueIteration;

    #[test]
    fn agrees_with_value_iteration_on_two_state() {
        let (mdp, gamma) = reference::two_state();
        let pi = PolicyIteration::new(gamma).solve(&mdp).unwrap();
        let vi = ValueIteration::new(gamma)
            .tolerance(1e-12)
            .solve(&mdp)
            .unwrap();
        assert!(pi.converged);
        assert_eq!(pi.policy.actions(), vi.policy.actions());
        for (a, b) in pi.values.iter().zip(&vi.values) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn agrees_with_value_iteration_on_gridworld() {
        let (mdp, gamma) = reference::gridworld(4, 3, 0.15);
        let pi = PolicyIteration::new(gamma).solve(&mdp).unwrap();
        let vi = ValueIteration::new(gamma)
            .tolerance(1e-12)
            .solve(&mdp)
            .unwrap();
        assert!(pi.converged);
        for (a, b) in pi.values.iter().zip(&vi.values) {
            assert!((a - b).abs() < 1e-5, "value mismatch {a} vs {b}");
        }
    }

    #[test]
    fn converges_in_few_rounds_on_chain() {
        let (mdp, gamma) = reference::chain(10, 0.9);
        let out = PolicyIteration::new(gamma).solve(&mdp).unwrap();
        assert!(out.converged);
        // PI is famously fast: rounds should be far below the state count.
        assert!(out.rounds <= 10, "rounds was {}", out.rounds);
    }

    #[test]
    fn rejects_bad_gamma() {
        let (mdp, _) = reference::two_state();
        assert!(PolicyIteration::new(2.0).solve(&mdp).is_err());
    }
}
