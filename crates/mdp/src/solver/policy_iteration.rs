//! Howard policy iteration.

use crate::compiled::{run_sweeps, CompiledMdp};
use crate::model::FiniteMdp;
use crate::policy::TabularPolicy;
use crate::solver::{evaluate_policy_callback, q_value, validate_gamma, DEFAULT_PARALLEL};
use crate::MdpError;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration for policy iteration (policy evaluation + greedy
/// improvement until the policy is stable).
///
/// [`solve`](PolicyIteration::solve) compiles the model into a
/// [`CompiledMdp`] once; every inner evaluation sweep and improvement pass
/// then runs on the flat CSR arrays.
///
/// ```
/// use mdp::solver::PolicyIteration;
/// use mdp::reference;
///
/// let (mdp, gamma) = reference::two_state();
/// let outcome = PolicyIteration::new(gamma).solve(&mdp).unwrap();
/// assert_eq!(outcome.policy.action(0), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyIteration {
    /// Discount factor in `[0, 1)`.
    pub gamma: f64,
    /// Tolerance for the inner policy-evaluation sweeps.
    pub eval_tolerance: f64,
    /// Sweep cap for each inner policy evaluation.
    pub max_eval_sweeps: usize,
    /// Cap on improvement rounds.
    pub max_improvements: usize,
    /// Whether evaluation sweeps may fan out across worker threads
    /// (identical results either way; defaults to the `parallel` feature).
    pub parallel: bool,
}

impl PolicyIteration {
    /// Creates a solver with defaults `eval_tolerance = 1e-10`,
    /// `max_eval_sweeps = 10_000`, `max_improvements = 1_000`.
    pub fn new(gamma: f64) -> Self {
        PolicyIteration {
            gamma,
            eval_tolerance: 1e-10,
            max_eval_sweeps: 10_000,
            max_improvements: 1_000,
            parallel: DEFAULT_PARALLEL,
        }
    }

    /// Sets the inner evaluation tolerance.
    #[must_use]
    pub fn eval_tolerance(mut self, tolerance: f64) -> Self {
        self.eval_tolerance = tolerance;
        self
    }

    /// Sets the improvement-round cap.
    #[must_use]
    pub fn max_improvements(mut self, max_improvements: usize) -> Self {
        self.max_improvements = max_improvements;
        self
    }

    /// Enables or disables parallel evaluation sweeps.
    #[must_use]
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Runs policy iteration from the all-first-valid-action policy.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadParameter`] for an invalid `gamma`, a
    /// compilation error ([`MdpError::EmptyModel`] and friends) for
    /// malformed models, or [`MdpError::NotConverged`] if an inner
    /// evaluation fails to converge.
    pub fn solve<M: FiniteMdp>(&self, mdp: &M) -> Result<PolicyIterationOutcome, MdpError> {
        validate_gamma(self.gamma)?;
        let compiled = CompiledMdp::compile(mdp)?;
        self.solve_compiled(&compiled)
    }

    /// Runs policy iteration on a pre-compiled kernel.
    ///
    /// The whole solve — every evaluation sweep of every improvement round
    /// — runs inside **one** `run_sweeps` loop (one persistent worker
    /// pool per solve, like value iteration and backward induction): the
    /// sweep backup evaluates the current policy's actions, and the
    /// coordinator epilogue detects evaluation convergence, improves the
    /// policy greedily in place, and restarts the evaluation from zero —
    /// reproducing the classical evaluate/improve rounds bit for bit while
    /// allocating nothing per round.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::BadParameter`] for an invalid `gamma` or
    /// [`MdpError::NotConverged`] if an inner evaluation fails to converge.
    pub fn solve_compiled(&self, mdp: &CompiledMdp) -> Result<PolicyIterationOutcome, MdpError> {
        validate_gamma(self.gamma)?;
        let n = mdp.n_states();
        // Current policy, shared between the sweep backup (pool workers
        // load it) and the epilogue's improvement step (the coordinator
        // stores it while the workers wait at the round barrier). Initial
        // policy: lowest valid action per state (compilation guarantees
        // one exists).
        let actions: Vec<AtomicUsize> = (0..n)
            .map(|s| {
                AtomicUsize::new(
                    (0..mdp.n_actions())
                        .find(|&a| mdp.is_valid(s, a))
                        // lint:allow(panic-hygiene): compile() rejects states
                        // with no valid action.
                        .expect("compiled models have a valid action per state"),
                )
            })
            .collect();
        // Degenerate cap: with no evaluation budget at all, no policy can
        // ever be evaluated (the historical per-round evaluation returned
        // exactly this error after zero sweeps).
        if self.max_eval_sweeps == 0 {
            return Err(MdpError::NotConverged {
                iterations: 0,
                residual: mdp.bellman_residual(&vec![0.0; n], self.gamma),
            });
        }
        let mut rounds = 0usize;
        let mut eval_sweeps = 0usize;
        let mut stable = false;
        let mut eval_failed = false;

        // Total sweep budget across all rounds. `max_improvements == 0`
        // still runs one evaluate+improve round (the epilogue's round cap
        // fires after it), matching the historical loop structure.
        let outcome = run_sweeps(
            vec![0.0; n],
            self.parallel,
            self.max_improvements
                .max(1)
                .saturating_mul(self.max_eval_sweeps),
            |s, values| {
                mdp.q_value(s, actions[s].load(Ordering::Relaxed), values, self.gamma)
                    // lint:allow(panic-hygiene): actions only ever hold values
                    // the validity bitmap approved.
                    .expect("policy actions stay valid")
            },
            |values, stats, _| {
                eval_sweeps += 1;
                if stats.max_abs >= self.eval_tolerance {
                    if eval_sweeps >= self.max_eval_sweeps {
                        eval_failed = true;
                        return true;
                    }
                    return false;
                }
                // Evaluation converged: greedy improvement on the fresh
                // values (strict margin avoids oscillating on ties).
                rounds += 1;
                stable = true;
                for (s, action) in actions.iter().enumerate() {
                    let current = action.load(Ordering::Relaxed);
                    let mut best_a = current;
                    let mut best_q = mdp
                        .q_value(s, current, values, self.gamma)
                        // lint:allow(panic-hygiene): `current` came from the
                        // validity-checked initial policy or a prior improvement.
                        .expect("current policy action must be valid");
                    for a in 0..mdp.n_actions() {
                        if a == current {
                            continue;
                        }
                        if let Some(q) = mdp.q_value(s, a, values, self.gamma) {
                            if q > best_q + 1e-12 {
                                best_q = q;
                                best_a = a;
                            }
                        }
                    }
                    if best_a != current {
                        stable = false;
                        action.store(best_a, Ordering::Relaxed);
                    }
                }
                if stable || rounds >= self.max_improvements {
                    return true;
                }
                // Next round's evaluation starts cold, exactly like the
                // historical one-loop-per-round structure.
                values.fill(0.0);
                eval_sweeps = 0;
                false
            },
        );
        if eval_failed {
            return Err(MdpError::NotConverged {
                iterations: self.max_eval_sweeps,
                residual: mdp.bellman_residual(&outcome.values, self.gamma),
            });
        }
        Ok(PolicyIterationOutcome {
            converged: stable,
            rounds,
            values: outcome.values,
            policy: TabularPolicy::new(actions.iter().map(|a| a.load(Ordering::Relaxed)).collect()),
        })
    }

    /// Trait-callback reference implementation, kept for differential
    /// testing and benchmarking against the compiled kernel.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve`](PolicyIteration::solve).
    pub fn solve_callback<M: FiniteMdp>(
        &self,
        mdp: &M,
    ) -> Result<PolicyIterationOutcome, MdpError> {
        validate_gamma(self.gamma)?;
        if mdp.n_states() == 0 || mdp.n_actions() == 0 {
            return Err(MdpError::EmptyModel);
        }
        // Initial policy: lowest valid action per state.
        let mut actions = Vec::with_capacity(mdp.n_states());
        for s in 0..mdp.n_states() {
            let a = (0..mdp.n_actions())
                .find(|&a| mdp.is_action_valid(s, a))
                .ok_or(MdpError::BadDistribution {
                    state: s,
                    action: 0,
                    mass: 0.0,
                })?;
            actions.push(a);
        }
        let mut policy = TabularPolicy::new(actions);
        let mut buf = Vec::new();
        let mut values = vec![0.0; mdp.n_states()];
        let mut rounds = 0;

        loop {
            rounds += 1;
            values = evaluate_policy_callback(
                mdp,
                &policy,
                self.gamma,
                self.eval_tolerance,
                self.max_eval_sweeps,
            )?;

            let mut stable = true;
            let mut improved = Vec::with_capacity(mdp.n_states());
            for s in 0..mdp.n_states() {
                let current = policy.action(s);
                let mut best_a = current;
                let mut best_q = q_value(mdp, s, current, &values, self.gamma, &mut buf)
                    // lint:allow(panic-hygiene): `current` came from the
                    // validity-checked initial policy or a prior improvement.
                    .expect("current policy action must be valid");
                for a in 0..mdp.n_actions() {
                    if a == current {
                        continue;
                    }
                    if let Some(q) = q_value(mdp, s, a, &values, self.gamma, &mut buf) {
                        // Strict improvement margin avoids oscillating on ties.
                        if q > best_q + 1e-12 {
                            best_q = q;
                            best_a = a;
                        }
                    }
                }
                if best_a != current {
                    stable = false;
                }
                improved.push(best_a);
            }
            policy = TabularPolicy::new(improved);
            if stable || rounds >= self.max_improvements {
                return Ok(PolicyIterationOutcome {
                    converged: stable,
                    rounds,
                    values,
                    policy,
                });
            }
        }
    }
}

/// Result of a [`PolicyIteration`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyIterationOutcome {
    /// Values of the final policy.
    pub values: Vec<f64>,
    /// The final (optimal if `converged`) policy.
    pub policy: TabularPolicy,
    /// Whether the policy became stable within the round cap.
    pub converged: bool,
    /// Improvement rounds performed.
    pub rounds: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::solver::ValueIteration;

    #[test]
    fn agrees_with_value_iteration_on_two_state() {
        let (mdp, gamma) = reference::two_state();
        let pi = PolicyIteration::new(gamma).solve(&mdp).unwrap();
        let vi = ValueIteration::new(gamma)
            .tolerance(1e-12)
            .solve(&mdp)
            .unwrap();
        assert!(pi.converged);
        assert_eq!(pi.policy.actions(), vi.policy.actions());
        for (a, b) in pi.values.iter().zip(&vi.values) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn agrees_with_value_iteration_on_gridworld() {
        let (mdp, gamma) = reference::gridworld(4, 3, 0.15);
        let pi = PolicyIteration::new(gamma).solve(&mdp).unwrap();
        let vi = ValueIteration::new(gamma)
            .tolerance(1e-12)
            .solve(&mdp)
            .unwrap();
        assert!(pi.converged);
        for (a, b) in pi.values.iter().zip(&vi.values) {
            assert!((a - b).abs() < 1e-5, "value mismatch {a} vs {b}");
        }
    }

    #[test]
    fn converges_in_few_rounds_on_chain() {
        let (mdp, gamma) = reference::chain(10, 0.9);
        let out = PolicyIteration::new(gamma).solve(&mdp).unwrap();
        assert!(out.converged);
        // PI is famously fast: rounds should be far below the state count.
        assert!(out.rounds <= 10, "rounds was {}", out.rounds);
    }

    #[test]
    fn rejects_bad_gamma() {
        let (mdp, _) = reference::two_state();
        assert!(PolicyIteration::new(2.0).solve(&mdp).is_err());
    }

    #[test]
    fn degenerate_caps_keep_historic_behavior() {
        let (mdp, gamma) = reference::two_state();
        let compiled = CompiledMdp::compile(&mdp).unwrap();
        // No evaluation budget: the first evaluation cannot converge.
        let err = PolicyIteration {
            max_eval_sweeps: 0,
            ..PolicyIteration::new(gamma)
        }
        .solve_compiled(&compiled);
        assert!(matches!(
            err,
            Err(MdpError::NotConverged { iterations: 0, .. })
        ));
        // No improvement budget: one evaluate+improve round still runs.
        let out = PolicyIteration {
            max_improvements: 0,
            ..PolicyIteration::new(gamma)
        }
        .solve_compiled(&compiled)
        .unwrap();
        assert_eq!(out.rounds, 1);
        assert!(!out.converged);
    }
}
